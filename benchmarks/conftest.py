"""Benchmark helpers.

Every benchmark regenerates one of the paper's tables or figures through
the :mod:`repro.experiments` harness and asserts the paper's qualitative
claims (who wins, by roughly what factor). Full sweeps are expensive, so
each runs exactly once (``rounds=1``); the experiment layer memoises
individual (app, environment, policy) runs within the process, so
benchmarks that share runs (Figure 6 reuses Figure 2's sweep, Figure 10
reuses Figure 7's) do not repeat them.
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
