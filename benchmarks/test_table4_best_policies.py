"""Table 4: best NUMA policies per application, Linux and Xen+.

Exact winners flip on near-ties; the benchmark checks that the *family*
of the winner (first-touch vs round-4K vs round-1G) agrees with the paper
for a solid majority, and that the paper's flagship winners hold.
"""

from conftest import run_once

from repro.experiments import table4


def test_table4_best_policies(benchmark):
    result = run_once(benchmark, lambda: table4.run(verbose=False))
    n = len(result.rows)
    assert n == 29
    assert result.linux_family_matches() >= n // 2
    assert result.xen_family_matches() >= n // 2
    by_app = {r.app: r for r in result.rows}
    # Flagship winners named in the paper's text (section 3.5.1).
    assert "First-Touch" in by_app["cg.C"].best_linux
    assert "Round-4K" in by_app["kmeans"].best_linux
    assert "Round-4K" in by_app["facesim"].best_linux
    # The Mosbench churn apps flip from first-touch (Linux) to round-4K
    # (Xen+): the hypercall/fault cost of hypervisor first-touch.
    assert "First-Touch" in by_app["wrmem"].best_linux
    assert "Round-4K" in by_app["wrmem"].best_xen
