"""Figure 7: improvement of each Xen NUMA policy over Xen+ (round-1G).

Paper claims: 9 apps improve >100% with the right policy; cg.C's
completion divides by ~6; replacing round-1G with the best other policy
degrades at most 10%; first-touch drastically degrades the disk-intensive
apps (it forces the passthrough driver off).
"""

from conftest import run_once

from repro.experiments import fig7


def test_fig7_xen_policies(benchmark):
    result = run_once(benchmark, lambda: fig7.run(verbose=False))
    assert len(result.improvements) == 29
    # A third-ish of the applications improve >100% with the right policy.
    assert result.count_best_above(1.0) >= 5
    # cg.C: the paper's 6x headline (we accept the >4x band).
    assert result.improvements["cg.C"]["First-Touch"] > 3.0
    # Replacing round-1G by the best other policy costs at most ~10%.
    assert result.max_degradation_replacing_round1g() <= 0.12
    # First-touch degrades the disk-intensive applications (passthrough
    # off), while round-4K keeps their I/O fast. dc.B's locality gain
    # offsets part of its I/O loss, so its bar is only mildly negative.
    for app in ("bfs", "pagerank", "sssp"):
        assert result.improvements[app]["First-Touch"] < -0.1
    for app in ("dc.B", "bfs", "pagerank", "sssp"):
        assert result.improvements[app]["First-Touch"] < 0.0
        assert result.improvements[app]["Round-4K"] > -0.05
    # Every policy is the best somewhere.
    winners = set(result.best_policy.values())
    assert len(winners) >= 3
