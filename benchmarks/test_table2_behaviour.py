"""Table 2: application behaviour — model vs specification."""

from conftest import run_once

from repro.experiments import table2


def test_table2_behaviour(benchmark):
    result = run_once(benchmark, lambda: table2.run(verbose=False))
    assert len(result.rows) == 29
    for row in result.rows:
        # The modeled footprint matches the spec within page rounding.
        assert abs(row.footprint_mb_modeled - row.footprint_mb_spec) <= max(
            2.0, 0.05 * row.footprint_mb_spec
        )
        # Disk-free apps read nothing; disk apps read in the right band
        # (the measured rate is lower when the run is slower than nominal).
        if row.disk_mb_s_spec == 0:
            assert row.disk_mb_s_measured == 0
        else:
            assert 0 < row.disk_mb_s_measured <= row.disk_mb_s_spec * 1.5
