"""Figure 1: relative overhead of Xen vs Linux, all 29 applications.

Paper claims: overhead up to ~700%; >50% for roughly half the
applications; >100% for a third of them.
"""

from conftest import run_once

from repro.experiments import fig1


def test_fig1_xen_overhead(benchmark):
    result = run_once(benchmark, lambda: fig1.run(verbose=False))
    assert len(result.overheads) == 29
    # Shape: many applications suffer badly under stock Xen.
    assert result.count_above(0.5) >= 10
    assert result.count_above(1.0) >= 4
    # The worst case lands in the several-hundred-percent band.
    assert 4.0 < result.max_overhead < 12.0
    # Memory-bound master-slave and IPI-bound apps are among the worst.
    assert result.overheads["cg.C"] > 1.0
    assert result.overheads["memcached"] > 1.0
