"""Ablations of the design choices called out in DESIGN.md.

* Epoch granularity and page scale must not change policy *rankings* —
  the epoch/aggregation design is a fidelity-for-speed trade, not a
  result driver.
* Carrefour's replication heuristic (discarded by the paper's port) has
  at most a marginal effect when enabled.
* The batched, partitioned page queue is what makes hypervisor
  first-touch affordable for churn-heavy applications.
"""

import dataclasses

import pytest
from conftest import run_once

from repro.carrefour.engine import CarrefourConfig
from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_app
from repro.sim.environment import LinuxEnvironment, VmSpec, XenEnvironment
from repro.workloads.suite import get_app


def fast(name, baseline=6.0):
    return dataclasses.replace(get_app(name), baseline_seconds=baseline)


def _ranking(config):
    """first-touch vs round-4k completion ratio for cg.C and kmeans."""
    out = {}
    for name in ("cg.C", "kmeans"):
        app = fast(name)
        ft = run_app(LinuxEnvironment(policy="first-touch", config=config), app)
        r4k = run_app(LinuxEnvironment(policy="round-4k", config=config), app)
        out[name] = ft.completion_seconds / r4k.completion_seconds
    return out


def test_ablation_epoch_granularity(benchmark):
    def sweep():
        return {
            seconds: _ranking(SimConfig(epoch_seconds=seconds))
            for seconds in (0.5, 1.0, 2.0)
        }

    results = run_once(benchmark, sweep)
    for ratios in results.values():
        # cg.C: first-touch wins; kmeans: round-4K wins — at every epoch.
        assert ratios["cg.C"] < 0.9
        assert ratios["kmeans"] > 1.5


def test_ablation_page_scale(benchmark):
    def sweep():
        return {
            scale: _ranking(SimConfig(page_scale=scale))
            for scale in (128, 256, 512)
        }

    results = run_once(benchmark, sweep)
    baseline = results[256]
    for scale, ratios in results.items():
        for app, ratio in ratios.items():
            assert ratio == pytest.approx(baseline[app], rel=0.25)


def test_ablation_queue_partitions(benchmark):
    """Global vs partitioned queue under wrmem's churn (section 4.2.4)."""
    app = fast("wrmem")
    spec = lambda: VmSpec(app=app, policy=PolicySpec(PolicyName.FIRST_TOUCH))

    def sweep():
        out = {}
        for partitions in (1, 4):
            env = XenEnvironment(queue_partitions=partitions)
            out[partitions] = run_app(env, spec()).completion_seconds
        return out

    results = run_once(benchmark, sweep)
    assert results[4] <= results[1] * 1.02


def test_ablation_replication_heuristic(benchmark):
    """Replication on vs off: marginal, as the paper found (section 3.4)."""
    app = fast("pagerank")  # read-mostly shared graph: best case for it

    def sweep():
        out = {}
        for enabled in (False, True):
            env = XenEnvironment()
            env_config = CarrefourConfig(enable_replication=enabled)
            # Install the config through the hypervisor's policy manager.
            world = env.setup(
                [VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K, True))]
            )
            run = world.runs[0]
            policy = run.context.domain.numa_policy
            policy.engine.config = env_config
            policy.engine.user.config = env_config
            from repro.sim.engine import run_world

            out[enabled] = run_world(world)[0].completion_seconds
        return out

    results = run_once(benchmark, sweep)
    assert results[True] == pytest.approx(results[False], rel=0.15)


def test_ablation_unbatched_hypercalls(benchmark):
    """The strawman: hypercall per release vs the batched design."""
    app = fast("wrmem")
    policy = PolicySpec(PolicyName.ROUND_4K)

    def sweep():
        batched = run_app(XenEnvironment(), VmSpec(app=app, policy=policy))
        unbatched = run_app(
            XenEnvironment(unbatched_hypercalls=True),
            VmSpec(app=app, policy=policy),
        )
        return unbatched.completion_seconds / batched.completion_seconds

    slowdown = run_once(benchmark, sweep)
    assert slowdown > 2.0
