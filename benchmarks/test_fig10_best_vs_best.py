"""Figure 10: Xen+ and Xen+NUMA vs LinuxNUMA.

Paper claims: with the right NUMA policies the big virtualisation gap
mostly closes — only 4 apps stay degraded above 50% (vs 14 for Xen+),
and the stragglers are IPI-bound (memcached, cassandra, ua.C) or
I/O-odd (psearchy).
"""

from conftest import run_once

from repro.experiments import fig10


def test_fig10_best_vs_best(benchmark):
    result = run_once(benchmark, lambda: fig10.run(verbose=False))
    assert len(result.overheads) == 29
    above_plus = result.count_above("xen+", 0.5)
    above_numa = result.count_above("xen+numa", 0.5)
    # The NUMA policies close most of the gap.
    assert above_numa < above_plus
    assert above_numa <= 8
    # The paper's stragglers remain degraded: they are IPI-bound, which
    # no memory policy can fix.
    assert result.overheads["memcached"]["xen+numa"] > 0.5
    assert result.overheads["ua.C"]["xen+numa"] > 0.3
    # Xen+NUMA never loses to Xen+ by a meaningful margin.
    for app, values in result.overheads.items():
        assert values["xen+numa"] <= values["xen+"] + 0.05
