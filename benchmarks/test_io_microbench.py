"""Section 2.2: 74/307/186 us block reads and the amortisation effect."""

from conftest import run_once

from repro.experiments import io_micro
from repro.vio.disk import IoMode


def test_io_microbench(benchmark):
    result = run_once(benchmark, lambda: io_micro.run(verbose=False))
    assert result.matches_paper(tolerance=0.02)
    # Larger reads amortise the virtualisation overhead (both paths).
    for mode in (IoMode.PARAVIRT, IoMode.PASSTHROUGH):
        series = result.overhead_vs_native[mode]
        sizes = sorted(series)
        values = [series[s] for s in sizes]
        assert values == sorted(values, reverse=True)
    # Passthrough always beats paravirt.
    for size in result.overhead_vs_native[IoMode.PARAVIRT]:
        assert (
            result.overhead_vs_native[IoMode.PASSTHROUGH][size]
            < result.overhead_vs_native[IoMode.PARAVIRT][size]
        )
