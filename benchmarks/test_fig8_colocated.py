"""Figure 8: two colocated VMs (24 vCPUs each) on disjoint node halves."""

from conftest import run_once

from repro.experiments import fig8


def test_fig8_colocated(benchmark):
    result = run_once(benchmark, lambda: fig8.run(verbose=False))
    assert len(result.pairs) == 5
    # In most pairs at least one VM improves substantially with the right
    # policy (the paper: 9 of 11 configurations across Figs 8-9 improve a
    # VM by >50%).
    assert result.count_vm_improved_above(0.5) >= 3
    # The paper's best case (cg.C with sp.C) improves by hundreds of %.
    cg_pair = next(p for p in result.pairs if p.apps == ("cg.C", "sp.C"))
    assert max(cg_pair.improvements) > 1.0
    # Degradations stay bounded (paper: at most 10%).
    assert result.max_degradation() <= 0.15
