"""Sections 4.2.3-4.2.4: the hypercall batching microbenchmarks."""

from conftest import run_once

from repro.experiments import batching


def test_hypercall_batching(benchmark):
    result = run_once(benchmark, lambda: batching.run(verbose=False))
    # One empty hypercall per release divides wrmem's performance by ~3.
    assert 2.0 < result.unbatched_slowdown < 4.5
    # 87.5% of a flush is spent invalidating pages, 12.5% sending.
    assert abs(result.invalidation_share - 0.875) < 0.02
    # Partitioning the queue reduces the lock penalty.
    assert result.partitioned_queue_slowdown < result.global_queue_slowdown
    # Batched queues cost almost nothing.
    assert result.partitioned_queue_slowdown < 1.05
