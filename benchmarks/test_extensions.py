"""Benchmarks of the section 7 extensions (the paper's future work).

* **Large pages / TLB**: with nested-TLB modelling on, round-1G recovers
  some ground on big-footprint apps (its 1 GiB mappings never miss),
  while the fine-grained policies pay the 4 KiB walk tax — quantifying
  the trade-off the paper points at.
* **Low-churn allocator**: swapping Streamflow for a scalloc/llalloc-like
  allocator (releases pages rarely) removes wrmem's first-touch overhead.
* **Automatic policy selection**: both selectors stay close to the
  oracle on a class-spanning app subset.
"""

import dataclasses

import pytest
from conftest import run_once

from repro.config import SimConfig
from repro.core.autoselect import (
    CounterHeuristicSelector,
    ProbingSelector,
    make_xen_probe,
)
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_app
from repro.sim.environment import VmSpec, XenEnvironment
from repro.workloads.suite import get_app


def fast(name, baseline=6.0, **changes):
    return dataclasses.replace(
        get_app(name), baseline_seconds=baseline, **changes
    )


def test_extension_tlb_large_pages(benchmark):
    """Round-1G gains from superpage mappings when the TLB is modelled."""
    app = fast("wc")  # 16 GiB footprint: far beyond 4 KiB TLB reach

    def sweep():
        out = {}
        for model_tlb in (False, True):
            config = SimConfig(model_tlb=model_tlb)
            r1g = run_app(
                XenEnvironment(config=config),
                VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_1G)),
            )
            ft = run_app(
                XenEnvironment(config=config),
                VmSpec(app=app, policy=PolicySpec(PolicyName.FIRST_TOUCH)),
            )
            out[model_tlb] = ft.completion_seconds / r1g.completion_seconds
        return out

    ratios = run_once(benchmark, sweep)
    # The TLB tax falls on first-touch only: its relative position
    # against round-1G must get worse.
    assert ratios[True] > ratios[False]


def test_extension_low_churn_allocator(benchmark):
    """A scalloc-like allocator removes the first-touch churn penalty."""
    streamflow = fast("wrmem")
    scalloc = fast("wrmem", churn_per_thread_s=200.0)

    def sweep():
        out = {}
        for label, app in (("streamflow", streamflow), ("scalloc", scalloc)):
            result = run_app(
                XenEnvironment(),
                VmSpec(app=app, policy=PolicySpec(PolicyName.FIRST_TOUCH)),
            )
            out[label] = result
        return out

    results = run_once(benchmark, sweep)
    assert results["streamflow"].stats["churn_slowdown"] > 1.05
    assert results["scalloc"].stats["churn_slowdown"] < 1.01
    assert (
        results["scalloc"].completion_seconds
        < results["streamflow"].completion_seconds
    )


def test_extension_auto_policy_selection(benchmark):
    """Both selectors land within ~15% of the oracle on a class-spanning
    subset (cg.C low / bt.C moderate / kmeans high)."""
    apps = [fast(name, baseline=10.0) for name in ("cg.C", "bt.C", "kmeans")]

    def evaluate():
        regrets = {"probing": [], "heuristic": []}
        for app in apps:
            probe = make_xen_probe(app)
            chosen = {
                "probing": ProbingSelector(probe, probe_epochs=4).select().chosen,
                "heuristic": CounterHeuristicSelector(
                    probe,
                    disk_mb_s=app.disk_mb_s,
                    churn_per_thread_s=app.churn_per_thread_s,
                ).select().chosen,
            }
            candidates = [
                PolicySpec(PolicyName.FIRST_TOUCH),
                PolicySpec(PolicyName.FIRST_TOUCH, True),
                PolicySpec(PolicyName.ROUND_4K),
                PolicySpec(PolicyName.ROUND_4K, True),
            ]
            times = {}
            for spec in candidates:
                result = run_app(XenEnvironment(), VmSpec(app=app, policy=spec))
                times[spec] = result.completion_seconds
            oracle = min(times.values())
            for kind, spec in chosen.items():
                regrets[kind].append(times[spec] / oracle - 1.0)
        return regrets

    regrets = run_once(benchmark, evaluate)
    assert max(regrets["probing"]) < 0.15
    assert max(regrets["heuristic"]) < 0.15
