"""Figure 5: IPI cost repartition, plus the I/O microbenchmark of 2.2."""

import pytest
from conftest import run_once

from repro.experiments import fig5


def test_fig5_ipi(benchmark):
    result = run_once(benchmark, lambda: fig5.run(verbose=False))
    assert result.totals["native"] == pytest.approx(0.9e-6)
    assert result.totals["guest"] == pytest.approx(10.9e-6)
    assert 11 < result.guest_native_ratio < 13
    for mode in ("native", "guest"):
        assert sum(result.components[mode].values()) == pytest.approx(
            result.totals[mode]
        )
