"""Figure 9: two consolidated VMs (48 vCPUs each) sharing every pCPU."""

from conftest import run_once

from repro.experiments import fig9


def test_fig9_consolidated(benchmark):
    result = run_once(benchmark, lambda: fig9.run(verbose=False))
    assert len(result.pairs) == 6
    # NUMA policies matter under consolidation too.
    assert result.count_vm_improved_above(0.5) >= 3
    assert result.max_degradation() <= 0.15
    cg_pair = next(p for p in result.pairs if p.apps == ("cg.C", "sp.C"))
    assert max(cg_pair.improvements) > 0.5
