"""Figure 6: Linux / Xen / Xen+ overhead vs LinuxNUMA.

Paper claims: even Xen+ (I/O and IPI overheads mitigated) leaves a large
NUMA gap — ~20 apps above 25%, ~14 above 50%, ~11 above 100%.
"""

from conftest import run_once

from repro.experiments import fig6


def test_fig6_xen_plus(benchmark):
    result = run_once(benchmark, lambda: fig6.run(verbose=False))
    assert len(result.overheads) == 29
    # Xen+ still leaves a substantial NUMA-placement gap.
    assert result.count_above("xen+", 0.25) >= 8
    assert result.count_above("xen+", 0.50) >= 6
    # Xen+ never does worse than stock Xen by much for the disk/IPI apps
    # it was built to help.
    for app in ("dc.B", "streamcluster", "facesim", "mongodb"):
        assert (
            result.overheads[app]["xen+"]
            <= result.overheads[app]["xen"] + 0.05
        )
    # Plain Linux (first-touch) is never better than LinuxNUMA (best).
    assert all(v["linux"] >= -1e-9 for v in result.overheads.values())
