"""Table 3: cache and memory latencies on AMD48 (microbenchmark)."""

from conftest import run_once

from repro.experiments import table3


def test_table3_latency(benchmark):
    result = run_once(benchmark, lambda: table3.run(verbose=False))
    # The latency model is calibrated on this table: exact match.
    assert result.max_relative_error() < 0.01
    assert result.cache_cycles == {"L1": 5.0, "L2": 16.0, "L3": 48.0}
    assert result.memory_cycles[("local", 1)] == 156.0
    assert result.memory_cycles[("2hop", 48)] == 863.0
