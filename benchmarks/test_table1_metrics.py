"""Table 1: load imbalance and interconnect load under the static policies.

The measured metrics must track the paper's Table 1 closely: they are the
values the workload models were calibrated against, so this bench checks
the *whole loop* (calibration -> placement mechanics -> counters) closes.
"""

from conftest import run_once

from repro.experiments import table1
from repro.workloads.suite import get_app


def test_table1_metrics(benchmark):
    result = run_once(benchmark, lambda: table1.run(verbose=False))
    assert len(result.rows) == 29
    # The low/moderate/high classification matches the paper for almost
    # every application (ties at class boundaries may flip).
    assert result.class_matches() >= 24
    by_app = {r.app: r for r in result.rows}
    # Spot checks against the paper's numbers (fractions, not percent).
    facesim = by_app["facesim"]
    assert abs(facesim.ft_imbalance - 2.53) < 0.4
    assert abs(facesim.ft_interconnect - 0.39) < 0.15
    cg = by_app["cg.C"]
    assert cg.ft_imbalance < 0.5
    assert cg.r4k_interconnect > 0.3
    # Round-4K always reduces the imbalance of high-class apps.
    for name in ("facesim", "kmeans", "pca", "streamcluster"):
        row = by_app[name]
        assert row.r4k_imbalance < row.ft_imbalance


def test_table1_interconnect_tracks_paper(benchmark):
    """Mean absolute error of the interconnect columns stays small."""
    rows = table1.run(verbose=False).rows
    errors = []
    for row in rows:
        app = get_app(row.app)
        errors.append(abs(row.ft_interconnect - app.ft_interconnect))
        errors.append(abs(row.r4k_interconnect - app.r4k_interconnect))
    mean_error = sum(errors) / len(errors)
    benchmark.extra_info["mean_abs_error"] = mean_error
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert mean_error < 0.12
