"""Figure 2: Linux NUMA policy improvements over first-touch.

Paper claims: 17 of 29 applications move by more than 25% best-vs-worst
(12 by >50%, 5 by >100%), and *every* policy combination wins somewhere.
"""

from conftest import run_once

from repro.experiments import fig2


def test_fig2_linux_policies(benchmark):
    result = run_once(benchmark, lambda: fig2.run(verbose=False))
    assert len(result.improvements) == 29
    assert result.count_spread_above(0.25) >= 10
    assert result.count_spread_above(0.50) >= 7
    assert result.count_spread_above(1.00) >= 3
    # Each combination is best for at least one application (the paper's
    # core argument for offering several policies).
    winners = set(result.best_combo.values())
    assert "First-Touch" in winners
    assert "Round-4K" in winners
    assert any("Carrefour" in w for w in winners)
    # The paper's named examples keep their winners' family.
    assert result.best_combo["cg.C"] == "First-Touch"
    assert result.best_combo["kmeans"] in ("Round-4K", "R4K/Carrefour")
