#!/usr/bin/env python3
"""Consolidated workloads: two VMs sharing one NUMA machine.

Reproduces the scenario of the paper's Figures 8 and 9 on one pair of
applications: a memory-local one (cg.C) next to a master-slave one
(sp.C), first each on its own half of the nodes (colocated), then both
spanning all 48 cores with two vCPUs per physical CPU (consolidated).
For each setup, compare Xen's default round-1G against each VM running
its best policy.

Run:
    python examples/consolidation.py
"""

from repro.analysis.tables import format_table
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_apps
from repro.sim.environment import VmSpec, XenEnvironment
from repro.workloads.suite import get_app

ROUND_1G = PolicySpec(PolicyName.ROUND_1G)
BEST = {
    "cg.C": PolicySpec(PolicyName.FIRST_TOUCH),
    "sp.C": PolicySpec(PolicyName.ROUND_4K, carrefour=True),
}


def colocated(policies):
    """24 vCPUs each, disjoint node halves."""
    specs = []
    for i, name in enumerate(("cg.C", "sp.C")):
        home = [0, 1, 2, 3] if i == 0 else [4, 5, 6, 7]
        pin = [c for node in home for c in range(node * 6, node * 6 + 6)]
        specs.append(
            VmSpec(
                app=get_app(name),
                policy=policies[name],
                num_vcpus=24,
                home_nodes=home,
                pin_pcpus=pin,
            )
        )
    return run_apps(XenEnvironment(), specs)


def consolidated(policies):
    """48 vCPUs each, every pCPU runs one vCPU of each VM."""
    specs = [
        VmSpec(
            app=get_app(name),
            policy=policies[name],
            num_vcpus=48,
            home_nodes=list(range(8)),
            pin_pcpus=list(range(48)),
        )
        for name in ("cg.C", "sp.C")
    ]
    return run_apps(XenEnvironment(), specs)


def main() -> int:
    rows = []
    for label, runner in (("colocated 2x24", colocated), ("consolidated 2x48", consolidated)):
        default = runner({"cg.C": ROUND_1G, "sp.C": ROUND_1G})
        best = runner(BEST)
        for d, b in zip(default, best):
            rows.append(
                [
                    label,
                    d.app,
                    BEST[d.app].label,
                    f"{d.completion_seconds:.1f}s",
                    f"{b.completion_seconds:.1f}s",
                    f"{d.completion_seconds / b.completion_seconds - 1.0:+.0%}",
                ]
            )
        print(f"finished {label}")
    print()
    print(
        format_table(
            ["setup", "vm", "policy", "round-1G", "best", "improvement"],
            rows,
            title="Two-VM consolidation (Figures 8 and 9 scenario)",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
