#!/usr/bin/env python3
"""Automatic NUMA policy selection (the paper's section 7 open problem).

For a handful of applications spanning the three imbalance classes,
compare the two selectors of :mod:`repro.core.autoselect`:

* the probing selector (try everything briefly, keep the fastest);
* the counter-heuristic selector (one first-touch probe, classify by
  imbalance, apply the paper's section 3.5.2 rule, with the hypervisor
  overrides for disk and churn);

against the oracle (full runs of every policy).

Run:
    python examples/auto_policy.py
"""

from repro.analysis.tables import format_table
from repro.core.autoselect import (
    CounterHeuristicSelector,
    ProbingSelector,
    make_xen_probe,
)
from repro.core.policies.base import PolicySpec
from repro.experiments import common
from repro.workloads.suite import get_app

APPS = ["cg.C", "bt.C", "kmeans", "dc.B", "wrmem"]


def main() -> int:
    rows = []
    for name in APPS:
        app = get_app(name)
        probe = make_xen_probe(app)

        probing = ProbingSelector(probe).select()
        heuristic = CounterHeuristicSelector(
            probe,
            disk_mb_s=app.disk_mb_s,
            churn_per_thread_s=app.churn_per_thread_s,
        ).select()

        # Oracle: the full sweep (memoised across apps by the harness).
        _, oracle_label = common.xen_numa_run(app)
        oracle = PolicySpec.parse(oracle_label)

        def regret(spec):
            chosen = common.xen_run(app, spec)
            best = common.xen_run(app, oracle)
            return chosen.completion_seconds / best.completion_seconds - 1.0

        rows.append(
            [
                name,
                probing.chosen.label,
                f"{regret(probing.chosen):+.0%}",
                heuristic.chosen.label,
                f"{regret(heuristic.chosen):+.0%}",
                oracle.label,
            ]
        )
        print(f"{name}: heuristic said: {heuristic.rationale}")

    print()
    print(
        format_table(
            ["app", "probing", "regret", "heuristic", "regret", "oracle"],
            rows,
            title="Automatic policy selection vs the oracle",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
