#!/usr/bin/env python3
"""Quickstart: run one application under every Xen NUMA policy.

This is the paper in one screen: boot the simulated AMD48 machine, create
a 48-vCPU virtual machine running the NPB cg.C benchmark, and compare the
four NUMA policies (plus Xen's round-1G default) selected through the
paper's hypercall interface.

Run:
    python examples/quickstart.py [app-name]
"""

import sys

from repro.analysis.tables import format_table
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_app
from repro.sim.environment import VmSpec, XenEnvironment
from repro.workloads.suite import get_app

POLICIES = [
    PolicySpec(PolicyName.ROUND_1G),
    PolicySpec(PolicyName.ROUND_4K),
    PolicySpec(PolicyName.ROUND_4K, carrefour=True),
    PolicySpec(PolicyName.FIRST_TOUCH),
    PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True),
]


def main() -> int:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "cg.C"
    app = get_app(app_name)
    print(f"Application: {app.name} ({app.suite}), "
          f"{app.footprint_mb:.0f} MB footprint, "
          f"imbalance class '{app.imbalance_class}'\n")

    results = []
    for spec in POLICIES:
        # Each run boots a fresh machine + hypervisor; the policy is
        # selected through the NUMA_SET_POLICY hypercall (round-1G is the
        # boot default being measured as-is).
        env = XenEnvironment()
        result = run_app(env, VmSpec(app=app, policy=spec))
        results.append((spec, result))
        print(f"  ran {spec.label:25s} -> {result.completion_seconds:8.2f}s")

    baseline = results[0][1].completion_seconds
    rows = []
    for spec, result in results:
        rows.append(
            [
                spec.label,
                f"{result.completion_seconds:.2f}s",
                f"{baseline / result.completion_seconds - 1.0:+.0%}",
                f"{result.mean_imbalance * 100:.0f}%",
                f"{result.mean_local_fraction:.0%}",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "completion", "vs round-1G", "imbalance", "local"],
            rows,
            title=f"{app.name} under the Xen NUMA policies",
        )
    )
    best = min(results, key=lambda pair: pair[1].completion_seconds)
    print(f"\nBest policy: {best[0].label} "
          f"(paper's Table 4 says: {app.best_xen})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
