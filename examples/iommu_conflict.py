#!/usr/bin/env python3
"""The first-touch / IOMMU incompatibility, step by step (section 4.4.1).

Walks the exact failure sequence:

1. a domU under Xen+ uses the PCI passthrough driver — device DMA
   translates guest-physical addresses through the IOMMU, i.e. through
   the hypervisor page table;
2. the administrator switches the domain to first-touch; the guest
   reports its free pages and the hypervisor *invalidates* their entries
   (that is how first-touch traps first accesses);
3. the guest hands a freshly-allocated (still invalid) page to the disk
   as a DMA buffer: the IOMMU aborts the transfer, the guest sees EIO;
4. the hypervisor only finds out from the asynchronous IOMMU error log —
   after the guest already failed. Nothing it can do.

Run:
    python examples/iommu_conflict.py
"""

from repro.core.interface import ExternalInterface
from repro.core.policies.base import PolicyName
from repro.guest.page_alloc import GuestPageAllocator
from repro.guest.pv_patch import PvNumaPatch
from repro.hardware.presets import amd48
from repro.hypervisor.xen import Hypervisor, XEN_PLUS
from repro.vio.disk import DiskModel
from repro.vio.dma import DmaEngine
from repro.vio.drivers import PassthroughDriver


def main() -> int:
    machine = amd48()
    hypervisor = Hypervisor(machine, features=XEN_PLUS)
    domain = hypervisor.create_domain("db-server", num_vcpus=4, memory_pages=2048)
    allocator = GuestPageAllocator(first_gpfn=0, num_pages=2048)
    patch = PvNumaPatch(
        allocator, ExternalInterface(hypervisor.hypercalls, domain.domain_id)
    )
    driver = PassthroughDriver(DiskModel(), DmaEngine(machine.iommu), machine.config)

    print("== step 1: passthrough I/O works under round-4K")
    buf = [allocator.alloc() for _ in range(8)]
    result = driver.read_into(domain, buf)
    print(f"   io_mode={hypervisor.io_mode(domain)}  "
          f"read {result.nbytes >> 10} KiB ok={result.ok}")

    print("== step 2: switch to first-touch (guest reports its free list)")
    patch.select_policy(PolicyName.FIRST_TOUCH.value)
    reported = patch.report_free_pages()
    print(f"   reported {reported} free pages; "
          f"{domain.p2m.invalidations} p2m entries invalidated")
    print(f"   hypervisor now says io_mode={hypervisor.io_mode(domain)!r} "
          "(the evaluation honours this and falls back)")

    print("== step 3: ignore the fallback and DMA into a fresh buffer anyway")
    dma_buf = [allocator.alloc() for _ in range(8)]
    patch.flush()
    result = driver.read_into(domain, dma_buf)
    print(f"   guest sees: ok={result.ok}, {result.io_errors} I/O errors "
          f"({result.nbytes >> 10} KiB of {len(dma_buf) * machine.config.page_bytes >> 10} arrived)")

    print("== step 4: the hypervisor learns about it asynchronously")
    events = machine.iommu.drain_error_log()
    print(f"   IOMMU error log: {len(events)} aborted translations "
          f"(gpfns {[hex(e.gpfn) for e in events[:4]]}...)")
    print("   -> too late: the guest already returned EIO to the process.")

    print("== step 5: pages the CPU touched first are fine")
    for gpfn in dma_buf:
        hypervisor.guest_access(domain, 0, gpfn)
    result = driver.read_into(domain, dma_buf)
    print(f"   after CPU first-touch: ok={result.ok}")
    print("\nConclusion: first-touch and the IOMMU cannot coexist — the "
          "evaluation disables\nthe passthrough driver whenever first-touch "
          "is active (sections 4.4.1, 5.3.1).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
