#!/usr/bin/env python3
"""Why hide the topology? vCPU load balancing (the paper's introduction).

Amazon EC2's alternative — exposing the NUMA topology to the guest — lets
the *guest* run NUMA policies, but freezes the vCPU layout: migrating a
vCPU to another node would change the topology under a running OS.

With the policies in the hypervisor, the vCPU moves freely. This demo
runs cg.C under first-touch, swaps the vCPUs of nodes 0 and 7 mid-run
(a load-balancing decision), and shows:

* the guest notices nothing;
* the static placement strands the moved threads' pages (locality drops);
* turning Carrefour on makes the pages chase their threads.

Run:
    python examples/vcpu_migration.py
"""

from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_world
from repro.sim.environment import VmSpec, XenEnvironment, migrate_vcpu
from repro.workloads.suite import get_app

MIGRATION_EPOCH = 3


def swap_nodes(world):
    run = world.runs[0]
    for i in range(6):
        migrate_vcpu(run, i, 42 + i)
    for i in range(6):
        migrate_vcpu(run, 42 + i, i)
    print(f"  [epoch {MIGRATION_EPOCH}] hypervisor swapped the vCPUs of "
          "nodes 0 and 7 (guest unaware)")


def run_scenario(carrefour: bool):
    spec = PolicySpec(PolicyName.FIRST_TOUCH, carrefour=carrefour)
    world = XenEnvironment().setup([VmSpec(app=get_app("cg.C"), policy=spec)])
    world.at_epoch(MIGRATION_EPOCH, swap_nodes)
    result = run_world(world)[0]
    return result


def main() -> int:
    print("== static first-touch (no dynamic policy)")
    static = run_scenario(carrefour=False)
    print("== first-touch / Carrefour")
    dynamic = run_scenario(carrefour=True)

    print("\nlocality over time (fraction of node-local accesses):")
    print("  epoch   static   carrefour")
    horizon = min(len(static.records), len(dynamic.records), 14)
    for i in range(horizon):
        marker = "  <- vCPUs migrated" if i == MIGRATION_EPOCH else ""
        print(
            f"  {i:5d}   {static.records[i].local_fraction:6.2f}   "
            f"{dynamic.records[i].local_fraction:9.2f}{marker}"
        )
    print(f"\ncompletion: static {static.completion_seconds:.1f}s, "
          f"carrefour {dynamic.completion_seconds:.1f}s "
          f"({dynamic.total_migrations} pages migrated after the vCPUs)")
    print("\nThe hypervisor balanced its load without the guest ever seeing "
          "a topology change\n— the flexibility the paper's interface "
          "preserves and the exposed-topology\nalternative gives up.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
