#!/usr/bin/env python3
"""Explore NUMA policies for a *custom* application model.

The 29 paper applications are just AppSpec instances; this example builds
a new one from scratch — a master-slave analytics job — and sweeps both
the Linux and the Xen policies over it, showing how the library answers
"which policy should my workload use?".

Run:
    python examples/policy_explorer.py
"""

from repro.analysis.tables import format_table
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_app
from repro.sim.environment import LinuxEnvironment, VmSpec, XenEnvironment
from repro.workloads.app import AppSpec
from repro.workloads.patterns import imbalance_for_master_share

# A made-up in-memory analytics engine: one loader thread prepares a 6 GiB
# working set that 48 workers then scan. We describe it the way the paper
# describes its applications: by its measured-style characteristics.
MASTER_SHARE = 0.8  # 80% of accesses hit loader-initialised memory
CUSTOM_APP = AppSpec(
    name="analytics-demo",
    suite="custom",
    footprint_mb=6144,
    disk_mb_s=40,  # streams its input from disk
    ctx_switches_k_s=2.0,
    ft_imbalance=imbalance_for_master_share(MASTER_SHARE),
    r4k_imbalance=0.15,
    ft_interconnect=0.30,
    r4k_interconnect=0.38,
    imbalance_class="high",
    churn_per_thread_s=500.0,
)


def main() -> int:
    rows = []
    # Native Linux sweep.
    for policy in ("first-touch", "round-4k"):
        for carrefour in (False, True):
            env = LinuxEnvironment(policy=policy, carrefour=carrefour)
            result = run_app(env, CUSTOM_APP)
            rows.append(
                [
                    "Linux",
                    result.policy,
                    f"{result.completion_seconds:.1f}s",
                    f"{result.mean_imbalance * 100:.0f}%",
                    f"{result.mean_local_fraction:.0%}",
                ]
            )
            print(f"ran linux/{result.policy}")
    # Xen sweep.
    for spec in (
        PolicySpec(PolicyName.ROUND_1G),
        PolicySpec(PolicyName.ROUND_4K),
        PolicySpec(PolicyName.ROUND_4K, carrefour=True),
        PolicySpec(PolicyName.FIRST_TOUCH),
        PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True),
    ):
        result = run_app(XenEnvironment(), VmSpec(app=CUSTOM_APP, policy=spec))
        rows.append(
            [
                "Xen+",
                result.policy,
                f"{result.completion_seconds:.1f}s",
                f"{result.mean_imbalance * 100:.0f}%",
                f"{result.mean_local_fraction:.0%}",
            ]
        )
        print(f"ran xen+/{result.policy}")

    print()
    print(
        format_table(
            ["platform", "policy", "completion", "imbalance", "local"],
            rows,
            title=f"Policy sweep for {CUSTOM_APP.name} "
            f"({CUSTOM_APP.footprint_mb:.0f} MB, "
            f"master share {MASTER_SHARE:.0%})",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
