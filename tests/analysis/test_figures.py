"""ASCII figure rendering."""

import pytest

from repro.analysis.figures import render_bars, render_grouped_bars


class TestRenderBars:
    def test_every_label_present(self):
        text = render_bars({"cg.C": 4.58, "mg.D": 1.12}, title="Fig")
        assert "cg.C" in text and "mg.D" in text
        assert "Fig" in text

    def test_values_scaled_to_percent(self):
        text = render_bars({"a": 0.5}, scale=100.0)
        assert "+50%" in text

    def test_longest_bar_gets_full_width(self):
        text = render_bars({"big": 1.0, "small": 0.25}, width=20)
        lines = [l for l in text.splitlines() if "#" in l]
        big = next(l for l in lines if l.startswith("big"))
        small = next(l for l in lines if l.startswith("small"))
        assert big.count("#") == 20
        assert small.count("#") == 5

    def test_negative_values_grow_left(self):
        text = render_bars({"up": 0.5, "down": -0.5}, width=10)
        up = next(l for l in text.splitlines() if l.startswith("up"))
        down = next(l for l in text.splitlines() if l.startswith("down"))
        assert up.index("#") > up.index("|")
        assert down.index("#") < down.index("|")

    def test_empty(self):
        assert render_bars({}, title="T") == "T"

    def test_zero_values_render(self):
        text = render_bars({"a": 0.0, "b": 0.0})
        assert "+0%" in text


class TestRenderGroupedBars:
    def test_groups_and_series(self):
        text = render_grouped_bars(
            {"cg.C": {"FT": 4.4, "R4K": 2.2}, "mg.D": {"FT": 1.1, "R4K": 0.3}}
        )
        assert "cg.C" in text and "mg.D" in text
        assert text.count("FT") == 2
        assert text.count("R4K") == 2

    def test_negative_series_marked(self):
        text = render_grouped_bars({"x": {"FT": -0.5, "R4K": 0.5}})
        ft_line = next(l for l in text.splitlines() if "FT" in l)
        assert "-" in ft_line.split("|")[1]

    def test_empty(self):
        assert render_grouped_bars({}) == ""
