"""Analysis layer: metric definitions and table rendering."""

import pytest

from repro.analysis.metrics import (
    classify_imbalance,
    imbalance_percent,
    interconnect_percent,
)
from repro.analysis.tables import format_factor, format_percent, format_table
from repro.sim.results import EpochRecord, RunResult


class TestClassification:
    """Section 3.5.2's boundaries: <85% low, >130% high."""

    def test_low(self):
        assert classify_imbalance(0.0) == "low"
        assert classify_imbalance(0.84) == "low"

    def test_moderate(self):
        assert classify_imbalance(0.85) == "moderate"
        assert classify_imbalance(1.13) == "moderate"
        assert classify_imbalance(1.30) == "moderate"

    def test_high(self):
        assert classify_imbalance(1.31) == "high"
        assert classify_imbalance(2.53) == "high"


class TestMetricAccessors:
    def test_percent_views(self):
        result = RunResult(
            app="x", environment="linux", policy="ft",
            completion_seconds=1.0, epochs=1,
            records=[EpochRecord(0, 1.0, imbalance=1.35, max_link_rho=0.09,
                                 local_fraction=0.5)],
        )
        assert imbalance_percent(result) == pytest.approx(135.0)
        assert interconnect_percent(result) == pytest.approx(9.0)


class TestFormatting:
    def test_format_percent(self):
        assert format_percent(0.253) == "25%"
        assert format_percent(0.253, signed=True) == "+25%"
        assert format_percent(-0.1, signed=True) == "-10%"

    def test_format_factor(self):
        assert format_factor(2.345) == "x2.35"

    def test_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["longer", 22]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2]
        data = [l for l in lines if l.startswith(("a", "longer"))]
        assert len(data) == 2
        # Columns align: 'value' entries start at the same offset.
        assert data[0].index("1") == data[1].index("2")

    def test_table_without_title(self):
        text = format_table(["h"], [["x"]])
        assert text.splitlines()[0] == "h"
