"""Synchronisation cost model: blocking waits vs MCS spin loops."""

import pytest

from repro.guest.sync import SyncModel


@pytest.fixture
def model():
    return SyncModel()


class TestBlocking:
    def test_zero_rate_costs_nothing(self, model):
        assert model.overhead_fraction(0.0, "guest") == 0.0

    def test_guest_much_worse_than_native(self, model):
        rate = 10_000.0
        native = model.overhead_fraction(rate, "native")
        guest = model.overhead_fraction(rate, "guest")
        assert guest / native == pytest.approx(10.9 / 0.9, rel=1e-6)

    def test_overhead_saturates(self, model):
        assert model.overhead_fraction(1e9, "guest") <= 0.9

    def test_linear_below_saturation(self, model):
        low = model.overhead_fraction(1000, "guest")
        high = model.overhead_fraction(2000, "guest")
        assert high == pytest.approx(2 * low)


class TestMcs:
    def test_mcs_removes_ipi_cost(self, model):
        rate = 30_000.0
        blocking = model.overhead_fraction(rate, "guest")
        mcs = model.overhead_fraction(rate, "guest", mcs_locks=True)
        assert mcs == model.mcs_spin_overhead
        assert mcs < blocking

    def test_mcs_zeroes_context_switches(self, model):
        """Section 5.3.2: zero intentional context switches after MCS."""
        assert model.effective_ctx_rate(30_000.0, mcs_locks=True) == 0.0
        assert model.effective_ctx_rate(30_000.0, mcs_locks=False) == 30_000.0

    def test_mcs_not_free(self, model):
        assert model.overhead_fraction(30_000.0, "native", mcs_locks=True) > 0
