"""Guest virtual memory: VMAs, lazy allocation, faults."""

import pytest

from repro.errors import GuestFaultError
from repro.guest.process import Process, Thread
from repro.guest.vmm import GuestAddressSpace


@pytest.fixture
def aspace():
    frames = iter(range(1000, 2000))
    released = []
    space = GuestAddressSpace(
        backing=lambda vpfn, thread: next(frames),
        release=released.append,
    )
    space.released = released
    return space


@pytest.fixture
def thread():
    return Thread(tid=0, vcpu_id=0)


class TestVma:
    def test_mmap_allocates_nothing(self, aspace):
        vma = aspace.mmap("heap", 10)
        assert vma.num_pages == 10
        assert aspace.resident_pages == 0

    def test_vmas_do_not_overlap(self, aspace):
        a = aspace.mmap("a", 10)
        b = aspace.mmap("b", 10)
        assert a.end_vpfn <= b.start_vpfn

    def test_zero_pages_rejected(self, aspace):
        with pytest.raises(GuestFaultError):
            aspace.mmap("x", 0)

    def test_contains(self, aspace):
        vma = aspace.mmap("x", 4)
        assert vma.start_vpfn in vma
        assert vma.end_vpfn not in vma


class TestTouch:
    def test_first_touch_faults(self, aspace, thread):
        vma = aspace.mmap("heap", 4)
        frame = aspace.touch(vma.start_vpfn, thread)
        assert frame == 1000
        assert aspace.guest_faults == 1
        assert aspace.resident_pages == 1

    def test_second_touch_is_free(self, aspace, thread):
        vma = aspace.mmap("heap", 4)
        first = aspace.touch(vma.start_vpfn, thread)
        second = aspace.touch(vma.start_vpfn, thread)
        assert first == second
        assert aspace.guest_faults == 1

    def test_unmapped_address_segfaults(self, aspace, thread):
        with pytest.raises(GuestFaultError, match="segfault"):
            aspace.touch(5, thread)

    def test_translate_before_touch_is_none(self, aspace, thread):
        vma = aspace.mmap("heap", 4)
        assert aspace.translate(vma.start_vpfn) is None


class TestUnmap:
    def test_unmap_releases_frame(self, aspace, thread):
        vma = aspace.mmap("heap", 4)
        frame = aspace.touch(vma.start_vpfn, thread)
        assert aspace.unmap_page(vma.start_vpfn)
        assert aspace.released == [frame]
        assert aspace.translate(vma.start_vpfn) is None

    def test_unmap_untouched_is_noop(self, aspace):
        vma = aspace.mmap("heap", 4)
        assert not aspace.unmap_page(vma.start_vpfn)

    def test_munmap_releases_all_touched(self, aspace, thread):
        vma = aspace.mmap("heap", 4)
        aspace.touch(vma.start_vpfn, thread)
        aspace.touch(vma.start_vpfn + 2, thread)
        assert aspace.munmap(vma) == 2
        assert vma not in aspace.vmas
        with pytest.raises(GuestFaultError):
            aspace.touch(vma.start_vpfn, thread)

    def test_retouch_after_unmap_faults_again(self, aspace, thread):
        vma = aspace.mmap("heap", 4)
        aspace.touch(vma.start_vpfn, thread)
        aspace.unmap_page(vma.start_vpfn)
        frame = aspace.touch(vma.start_vpfn, thread)
        assert frame == 1001
        assert aspace.guest_faults == 2


class TestProcess:
    def test_spawn_threads(self, aspace):
        proc = Process("app", aspace)
        t0 = proc.spawn_thread(vcpu_id=0)
        t1 = proc.spawn_thread(vcpu_id=1)
        assert proc.num_threads == 2
        assert proc.master is t0
        assert t1.tid == 1

    def test_master_requires_threads(self, aspace):
        proc = Process("app", aspace)
        with pytest.raises(RuntimeError):
            _ = proc.master
