"""Guest page allocators: the oblivious free list and the native one."""

import pytest

from repro.errors import OutOfMemoryError
from repro.guest.page_alloc import GuestPageAllocator, NativePageAllocator
from repro.hardware.presets import small_machine


class TestGuestAllocator:
    def test_sequential_bump(self):
        alloc = GuestPageAllocator(first_gpfn=100, num_pages=10)
        assert [alloc.alloc() for _ in range(3)] == [100, 101, 102]

    def test_lifo_reuse(self):
        """Recycled pages come back first (Linux per-CPU lists) — the
        behaviour behind the realloc-while-queued race of section 4.2.4."""
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=10)
        a = alloc.alloc()
        b = alloc.alloc()
        alloc.free(b)
        alloc.free(a)
        assert alloc.alloc() == a
        assert alloc.alloc() == b

    def test_zero_on_free_counted(self):
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=4)
        gpfn = alloc.alloc()
        alloc.free(gpfn)
        assert alloc.pages_zeroed == 1

    def test_zeroing_can_be_disabled(self):
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=4, zero_on_free=False)
        alloc.free(alloc.alloc())
        assert alloc.pages_zeroed == 0

    def test_double_free_rejected(self):
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=4)
        gpfn = alloc.alloc()
        alloc.free(gpfn)
        with pytest.raises(OutOfMemoryError):
            alloc.free(gpfn)

    def test_free_unallocated_rejected(self):
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=4)
        with pytest.raises(OutOfMemoryError):
            alloc.free(2)

    def test_exhaustion(self):
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=2)
        alloc.alloc()
        alloc.alloc()
        with pytest.raises(OutOfMemoryError):
            alloc.alloc()

    def test_counters(self):
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=10)
        a = alloc.alloc()
        alloc.alloc()
        alloc.free(a)
        assert alloc.allocated_pages == 1
        assert alloc.free_pages == 9

    def test_hooks_fire(self):
        events = []
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=4)
        alloc.on_alloc = lambda g: events.append(("a", g))
        alloc.on_release = lambda g: events.append(("r", g))
        g = alloc.alloc()
        alloc.free(g)
        assert events == [("a", g), ("r", g)]

    def test_iter_free_covers_recycled_and_bump(self):
        alloc = GuestPageAllocator(first_gpfn=0, num_pages=5)
        a = alloc.alloc()
        alloc.alloc()
        alloc.free(a)
        free = set(alloc.iter_free())
        assert free == {a, 2, 3, 4}


class TestNativeAllocator:
    @pytest.fixture
    def machine(self):
        return small_machine(num_nodes=4, cpus_per_node=1, frames_per_node=64)

    def test_alloc_on_node(self, machine):
        alloc = NativePageAllocator(machine)
        mfn = alloc.alloc_on(2)
        assert machine.node_of_frame(mfn) == 2

    def test_round_robin(self, machine):
        alloc = NativePageAllocator(machine)
        nodes = [machine.node_of_frame(alloc.alloc_round_robin()) for _ in range(8)]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_fallback_when_full(self, machine):
        alloc = NativePageAllocator(machine)
        for _ in range(64):
            alloc.alloc_on(1)
        mfn = alloc.alloc_on(1)
        assert machine.node_of_frame(mfn) != 1
        assert alloc.fallback_allocations == 1

    def test_oom(self, machine):
        alloc = NativePageAllocator(machine)
        for _ in range(256):
            alloc.alloc_round_robin()
        with pytest.raises(OutOfMemoryError):
            alloc.alloc_on(0)

    def test_reserve_respected(self, machine):
        alloc = NativePageAllocator(machine, reserve_per_node=60)
        for _ in range(4):
            alloc.alloc_on(0)
        mfn = alloc.alloc_on(0)
        assert machine.node_of_frame(mfn) != 0

    def test_free_returns_to_node(self, machine):
        alloc = NativePageAllocator(machine)
        before = machine.memory.free_frames_on(3)
        mfn = alloc.alloc_on(3)
        alloc.free(mfn)
        assert machine.memory.free_frames_on(3) == before
