"""The paravirtual patch: page events flow from allocator to hypervisor."""

import pytest

from repro.core.interface import ExternalInterface
from repro.core.page_queue import PageOp
from repro.guest.page_alloc import GuestPageAllocator
from repro.guest.pv_patch import PvNumaPatch
from repro.hypervisor.hypercalls import Hypercall, HypercallTable


@pytest.fixture
def setup():
    table = HypercallTable()
    flushed = []
    table.register(
        Hypercall.NUMA_PAGE_EVENTS,
        lambda dom, vcpu, events: flushed.append(list(events)),
    )
    table.register(
        Hypercall.NUMA_SET_POLICY, lambda dom, vcpu, args: args["policy"]
    )
    allocator = GuestPageAllocator(first_gpfn=0, num_pages=512)
    external = ExternalInterface(table, domain_id=1)
    patch = PvNumaPatch(allocator, external, batch_size=4, num_partitions=4)
    return allocator, patch, flushed, table


class TestEventFlow:
    def test_alloc_and_release_recorded(self, setup):
        allocator, patch, flushed, _ = setup
        g = allocator.alloc()
        allocator.free(g)
        assert patch.queue.stats.events == 2

    def test_flush_on_full_partition(self, setup):
        allocator, patch, flushed, _ = setup
        # Pages 0,4,8,12 share partition 0 (two LSBs); 4 allocs fill it.
        for _ in range(16):
            allocator.alloc()
        assert flushed, "a partition should have flushed"
        batch = flushed[0]
        assert len(batch) == 4
        assert all(e.op is PageOp.ALLOC for e in batch)

    def test_flush_goes_through_hypercall_table(self, setup):
        allocator, patch, flushed, table = setup
        for _ in range(16):
            allocator.alloc()
        count, seconds = table.stats[Hypercall.NUMA_PAGE_EVENTS]
        assert count == len(flushed) > 0
        assert seconds > 0

    def test_manual_flush_drains_everything(self, setup):
        allocator, patch, flushed, _ = setup
        allocator.alloc()
        patch.flush()
        assert patch.queue.pending() == 0
        assert sum(len(b) for b in flushed) == 1

    def test_disabled_patch_records_nothing(self, setup):
        allocator, patch, flushed, _ = setup
        patch.enabled = False
        allocator.free(allocator.alloc())
        assert patch.queue.stats.events == 0

    def test_detach_removes_hooks(self, setup):
        allocator, patch, flushed, _ = setup
        patch.detach()
        allocator.alloc()
        assert patch.queue.stats.events == 0


class TestReportFreePages:
    def test_reports_whole_free_list(self, setup):
        allocator, patch, flushed, _ = setup
        kept = allocator.alloc()
        reported = patch.report_free_pages()
        assert reported == 511
        events = [e for batch in flushed for e in batch]
        gpfns = {e.gpfn for e in events if e.op is PageOp.RELEASE}
        assert kept not in gpfns
        assert len(gpfns) == 511


class TestSelectPolicy:
    def test_select_policy_dispatches(self, setup):
        allocator, patch, flushed, table = setup
        assert patch.select_policy("first-touch", carrefour=False) == "first-touch"
        count, _ = table.stats[Hypercall.NUMA_SET_POLICY]
        assert count == 1
