"""Native Linux NUMA modes: first-touch, round-4K, Carrefour backend."""

import numpy as np
import pytest

from repro.carrefour.heuristics import Action, PageDecision
from repro.errors import PolicyError
from repro.guest.numa import LinuxNumaMode
from repro.guest.process import Thread
from repro.hardware.presets import small_machine


@pytest.fixture
def machine():
    return small_machine(num_nodes=4, cpus_per_node=2, frames_per_node=512)


def thread_on(node):
    t = Thread(tid=0, vcpu_id=0)
    t.node = node
    return t


class TestFirstTouch:
    def test_allocates_on_toucher_node(self, machine):
        mode = LinuxNumaMode(machine, "first-touch")
        mfn = mode.backing(100, thread_on(3))
        assert machine.node_of_frame(mfn) == 3
        assert mode.node_of_page(100) == 3

    def test_fallback_on_full_node(self, machine):
        mode = LinuxNumaMode(machine, "first-touch")
        while machine.memory.alloc_frames(3, 1) is not None:
            pass
        mfn = mode.backing(100, thread_on(3))
        assert machine.node_of_frame(mfn) != 3


class TestRound4K:
    def test_round_robin(self, machine):
        mode = LinuxNumaMode(machine, "round-4k")
        nodes = [
            machine.node_of_frame(mode.backing(i, thread_on(0)))
            for i in range(8)
        ]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]


class TestValidation:
    def test_unknown_policy_rejected(self, machine):
        with pytest.raises(PolicyError):
            LinuxNumaMode(machine, "numad")

    def test_name(self, machine):
        assert LinuxNumaMode(machine, "round-4k").name == "round-4k"
        assert (
            LinuxNumaMode(machine, "round-4k", carrefour=True).name
            == "round-4k/carrefour"
        )


class TestRelease:
    def test_release_vpfn_frees_current_frame(self, machine):
        mode = LinuxNumaMode(machine, "first-touch")
        before = machine.memory.free_frames_on(1)
        mode.backing(100, thread_on(1))
        assert mode.release_vpfn(100)
        assert machine.memory.free_frames_on(1) == before
        assert mode.node_of_page(100) is None

    def test_release_unknown_is_false(self, machine):
        mode = LinuxNumaMode(machine, "first-touch")
        assert not mode.release_vpfn(123)


class TestCarrefourBackend:
    def _decision(self, vpfn, dst, action=Action.MIGRATE):
        return PageDecision(page=vpfn, domain_id=0, action=action, dst_node=dst)

    def test_migration_moves_frame(self, machine):
        mode = LinuxNumaMode(machine, "first-touch", carrefour=True)
        mode.backing(100, thread_on(0))
        assert mode._apply_decision(self._decision(100, 2))
        assert mode.node_of_page(100) == 2
        assert mode.pages_migrated == 1
        assert mode.migration_seconds > 0

    def test_same_node_is_noop(self, machine):
        mode = LinuxNumaMode(machine, "first-touch", carrefour=True)
        mode.backing(100, thread_on(0))
        assert not mode._apply_decision(self._decision(100, 0))

    def test_unmapped_page_is_noop(self, machine):
        mode = LinuxNumaMode(machine, "first-touch", carrefour=True)
        assert not mode._apply_decision(self._decision(55, 2))

    def test_replicate_discarded(self, machine):
        """The Xen port discards replication; Linux mode mirrors it."""
        mode = LinuxNumaMode(machine, "first-touch", carrefour=True)
        mode.backing(100, thread_on(0))
        assert not mode._apply_decision(
            self._decision(100, 2, action=Action.REPLICATE)
        )

    def test_release_after_migration_frees_new_frame(self, machine):
        """The stale-frame bug this design exists to avoid."""
        mode = LinuxNumaMode(machine, "first-touch", carrefour=True)
        mode.backing(100, thread_on(0))
        mode._apply_decision(self._decision(100, 2))
        before = machine.memory.free_frames_on(2)
        assert mode.release_vpfn(100)
        assert machine.memory.free_frames_on(2) == before + 1

    def test_hooks_fire(self, machine):
        placed, moved = [], []
        mode = LinuxNumaMode(machine, "first-touch", carrefour=True)
        mode.on_page_placed = lambda v, n: placed.append((v, n))
        mode.on_page_moved = lambda v, n: moved.append((v, n))
        mode.backing(100, thread_on(1))
        mode._apply_decision(self._decision(100, 3))
        assert placed == [(100, 1)]
        assert moved == [(100, 3)]

    def test_counters_claimed_by_carrefour(self, machine):
        LinuxNumaMode(machine, "first-touch", carrefour=True)
        assert machine.counters.owner == "carrefour"

    def test_shutdown_releases_counters(self, machine):
        mode = LinuxNumaMode(machine, "first-touch", carrefour=True)
        mode.shutdown()
        assert machine.counters.owner is None
