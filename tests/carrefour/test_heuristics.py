"""Carrefour's per-page heuristics."""

import numpy as np
import pytest

from repro.carrefour.heuristics import (
    Action,
    interleave_decisions,
    migration_decisions,
    replication_decisions,
)
from repro.hardware.counters import HotPageSample


def sample(page, accesses, write_fraction=0.0):
    return HotPageSample(
        page=page, domain_id=1, node_accesses=tuple(accesses),
        write_fraction=write_fraction,
    )


class TestMigration:
    def test_single_remote_accessor_migrates(self):
        pages = {10: 0}
        hot = [sample(10, (0, 100, 0, 0))]
        decisions = migration_decisions(hot, pages.get, budget=10)
        assert len(decisions) == 1
        assert decisions[0].action is Action.MIGRATE
        assert decisions[0].dst_node == 1

    def test_already_local_not_migrated(self):
        hot = [sample(10, (0, 100, 0, 0))]
        decisions = migration_decisions(hot, {10: 1}.get, budget=10)
        assert decisions == []

    def test_shared_page_not_migrated(self):
        hot = [sample(10, (50, 50, 0, 0))]
        decisions = migration_decisions(hot, {10: 2}.get, budget=10)
        assert decisions == []

    def test_dominance_threshold(self):
        hot = [sample(10, (8, 92, 0, 0))]
        assert migration_decisions(hot, {10: 0}.get, 10, single_node_share=0.9)
        assert not migration_decisions(hot, {10: 0}.get, 10, single_node_share=0.95)

    def test_budget_respected(self):
        hot = [sample(i, (0, 100, 0, 0)) for i in range(20)]
        placement = {i: 0 for i in range(20)}
        decisions = migration_decisions(hot, placement.get, budget=5)
        assert len(decisions) == 5

    def test_unmapped_page_skipped(self):
        hot = [sample(10, (0, 100, 0, 0))]
        assert migration_decisions(hot, lambda p: None, budget=10) == []


class TestInterleave:
    def test_moves_from_overloaded_to_underloaded(self):
        rng = np.random.default_rng(1)
        hot = [sample(i, (100, 0, 0, 0)) for i in range(10)]
        placement = {i: 0 for i in range(10)}
        decisions = interleave_decisions(
            hot, placement.get, overloaded=[0], underloaded=[2, 3],
            budget=10, rng=rng,
        )
        assert len(decisions) == 10
        assert all(d.action is Action.INTERLEAVE for d in decisions)
        assert {d.dst_node for d in decisions} <= {2, 3}

    def test_pages_on_ok_nodes_untouched(self):
        rng = np.random.default_rng(1)
        hot = [sample(1, (100, 0, 0, 0))]
        decisions = interleave_decisions(
            hot, {1: 1}.get, overloaded=[0], underloaded=[2],
            budget=10, rng=rng,
        )
        assert decisions == []

    def test_no_targets_no_decisions(self):
        rng = np.random.default_rng(1)
        hot = [sample(1, (100, 0, 0, 0))]
        assert (
            interleave_decisions(hot, {1: 0}.get, [0], [], 10, rng) == []
        )


class TestReplication:
    def test_read_only_shared_pages_selected(self):
        hot = [sample(1, (50, 50, 0, 0), write_fraction=0.0)]
        decisions = replication_decisions(hot, {1: 0}.get, budget=10)
        assert len(decisions) == 1
        assert decisions[0].action is Action.REPLICATE

    def test_written_pages_excluded(self):
        hot = [sample(1, (50, 50, 0, 0), write_fraction=0.5)]
        assert replication_decisions(hot, {1: 0}.get, budget=10) == []

    def test_single_node_pages_excluded(self):
        hot = [sample(1, (100, 0, 0, 0), write_fraction=0.0)]
        assert replication_decisions(hot, {1: 0}.get, budget=10) == []
