"""The Carrefour engine: metrics, enablement logic, user/system split."""

import numpy as np
import pytest

from repro.carrefour.engine import (
    CarrefourConfig,
    CarrefourEngine,
    SystemComponent,
    UserComponent,
)
from repro.carrefour.metrics import compute_metrics
from repro.core.policies.base import EpochObservation
from repro.hardware.counters import HotPageSample, PerfCounters


def observation(matrix, epoch_seconds=1.0, hot_pages=(), max_link_rho=0.0):
    matrix = np.asarray(matrix, dtype=float)
    return EpochObservation(
        epoch_seconds=epoch_seconds,
        access_matrix=matrix,
        controller_rho=matrix.sum(axis=0) / 1e9,
        max_link_rho=max_link_rho,
        hot_pages=list(hot_pages),
    )


def concentrated_matrix(total=1e9, nodes=4):
    m = np.zeros((nodes, nodes))
    m[:, 0] = total / nodes
    return m


class TestMetrics:
    def test_overloaded_underloaded_detection(self):
        obs = observation(concentrated_matrix())
        metrics = compute_metrics(obs)
        assert metrics.overloaded_nodes == (0,)
        assert set(metrics.underloaded_nodes) == {1, 2, 3}
        assert metrics.imbalance > 1.0

    def test_balanced_no_outliers(self):
        obs = observation(np.full((4, 4), 100.0))
        metrics = compute_metrics(obs)
        assert metrics.overloaded_nodes == ()
        assert metrics.underloaded_nodes == ()

    def test_access_rate(self):
        obs = observation(np.full((4, 4), 100.0), epoch_seconds=2.0)
        assert compute_metrics(obs).access_rate_per_s == pytest.approx(800.0)


class TestUserComponent:
    def _user(self, **kwargs):
        return UserComponent(CarrefourConfig(**kwargs), np.random.default_rng(0))

    def test_idle_below_rate_threshold(self):
        user = self._user(min_access_rate_per_s=1e12)
        result = user.decide(
            compute_metrics(observation(concentrated_matrix())), [], lambda p: 0
        )
        assert not result.decisions
        assert not result.interleave_enabled

    def test_interleave_enabled_on_imbalance(self):
        user = self._user(min_access_rate_per_s=1.0)
        hot = [
            HotPageSample(page=i, domain_id=1, node_accesses=(100, 100, 100, 100))
            for i in range(5)
        ]
        result = user.decide(
            compute_metrics(observation(concentrated_matrix(), hot_pages=hot)),
            hot,
            lambda p: 0,
        )
        assert result.interleave_enabled
        assert result.decisions

    def test_migration_enabled_on_poor_locality(self):
        user = self._user(min_access_rate_per_s=1.0)
        matrix = np.full((4, 4), 100.0)  # fully remote-ish, local frac 0.25
        hot = [HotPageSample(page=1, domain_id=1, node_accesses=(0, 400, 0, 0))]
        result = user.decide(
            compute_metrics(observation(matrix)), hot, lambda p: 0
        )
        assert result.migration_enabled
        assert result.decisions[0].dst_node == 1

    def test_replication_disabled_by_default(self):
        user = self._user(min_access_rate_per_s=1.0)
        matrix = np.full((4, 4), 100.0)
        hot = [
            HotPageSample(
                page=1, domain_id=1, node_accesses=(200, 200, 0, 0),
                write_fraction=0.0,
            )
        ]
        result = user.decide(compute_metrics(observation(matrix)), hot, lambda p: 0)
        assert not result.replication_enabled

    def test_budget_cap(self):
        user = self._user(min_access_rate_per_s=1.0, migration_budget=3)
        hot = [
            HotPageSample(page=i, domain_id=1, node_accesses=(100, 100, 100, 100))
            for i in range(10)
        ]
        result = user.decide(
            compute_metrics(observation(concentrated_matrix())), hot, lambda p: 0
        )
        assert len(result.decisions) <= 3


class TestEngine:
    def _engine(self, apply_results=True):
        counters = PerfCounters(4)
        placements = {i: 0 for i in range(100)}
        system = SystemComponent(
            counters,
            placements.get,
            lambda decision: apply_results,
        )
        config = CarrefourConfig(min_access_rate_per_s=1.0)
        return CarrefourEngine(system, config, np.random.default_rng(0)), counters

    def test_iteration_applies_decisions(self):
        engine, _ = self._engine()
        hot = [
            HotPageSample(page=i, domain_id=1, node_accesses=(100, 0, 0, 0))
            for i in range(5)
        ]
        result = engine.run_iteration(
            observation(concentrated_matrix(), hot_pages=hot)
        )
        assert result.applied == len(result.decisions) > 0
        assert engine.system.total_applied == result.applied

    def test_iteration_cost_zero_when_idle(self):
        engine, _ = self._engine()
        engine.config = CarrefourConfig(min_access_rate_per_s=1e15)
        result = engine.run_iteration(observation(concentrated_matrix()))
        assert engine.iteration_cost_seconds(result) == 0.0

    def test_counters_exclusivity(self):
        """Carrefour monopolises the counters (Table 1 footnote)."""
        engine, counters = self._engine()
        with pytest.raises(RuntimeError):
            counters.claim("profiler")
        engine.shutdown()
        counters.claim("profiler")

    def test_history_recorded(self):
        engine, _ = self._engine()
        engine.run_iteration(observation(concentrated_matrix()))
        engine.run_iteration(observation(concentrated_matrix()))
        assert len(engine.history) == 2
