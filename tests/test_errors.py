"""Exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "TopologyError",
            "OutOfMemoryError",
            "P2MError",
            "HypercallError",
            "GuestFaultError",
            "IommuFault",
            "PolicyError",
            "SchedulerError",
            "WorkloadError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_iommu_fault_carries_gpfn(self):
        fault = errors.IommuFault(0x42)
        assert fault.gpfn == 0x42
        assert "0x42" in str(fault)

    def test_iommu_fault_custom_message(self):
        fault = errors.IommuFault(1, "custom")
        assert str(fault) == "custom"

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.P2MError("x")
