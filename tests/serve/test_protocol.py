"""Wire-protocol shapes: canonical encoding, deterministic decode errors."""

import json

import pytest

from repro.errors import ServeError
from repro.serve import protocol


class TestEncodeDecode:
    def test_round_trip(self):
        message = {"op": "submit", "id": 3, "request": {"environment": "linux"}}
        assert protocol.decode(protocol.encode(message)) == message

    def test_encode_is_one_canonical_line(self):
        line = protocol.encode({"b": 1, "a": 2})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert line == b'{"a":2,"b":1}\n'  # sorted keys, no whitespace

    def test_decode_rejects_non_json(self):
        with pytest.raises(ServeError) as err:
            protocol.decode(b"{not json\n")
        assert err.value.code == protocol.ERR_PROTOCOL

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServeError) as err:
            protocol.decode(b"[1, 2]\n")
        assert err.value.code == protocol.ERR_PROTOCOL


class TestBuilders:
    def test_result_message_carries_key_and_cached_flag(self):
        message = protocol.result_message(7, "ab" * 32, [{"app": "x"}], cached=True)
        assert message["ok"] is True
        assert message["op"] == "result"
        assert message["id"] == 7
        assert message["cached"] is True
        assert message["results"] == [{"app": "x"}]

    def test_reject_message_detail_is_optional(self):
        bare = protocol.reject_message(1, protocol.ERR_QUEUE_FULL)
        assert "detail" not in bare
        assert bare["ok"] is False
        detailed = protocol.reject_message(1, protocol.ERR_BAD_REQUEST, "no vms")
        assert detailed["detail"] == "no vms"

    def test_failed_message_records_attempts(self):
        message = protocol.failed_message(4, protocol.ERR_TIMEOUT, attempts=3)
        assert message["error"] == protocol.ERR_TIMEOUT
        assert message["attempts"] == 3

    def test_every_builder_encodes(self):
        for message in (
            protocol.result_message(0, "k", [], cached=False),
            protocol.reject_message(0, protocol.ERR_QUEUE_FULL),
            protocol.failed_message(0, protocol.ERR_WORKER_DIED, 2),
            protocol.stats_message({"serve.hits": 1}, "serve: ..."),
            protocol.metrics_message({"format": "repro-trace"}),
            protocol.bye_message(),
            protocol.error_message(protocol.ERR_PROTOCOL, "bad line"),
        ):
            assert json.loads(protocol.encode(message).decode()) == message
