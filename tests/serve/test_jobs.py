"""Job-queue semantics: dedup attach, backpressure, retry, drain.

No pytest-asyncio in the environment; each test drives its own loop
through ``asyncio.run``.
"""

import asyncio

from repro.serve.jobs import ATTACHED, CLOSED, FULL, QUEUED, JobQueue
from repro.sim.runspec import RunRequest, VmRequest

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def _request(app="swaptions"):
    return RunRequest(environment="linux", vms=(VmRequest(app=app),))


class TestOffer:
    def test_new_key_is_queued(self):
        async def main():
            queue = JobQueue(maxsize=4)
            status, future = queue.offer(KEY_A, _request())
            assert status == QUEUED
            assert future is not None
            assert queue.depth() == 1
            assert queue.pending() == 1

        asyncio.run(main())

    def test_same_key_attaches_not_requeues(self):
        async def main():
            queue = JobQueue(maxsize=4)
            queue.offer(KEY_A, _request())
            status, future = queue.offer(KEY_A, _request())
            assert status == ATTACHED
            assert future is not None
            assert queue.depth() == 1  # still one job

        asyncio.run(main())

    def test_attach_covers_in_flight_jobs(self):
        async def main():
            queue = JobQueue(maxsize=4)
            queue.offer(KEY_A, _request())
            job = await queue.next_job()  # picked up: queued -> in flight
            assert queue.depth() == 0
            status, future = queue.offer(KEY_A, _request())
            assert status == ATTACHED
            queue.finish(job, ["results"])
            assert await future == ("ok", ["results"])

        asyncio.run(main())

    def test_full_queue_rejects_new_keys(self):
        async def main():
            queue = JobQueue(maxsize=1)
            assert queue.offer(KEY_A, _request())[0] == QUEUED
            assert queue.offer(KEY_B, _request())[0] == FULL
            # ... but attaching to the queued key still works.
            assert queue.offer(KEY_A, _request())[0] == ATTACHED

        asyncio.run(main())

    def test_closed_queue_rejects(self):
        async def main():
            queue = JobQueue(maxsize=4)
            queue.close()
            assert queue.offer(KEY_A, _request())[0] == CLOSED

        asyncio.run(main())


class TestDrain:
    def test_fifo_order_and_take_extra(self):
        async def main():
            queue = JobQueue(maxsize=8)
            for key in (KEY_A, KEY_B, KEY_C):
                queue.offer(key, _request())
            first = await queue.next_job()
            extra = queue.take_extra(2)
            assert first.key == KEY_A
            assert [job.key for job in extra] == [KEY_B, KEY_C]
            assert queue.depth() == 0
            assert queue.in_flight() == 3

        asyncio.run(main())

    def test_requeue_goes_to_front_and_bypasses_bound(self):
        async def main():
            queue = JobQueue(maxsize=1)
            queue.offer(KEY_A, _request())
            job = await queue.next_job()
            queue.offer(KEY_B, _request())  # fills the queue again
            queue.requeue(job)  # retried job re-enters above the bound
            assert queue.depth() == 2
            assert (await queue.next_job()).key == KEY_A

        asyncio.run(main())

    def test_publish_reaches_every_waiter(self):
        async def main():
            queue = JobQueue(maxsize=4)
            _, first = queue.offer(KEY_A, _request())
            _, second = queue.offer(KEY_A, _request())
            job = await queue.next_job()
            queue.fail(job, "timeout")
            assert await first == ("failed", "timeout")
            assert await second == ("failed", "timeout")

        asyncio.run(main())

    def test_next_job_returns_none_once_closed_and_empty(self):
        async def main():
            queue = JobQueue(maxsize=4)
            queue.offer(KEY_A, _request())
            queue.close()
            assert (await queue.next_job()).key == KEY_A  # drains first
            assert await queue.next_job() is None

        asyncio.run(main())


class TestDrained:
    def test_drained_waits_for_in_flight_jobs(self):
        async def main():
            queue = JobQueue(maxsize=4)
            queue.offer(KEY_A, _request())
            job = await queue.next_job()
            waiter = asyncio.create_task(queue.drained())
            await asyncio.sleep(0)
            assert not waiter.done()  # job still in flight
            queue.finish(job, [])
            await asyncio.wait_for(waiter, timeout=5)

        asyncio.run(main())

    def test_drained_is_immediate_when_idle(self):
        async def main():
            queue = JobQueue(maxsize=4)
            await asyncio.wait_for(queue.drained(), timeout=5)

        asyncio.run(main())
