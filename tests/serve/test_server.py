"""Serving-layer behaviour: backpressure, retry, drain, wire identity.

The admission/drain tests drive :meth:`ReproServer.admit` directly (no
sockets) with scripted backends; the end-to-end tests run a real server
on a TCP socket in a background thread and a blocking client against it.
Each test owns its loop via ``asyncio.run`` (no pytest-asyncio here).
"""

import asyncio
import queue as queue_module
import threading

from repro import obs
from repro.config import SimConfig
from repro.runner import Runner
from repro.runstore import MemoryRunStore
from repro.serve import protocol
from repro.serve.client import ClientRunner, ServeClient
from repro.serve.jobs import ATTACHED, QUEUED
from repro.serve.server import HIT, REJECTED, ReproServer, ServeConfig
from repro.serve.workers import ExecutionBackend, InlineBackend, WorkerDied
from repro.sim.runspec import RunRequest, VmRequest


def _linux(app="swaptions", policy="first-touch"):
    return RunRequest(
        environment="linux",
        vms=(VmRequest(app=app, policy=policy),),
        config=SimConfig(),
    )


class GatedBackend(ExecutionBackend):
    """Executes instantly once ``gate`` is set; blocks until then."""

    def __init__(self):
        self.gate = asyncio.Event()
        self.calls = 0

    async def execute(self, requests, batch_worlds):
        self.calls += 1
        await self.gate.wait()
        return [["results", request.vms[0].app] for request in requests]


class FlakyBackend(ExecutionBackend):
    """Raises :class:`WorkerDied` for the first ``failures`` calls."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0
        self.resets = 0

    async def execute(self, requests, batch_worlds):
        self.calls += 1
        if self.calls <= self.failures:
            raise WorkerDied("scripted death")
        return [["ok", request.vms[0].app] for request in requests]

    async def reset(self):
        self.resets += 1


class HangingBackend(ExecutionBackend):
    """Never returns (every attempt must run into the timeout)."""

    def __init__(self):
        self.calls = 0

    async def execute(self, requests, batch_worlds):
        self.calls += 1
        await asyncio.Event().wait()


class TestAdmission:
    def test_store_hit_streams_immediately(self):
        async def main():
            store = MemoryRunStore()
            request = _linux()
            store.put(request.cache_key(), ["stored"])
            server = ReproServer(store=store, backend=GatedBackend())
            kind, (key, results) = server.admit(request)
            assert kind == HIT
            assert results == ["stored"]
            assert server.counters.hits.value == 1

        asyncio.run(main())

    def test_same_key_attaches_across_clients(self):
        async def main():
            backend = GatedBackend()
            server = ReproServer(backend=backend)
            server.start_workers()
            kind_a, (_, future_a) = server.admit(_linux())
            kind_b, (_, future_b) = server.admit(_linux())
            assert kind_a == QUEUED
            assert kind_b == ATTACHED
            backend.gate.set()
            outcome_a = await asyncio.wait_for(future_a, timeout=5)
            outcome_b = await asyncio.wait_for(future_b, timeout=5)
            assert outcome_a == outcome_b
            assert backend.calls == 1  # executed once for both waiters
            assert server.counters.executed.value == 1
            await server.shutdown()

        asyncio.run(main())

    def test_backpressure_rejects_beyond_queue_size(self):
        async def main():
            backend = GatedBackend()
            server = ReproServer(
                backend=backend,
                config=ServeConfig(workers=1, queue_size=1),
            )
            server.start_workers()
            server.admit(_linux("swaptions"))
            for _ in range(20):  # let the worker pick it up (gate blocks it)
                await asyncio.sleep(0)
                if server.jobs.in_flight() == 1:
                    break
            assert server.jobs.in_flight() == 1
            kind_b, _ = server.admit(_linux("bodytrack"))
            kind_c, (_, code) = server.admit(_linux("facesim"))
            assert kind_b == QUEUED  # fills the one queue slot
            assert kind_c == REJECTED
            assert code == protocol.ERR_QUEUE_FULL
            assert server.counters.rejected.value == 1
            backend.gate.set()
            await server.shutdown()

        asyncio.run(main())

    def test_executed_results_reach_store_and_waiter(self):
        async def main():
            store = MemoryRunStore()
            backend = GatedBackend()
            backend.gate.set()
            server = ReproServer(store=store, backend=backend)
            server.start_workers()
            request = _linux()
            _, (key, future) = server.admit(request)
            status, results = await asyncio.wait_for(future, timeout=5)
            assert status == "ok"
            assert store.get(key) == results
            await server.shutdown()

        asyncio.run(main())


class TestFailurePolicy:
    def test_worker_death_retries_then_succeeds(self):
        async def main():
            backend = FlakyBackend(failures=1)
            server = ReproServer(
                backend=backend, config=ServeConfig(workers=1, retries=1)
            )
            server.start_workers()
            _, (_, future) = server.admit(_linux())
            status, _ = await asyncio.wait_for(future, timeout=5)
            assert status == "ok"
            assert backend.calls == 2
            assert backend.resets == 1
            assert server.counters.retries.value == 1
            assert server.counters.worker_deaths.value == 1
            assert server.counters.failed.value == 0
            await server.shutdown()

        asyncio.run(main())

    def test_timeout_exhausts_retries_then_fails(self):
        async def main():
            backend = HangingBackend()
            server = ReproServer(
                backend=backend,
                config=ServeConfig(workers=1, retries=1, timeout_seconds=0.05),
            )
            server.start_workers()
            _, (_, future) = server.admit(_linux())
            status, code = await asyncio.wait_for(future, timeout=10)
            assert status == "failed"
            assert code == protocol.ERR_TIMEOUT
            assert backend.calls == 2  # first attempt + one retry
            assert server.counters.timeouts.value == 2
            assert server.counters.retries.value == 1
            assert server.counters.failed.value == 1
            await server.shutdown()

        asyncio.run(main())


class TestShutdown:
    def test_shutdown_drains_in_flight_work_first(self):
        async def main():
            backend = GatedBackend()
            server = ReproServer(backend=backend, config=ServeConfig(workers=1))
            server.start_workers()
            _, (_, future) = server.admit(_linux())
            for _ in range(20):  # in flight, blocked on the gate
                await asyncio.sleep(0)
                if server.jobs.in_flight() == 1:
                    break
            closer = asyncio.create_task(server.shutdown())
            await asyncio.sleep(0)
            assert server.draining
            assert not closer.done()  # blocked on the drain
            # New work is rejected while the drain runs...
            kind, (_, code) = server.admit(_linux("bodytrack"))
            assert kind == REJECTED
            assert code == protocol.ERR_SHUTTING_DOWN
            # ...but the in-flight job resolves before shutdown returns.
            backend.gate.set()
            await asyncio.wait_for(closer, timeout=5)
            assert future.done()
            assert future.result()[0] == "ok"

        asyncio.run(main())

    def test_shutdown_is_idempotent(self):
        async def main():
            server = ReproServer(backend=InlineBackend())
            server.start_workers()
            await server.shutdown()
            await asyncio.wait_for(server.shutdown(), timeout=5)

        asyncio.run(main())


class TestMetrics:
    def test_metrics_payload_validates(self):
        async def main():
            backend = GatedBackend()
            backend.gate.set()
            server = ReproServer(backend=backend)
            server.start_workers()
            _, (_, future) = server.admit(_linux())
            await asyncio.wait_for(future, timeout=5)
            payload = server.metrics_payload()
            assert obs.validate_payload(payload) == []
            names = {cell["name"] for cell in payload["metrics"]}
            assert "serve.submitted" in names
            assert "serve.executed" in names
            await server.shutdown()

        with obs.session():
            asyncio.run(main())

    def test_stats_counters_include_store_view(self):
        async def main():
            server = ReproServer(backend=InlineBackend())
            counters = server.stats_counters()
            assert "serve.submitted" not in counters  # cells are flat names
            assert counters["submitted"] == 0
            assert counters["store.entries"] == 0
            assert "submitted" in server.summary()

        asyncio.run(main())


def _start_server(store):
    """Run a real server on an ephemeral TCP port in a daemon thread."""
    ready: "queue_module.Queue" = queue_module.Queue()

    def body():
        async def main():
            server = ReproServer(
                store=store,
                backend=InlineBackend(),
                config=ServeConfig(workers=2, batch_worlds=2),
            )
            host, port = await server.start()
            ready.put((host, port))
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=body, daemon=True)
    thread.start()
    host, port = ready.get(timeout=30)
    return thread, host, port


class TestEndToEnd:
    REQUESTS = [
        _linux("swaptions", "first-touch"),
        _linux("swaptions", "round-4k"),
        _linux("bodytrack", "first-touch"),
    ]

    def test_wire_results_match_direct_runner(self):
        thread, host, port = _start_server(MemoryRunStore())
        direct = Runner().resolve(self.REQUESTS)
        try:
            with ServeClient(host, port) as client:
                runner = ClientRunner(client)
                served = runner.resolve(self.REQUESTS + [self.REQUESTS[0]])
                for request in self.REQUESTS:
                    assert served.get(request) == direct.get(request)
                assert runner.requested == 4
                assert runner.deduplicated == 1
                assert runner.executed == 3
                assert runner.hits == 0
            # A second connection resolves everything from the store.
            with ServeClient(host, port) as client:
                second = ClientRunner(client)
                second.resolve(self.REQUESTS)
                assert second.hits == 3
                assert second.executed == 0
                assert ", 0 executed" in second.summary()
                stats = client.stats()
                assert stats["counters"]["executed"] == 3
                client.shutdown()
        finally:
            thread.join(timeout=30)
        assert not thread.is_alive()

    def test_shutdown_bye_arrives_after_drain(self):
        thread, host, port = _start_server(MemoryRunStore())
        with ServeClient(host, port) as client:
            runner = ClientRunner(client)
            runner.resolve([self.REQUESTS[0]])
            client.shutdown()  # blocks until the server said bye
        thread.join(timeout=30)
        assert not thread.is_alive()
