"""The hypervisor CarrefourPolicy: migrations through the real plumbing."""

import numpy as np
import pytest

from repro.carrefour.engine import CarrefourConfig
from repro.core.policies.base import EpochObservation, PolicyName
from repro.hardware.counters import HotPageSample
from repro.hypervisor.hypercalls import Hypercall
from repro.hypervisor.xen import Hypervisor


@pytest.fixture
def setup(machine4):
    hv = Hypervisor(machine4)
    domain = hv.create_domain(
        "t", num_vcpus=2, memory_pages=256, home_nodes=[0, 1, 2, 3]
    )
    hv.policy_manager.carrefour_config = CarrefourConfig(
        min_access_rate_per_s=1.0
    )
    hv.set_policy(domain, carrefour=True)
    return hv, domain


def observation(machine, domain, hot_gpfns, src_node=1):
    n = machine.num_nodes
    matrix = np.zeros((n, n))
    matrix[:, 0] = 1e9 / n  # node 0 overloaded
    hot = [
        HotPageSample(
            page=g,
            domain_id=domain.domain_id,
            node_accesses=tuple(
                int(1000 if i == src_node else 0) for i in range(n)
            ),
        )
        for g in hot_gpfns
    ]
    return EpochObservation(
        epoch_seconds=1.0,
        access_matrix=matrix,
        controller_rho=np.zeros(n),
        max_link_rho=0.5,
        hot_pages=hot,
    )


class TestCarrefourPolicy:
    def test_on_epoch_migrates_hot_pages(self, setup):
        hv, domain = setup
        machine = hv.machine
        policy = domain.numa_policy
        # Pick pages currently on node 0 (round-4K boot placed 0,4,8...).
        victims = [g for g in range(0, 32, 4)]
        for g in victims:
            assert machine.node_of_frame(domain.p2m.translate(g)) == 0
        cost = policy.on_epoch(
            domain, observation(machine, domain, victims, src_node=1)
        )
        assert cost > 0
        # The migration heuristic moved them to their single accessor.
        for g in victims:
            assert machine.node_of_frame(domain.p2m.translate(g)) == 1
        assert domain.p2m.migrations == len(victims)

    def test_commands_travel_through_hypercall(self, setup):
        hv, domain = setup
        policy = domain.numa_policy
        before, _ = hv.hypercalls.stats[Hypercall.CARREFOUR_CONTROL]
        policy.on_epoch(
            domain, observation(hv.machine, domain, [0, 4, 8], src_node=2)
        )
        after, _ = hv.hypercalls.stats[Hypercall.CARREFOUR_CONTROL]
        assert after == before + 1

    def test_idle_when_rate_low(self, setup):
        hv, domain = setup
        policy = domain.numa_policy
        policy.engine.config = CarrefourConfig(min_access_rate_per_s=1e15)
        policy.engine.user.config = policy.engine.config
        n = hv.machine.num_nodes
        obs = EpochObservation(
            epoch_seconds=1.0,
            access_matrix=np.ones((n, n)),
            controller_rho=np.zeros(n),
            max_link_rho=0.0,
        )
        assert policy.on_epoch(domain, obs) == 0.0
        assert domain.p2m.migrations == 0

    def test_invalid_pages_not_migrated(self, setup):
        hv, domain = setup
        policy = domain.numa_policy
        mfn = domain.p2m.invalidate(4)
        hv.allocator.free_page(mfn)
        policy.on_epoch(domain, observation(hv.machine, domain, [4], 2))
        assert not domain.p2m.is_valid(4)

    def test_migration_cost_proportional_to_pages(self, setup):
        hv, domain = setup
        policy = domain.numa_policy
        few = policy.on_epoch(
            domain, observation(hv.machine, domain, [0], src_node=3)
        )
        many = policy.on_epoch(
            domain,
            observation(hv.machine, domain, list(range(1, 33)), src_node=3),
        )
        assert many > few
