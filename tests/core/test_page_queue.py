"""Batched page-event queues: partitioning, flushing, replay, lock model."""

import pytest

from repro.core.page_queue import (
    PageEvent,
    PageOp,
    PartitionedPageQueue,
    lock_service_slowdown,
    replay_page_events,
)
from repro.errors import HypercallError


def make_queue(batch=4, partitions=4, flushes=None):
    flushes = flushes if flushes is not None else []
    return (
        PartitionedPageQueue(
            flush_fn=lambda events: flushes.append(list(events)),
            flush_cost_fn=lambda n: n * 1e-7,
            batch_size=batch,
            num_partitions=partitions,
        ),
        flushes,
    )


class TestPartitioning:
    def test_two_lsb_partitioning(self):
        """Section 4.2.4: partitions keyed by the two low PFN bits."""
        queue, _ = make_queue()
        assert queue.partition_of(0b1100) == 0
        assert queue.partition_of(0b1101) == 1
        assert queue.partition_of(0b1110) == 2
        assert queue.partition_of(0b1111) == 3

    def test_partitions_fill_independently(self):
        queue, flushes = make_queue(batch=2, partitions=4)
        queue.record_release(0)
        queue.record_release(1)
        queue.record_release(2)
        assert not flushes
        queue.record_release(4)  # second event in partition 0
        assert len(flushes) == 1
        assert [e.gpfn for e in flushes[0]] == [0, 4]


class TestFlushing:
    def test_flush_at_batch_size(self):
        queue, flushes = make_queue(batch=3, partitions=1)
        for g in range(3):
            queue.record_alloc(g)
        assert len(flushes) == 1
        assert queue.pending() == 0

    def test_flush_all(self):
        queue, flushes = make_queue(batch=100, partitions=4)
        for g in range(10):
            queue.record_release(g)
        queue.flush_all()
        assert queue.pending() == 0
        assert sum(len(b) for b in flushes) == 10

    def test_order_preserved_within_partition(self):
        queue, flushes = make_queue(batch=3, partitions=1)
        queue.record_alloc(5)
        queue.record_release(5)
        queue.record_alloc(9)
        events = flushes[0]
        assert [(e.op, e.gpfn) for e in events] == [
            (PageOp.ALLOC, 5),
            (PageOp.RELEASE, 5),
            (PageOp.ALLOC, 9),
        ]

    def test_stats(self):
        queue, _ = make_queue(batch=2, partitions=1)
        queue.record_alloc(0)
        queue.record_alloc(1)
        stats = queue.stats
        assert stats.events == 2
        assert stats.flushes == 1
        assert stats.flushed_events == 2
        assert stats.events_per_flush == 2
        assert stats.flush_hold_seconds == pytest.approx(2e-7)
        assert stats.lock_acquisitions == 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(HypercallError):
            PartitionedPageQueue(lambda e: None, batch_size=0)
        with pytest.raises(HypercallError):
            PartitionedPageQueue(lambda e: None, num_partitions=0)


class TestReplay:
    """The hypervisor-side newest-wins replay (section 4.2.4)."""

    def _replay(self, events):
        invalidated = []
        inv, skip = replay_page_events(
            events, lambda g: invalidated.append(g) or True
        )
        return invalidated, inv, skip

    def test_release_invalidates(self):
        invalidated, inv, skip = self._replay([PageEvent(PageOp.RELEASE, 7)])
        assert invalidated == [7]
        assert (inv, skip) == (1, 0)

    def test_newest_alloc_wins(self):
        """A released-then-reallocated page must be left alone."""
        events = [PageEvent(PageOp.RELEASE, 7), PageEvent(PageOp.ALLOC, 7)]
        invalidated, inv, skip = self._replay(events)
        assert invalidated == []
        assert (inv, skip) == (0, 1)

    def test_newest_release_wins(self):
        events = [PageEvent(PageOp.ALLOC, 7), PageEvent(PageOp.RELEASE, 7)]
        invalidated, _, _ = self._replay(events)
        assert invalidated == [7]

    def test_each_page_handled_once(self):
        events = [
            PageEvent(PageOp.RELEASE, 7),
            PageEvent(PageOp.ALLOC, 7),
            PageEvent(PageOp.RELEASE, 7),
        ]
        invalidated, inv, skip = self._replay(events)
        assert invalidated == [7]
        assert (inv, skip) == (1, 0)

    def test_already_invalid_not_counted(self):
        inv, skip = replay_page_events(
            [PageEvent(PageOp.RELEASE, 7)], lambda g: False
        )
        assert (inv, skip) == (0, 0)

    def test_mixed_pages(self):
        events = [
            PageEvent(PageOp.RELEASE, 1),
            PageEvent(PageOp.RELEASE, 2),
            PageEvent(PageOp.ALLOC, 2),
            PageEvent(PageOp.RELEASE, 3),
        ]
        invalidated, inv, skip = self._replay(events)
        assert sorted(invalidated) == [1, 3]
        assert (inv, skip) == (2, 1)


class TestLockModel:
    def test_no_churn_no_slowdown(self):
        assert lock_service_slowdown(0.0, 48, 1e-6) == 1.0

    def test_wrmem_strawman_divides_by_three(self):
        """Section 4.2.3: one empty hypercall per release (one release per
        15 us per thread, 48 threads) divides performance by ~3."""
        slowdown = lock_service_slowdown(1.0 / 15e-6, 48, 1e-6, 1)
        assert 2.5 < slowdown < 4.0

    def test_batching_makes_it_negligible(self):
        per_event = (1e-6 + 64 * 0.109e-6) / 64
        slowdown = lock_service_slowdown(1.0 / 15e-6, 48, per_event, 4)
        assert slowdown < 1.05

    def test_partitioning_helps(self):
        per_event = 0.3e-6
        one = lock_service_slowdown(20_000, 48, per_event, 1)
        four = lock_service_slowdown(20_000, 48, per_event, 4)
        assert four < one
