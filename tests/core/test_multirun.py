"""The multi-run batched engine vs the scalar per-world oracle.

The contract of :mod:`repro.core.multirun` is *byte identity*: a group of
requests executed as one structure-of-arrays batch must produce exactly
the results (and store entries, and per-run metrics) serial execution
produces. These tests pin the grouping rules, the fallback rules, and the
identity itself on fixed batches; the randomized sweep lives in
``tests/properties/test_multirun_parity.py``.
"""

import json

import pytest

from repro.config import SimConfig
from repro.core.multirun import (
    BatchOutcome,
    execute_batch,
    group_signature,
    multirun_enabled,
    run_worlds,
    scalar_multirun,
)
from repro.errors import MultiRunError
from repro.runner import Runner, execute_request
from repro.runner.exec import build_world
from repro.sim.engine import run_world
from repro.sim.runspec import RunRequest, VmRequest

#: Coarse and short: ~10 epochs per run instead of ~40.
FAST = SimConfig(epoch_seconds=4.0, page_scale=4096)


def xen_req(app, policy, seed=42, carrefour=False, features="Xen"):
    return RunRequest(
        environment="xen",
        features=features,
        vms=(VmRequest(app=app, policy=policy, carrefour=carrefour),),
        config=SimConfig(epoch_seconds=4.0, page_scale=4096, rng_seed=seed),
    )


def linux_req(app, policy="first-touch"):
    return RunRequest(
        environment="linux",
        vms=(VmRequest(app=app, policy=policy),),
        config=FAST,
    )


def dumps(groups):
    return json.dumps(
        [[r.to_json() for r in g] for g in groups], sort_keys=True
    )


class TestGroupSignature:
    def test_cluster_requests_never_batch(self):
        request = RunRequest(
            environment="cluster",
            features="Xen+",
            vms=(
                VmRequest(app="cg.C", policy="round-4k", num_vcpus=6),
                VmRequest(app="sp.C", policy="round-4k", num_vcpus=6),
            ),
            config=FAST,
        )
        assert group_signature(request) is None

    def test_sanitize_p2m_requests_never_batch(self):
        armed = RunRequest(
            environment="xen",
            features="Xen",
            vms=(VmRequest(app="swaptions", policy="round-4k"),),
            config=SimConfig(epoch_seconds=4.0, page_scale=4096, sanitize_p2m=True),
        )
        assert group_signature(armed) is None

    def test_rng_seed_does_not_split_groups(self):
        """A seed sweep is the canonical batch: seeds share a signature."""
        a = xen_req("swaptions", "round-4k", seed=1)
        b = xen_req("swaptions", "round-4k", seed=2)
        assert group_signature(a) == group_signature(b)

    def test_apps_and_policies_share_a_signature(self):
        a = xen_req("swaptions", "round-4k")
        b = xen_req("ep.D", "first-touch")
        assert group_signature(a) == group_signature(b)

    def test_environment_and_config_split_groups(self):
        base = xen_req("swaptions", "round-4k")
        assert group_signature(base) != group_signature(
            linux_req("swaptions")
        )
        assert group_signature(base) != group_signature(
            xen_req("swaptions", "round-4k", features="Xen+")
        )
        other_epoch = RunRequest(
            environment="xen",
            features="Xen",
            vms=(VmRequest(app="swaptions", policy="round-4k"),),
            config=SimConfig(epoch_seconds=2.0, page_scale=4096),
        )
        assert group_signature(base) != group_signature(other_epoch)


class TestBatchedParity:
    def test_mixed_batch_is_byte_identical(self):
        """Apps, policies and seeds mixed in one group: bit-equal results."""
        requests = [
            xen_req("swaptions", "round-4k"),
            xen_req("ep.D", "first-touch", seed=7),
            xen_req("ft.C", "round-1g"),
            xen_req("lu.C", "round-4k", seed=3),
        ]
        serial = [execute_request(r) for r in requests]
        outcome = execute_batch(requests, 4)
        assert outcome.batched_runs == 4
        assert outcome.fallback_runs == 0
        assert dumps(outcome.results) == dumps(serial)

    def test_multi_vm_worlds_batch_identically(self):
        """Two-VM worlds of different lengths in one group."""
        requests = [
            RunRequest(
                environment="xen",
                features="Xen+",
                vms=(
                    VmRequest(app="cg.C", policy="round-4k", num_vcpus=6),
                    VmRequest(app="sp.C", policy="round-4k", num_vcpus=6),
                ),
                config=FAST,
            ),
            RunRequest(
                environment="xen",
                features="Xen+",
                vms=(VmRequest(app="streamcluster", policy="first-touch"),),
                config=FAST,
            ),
        ]
        serial = [execute_request(r) for r in requests]
        outcome = execute_batch(requests, 2)
        assert outcome.batched_runs == 2
        assert dumps(outcome.results) == dumps(serial)

    def test_dynamic_policy_batches_identically(self):
        """Carrefour migrates pages mid-run; placement (and with it the
        destination matrices) diverges across epochs — exactly the state
        the batched driver must keep per world."""
        requests = [
            xen_req("streamcluster", "round-4k", carrefour=True),
            xen_req("cg.C", "round-4k", carrefour=True),
        ]
        serial = [execute_request(r) for r in requests]
        outcome = execute_batch(requests, 2)
        assert outcome.batched_runs == 2
        assert dumps(outcome.results) == dumps(serial)

    def test_incompatible_requests_fall_back_per_request(self):
        """linux + xen in one call: two singleton groups, both fall back."""
        requests = [
            xen_req("swaptions", "round-4k"),
            linux_req("swaptions"),
        ]
        serial = [execute_request(r) for r in requests]
        outcome = execute_batch(requests, 2)
        assert outcome.batched_runs == 0
        assert outcome.fallback_runs == 2
        assert dumps(outcome.results) == dumps(serial)

    def test_scalar_multirun_is_the_oracle(self):
        requests = [
            xen_req("swaptions", "round-4k"),
            xen_req("ep.D", "first-touch"),
        ]
        with scalar_multirun():
            assert not multirun_enabled()
            outcome = execute_batch(requests, 2)
        assert multirun_enabled()
        assert outcome.batched_runs == 0
        assert dumps(outcome.results) == dumps(
            [execute_request(r) for r in requests]
        )

    def test_scalar_multirun_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with scalar_multirun():
                raise RuntimeError("boom")
        assert multirun_enabled()

    def test_batch_worlds_one_is_all_fallback(self):
        outcome = execute_batch([xen_req("swaptions", "round-4k")], 1)
        assert isinstance(outcome, BatchOutcome)
        assert outcome.batched_runs == 0
        assert outcome.fallback_runs == 1


class TestRunWorlds:
    def test_single_world_matches_run_world(self):
        request = xen_req("swaptions", "round-4k")
        serial = run_world(build_world(request))
        (batched,) = run_worlds([build_world(request)])
        assert dumps([batched]) == dumps([serial])

    def test_incompatible_worlds_raise(self):
        a = build_world(xen_req("swaptions", "round-4k"))
        b = build_world(
            RunRequest(
                environment="xen",
                features="Xen",
                vms=(VmRequest(app="swaptions", policy="round-4k"),),
                config=SimConfig(epoch_seconds=2.0, page_scale=4096),
            )
        )
        with pytest.raises(MultiRunError):
            run_worlds([a, b])

    def test_empty_group(self):
        assert run_worlds([]) == []


class TestRunnerBatching:
    def _requests(self):
        return [
            xen_req(app, policy)
            for app in ("swaptions", "ep.D", "ft.C")
            for policy in ("round-4k", "first-touch")
        ]

    def test_store_entries_are_byte_identical(self):
        requests = self._requests()
        serial = Runner(jobs=1)
        serial.resolve(requests)
        batched = Runner(batch_worlds=4)
        batched.resolve(requests)
        keys = [r.cache_key() for r in requests]
        a = dumps([serial.store.get(k) for k in keys])
        b = dumps([batched.store.get(k) for k in keys])
        assert a == b

    def test_stats_count_batched_requests(self):
        requests = self._requests()
        runner = Runner(batch_worlds=4)
        runner.resolve(requests)
        assert runner.stats.executed == len(requests)
        assert runner.stats.batched == len(requests)
        assert f"{len(requests)} batched" in runner.stats.summary()
        # Re-resolving is pure store hits: nothing new executes.
        runner.resolve(requests)
        assert runner.stats.executed == len(requests)

    def test_summary_without_batching_is_unchanged(self):
        """No trailing ", 0 batched": tooling greps the serial summary."""
        runner = Runner(jobs=1)
        runner.resolve([xen_req("swaptions", "round-4k")])
        assert runner.stats.summary().endswith("1 executed")


class TestMetricsAttribution:
    """Per-run metrics must not bleed across the worlds of one group.

    ``RunResult.metrics`` (fault, queue, p2m, policy counters) comes from
    each run's own context snapshot; every world of a batch owns private
    context instances, and this test is the regression guard keeping it
    that way — it fails if any batched world's counters pick up a
    sibling's activity.
    """

    def test_batched_metrics_equal_serial_metrics(self):
        requests = [
            xen_req("swaptions", "round-4k"),
            xen_req("streamcluster", "round-4k", carrefour=True),
            xen_req("ep.D", "first-touch", seed=5),
        ]
        serial = [execute_request(r) for r in requests]
        outcome = execute_batch(requests, 3)
        assert outcome.batched_runs == 3
        for want_group, got_group in zip(serial, outcome.results):
            for want, got in zip(want_group, got_group):
                assert want.metrics == got.metrics
                # The snapshot is real, not a stub: it carries counters.
                assert want.metrics
