"""Policy manager: boot defaults, runtime switching, hypercall routing."""

import pytest

from repro.core.policies.base import PolicyName, PolicySpec
from repro.errors import HypercallError, PolicyError
from repro.hypervisor.hypercalls import Hypercall
from repro.hypervisor.xen import Hypervisor


@pytest.fixture
def hv(machine4):
    return Hypervisor(machine4)


def domU(hv, **kwargs):
    kwargs.setdefault("num_vcpus", 2)
    kwargs.setdefault("memory_pages", 64)
    return hv.create_domain("t", **kwargs)


class TestBoot:
    def test_default_boot_policy_is_round_4k(self, hv):
        """Section 4.2.1: a VM boots with round-4K by default."""
        d = domU(hv)
        assert d.numa_policy.name == "round-4k"

    def test_round_1g_boot_option(self, hv):
        d = domU(hv, boot_policy=PolicySpec(PolicyName.ROUND_1G))
        assert d.numa_policy.name == "round-1g"

    def test_double_boot_rejected(self, hv):
        d = domU(hv)
        with pytest.raises(PolicyError):
            hv.policy_manager.boot_domain(d)


class TestRuntimeSwitch:
    def test_switch_to_first_touch(self, hv):
        d = domU(hv)
        policy = hv.policy_manager.set_policy(d.domain_id, PolicyName.FIRST_TOUCH)
        assert policy.name == "first-touch"
        assert d.numa_policy is policy

    def test_no_runtime_switch_to_round_1g(self, hv):
        """Section 4.2.1: round-1G is boot-only."""
        d = domU(hv)
        with pytest.raises(PolicyError, match="boot option"):
            hv.policy_manager.set_policy(d.domain_id, PolicyName.ROUND_1G)

    def test_carrefour_toggle_keeps_base(self, hv):
        d = domU(hv)
        hv.policy_manager.set_policy(d.domain_id, PolicyName.FIRST_TOUCH)
        hv.policy_manager.set_policy(d.domain_id, carrefour=True)
        assert d.numa_policy.name == "first-touch/carrefour"
        hv.policy_manager.set_policy(d.domain_id, carrefour=False)
        assert d.numa_policy.name == "first-touch"

    def test_carrefour_on_round_1g_rejected(self, hv):
        d = domU(hv, boot_policy=PolicySpec(PolicyName.ROUND_1G))
        with pytest.raises(PolicyError):
            hv.policy_manager.set_policy(d.domain_id, carrefour=True)

    def test_change_log(self, hv):
        d = domU(hv)
        hv.policy_manager.set_policy(d.domain_id, PolicyName.FIRST_TOUCH)
        changes = [
            c for c in hv.policy_manager.changes if c.domain_id == d.domain_id
        ]
        assert [c.new for c in changes] == ["round-4k", "first-touch"]

    def test_unknown_domain_rejected(self, hv):
        with pytest.raises(PolicyError):
            hv.policy_manager.set_policy(99, PolicyName.FIRST_TOUCH)


class TestHypercalls:
    def test_set_policy_hypercall(self, hv):
        d = domU(hv)
        name = hv.hypercalls.dispatch(
            Hypercall.NUMA_SET_POLICY,
            d.domain_id,
            0,
            {"policy": "first-touch", "carrefour": None},
        )
        assert name == "first-touch"

    def test_set_policy_bad_args(self, hv):
        d = domU(hv)
        with pytest.raises(HypercallError):
            hv.hypercalls.dispatch(Hypercall.NUMA_SET_POLICY, d.domain_id, 0, None)

    def test_page_events_ignored_without_first_touch(self, hv):
        d = domU(hv)
        result = hv.hypercalls.dispatch(
            Hypercall.NUMA_PAGE_EVENTS, d.domain_id, 0, []
        )
        assert result == (0, 0)
        assert hv.policy_manager.ignored_event_flushes == 1

    def test_page_events_routed_to_first_touch(self, hv):
        from repro.core.page_queue import PageEvent, PageOp

        d = domU(hv)
        hv.policy_manager.set_policy(d.domain_id, PolicyName.FIRST_TOUCH)
        inv, skip = hv.hypercalls.dispatch(
            Hypercall.NUMA_PAGE_EVENTS,
            d.domain_id,
            0,
            [PageEvent(PageOp.RELEASE, 5)],
        )
        assert (inv, skip) == (1, 0)
        assert not d.p2m.is_valid(5)

    def test_carrefour_control_requires_dom0(self, hv):
        d = domU(hv)
        hv.policy_manager.set_policy(d.domain_id, carrefour=True)
        with pytest.raises(HypercallError, match="dom0"):
            hv.hypercalls.dispatch(
                Hypercall.CARREFOUR_CONTROL,
                d.domain_id,
                0,
                {"target_domain": d.domain_id, "decisions": []},
            )

    def test_carrefour_control_rejects_non_carrefour_domain(self, hv):
        d = domU(hv)
        with pytest.raises(HypercallError):
            hv.hypercalls.dispatch(
                Hypercall.CARREFOUR_CONTROL,
                0,
                0,
                {"target_domain": d.domain_id, "decisions": []},
            )

    def test_forget_domain_releases_counters(self, hv):
        d = domU(hv)
        hv.policy_manager.set_policy(d.domain_id, carrefour=True)
        assert hv.machine.counters.owner == "carrefour"
        hv.destroy_domain(d)
        assert hv.machine.counters.owner is None
