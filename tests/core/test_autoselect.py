"""Automatic policy selection (section 7 extension)."""

import pytest

from repro.core.autoselect import (
    DEFAULT_CANDIDATES,
    CounterHeuristicSelector,
    ProbingSelector,
    SelectionReport,
    make_xen_probe,
)
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.results import EpochRecord, RunResult
from repro.workloads.suite import get_app

from tests.conftest import fast_app


def fake_result(rate, imbalance=0.0, epochs=3):
    return RunResult(
        app="x", environment="xen+", policy="p", completion_seconds=1.0,
        epochs=epochs,
        records=[
            EpochRecord(i, rate, imbalance=imbalance, max_link_rho=0.0,
                        local_fraction=1.0)
            for i in range(epochs)
        ],
    )


class TestProbingSelector:
    def test_picks_highest_throughput(self):
        rates = {
            PolicyName.FIRST_TOUCH: 10.0,
            PolicyName.ROUND_4K: 30.0,
        }

        def probe(spec, epochs):
            base = rates[spec.base]
            if spec.carrefour:
                base *= 0.9
            return fake_result(base)

        report = ProbingSelector(probe).select()
        assert report.chosen == PolicySpec(PolicyName.ROUND_4K)
        assert len(report.probes) == len(DEFAULT_CANDIDATES)
        assert "probed" in report.rationale

    def test_custom_candidates(self):
        report = ProbingSelector(
            lambda spec, epochs: fake_result(1.0),
            candidates=[PolicySpec(PolicyName.FIRST_TOUCH)],
        ).select()
        assert report.chosen == PolicySpec(PolicyName.FIRST_TOUCH)


class TestCounterHeuristic:
    def _selector(self, imbalance, **kwargs):
        return CounterHeuristicSelector(
            lambda spec, epochs: fake_result(1.0, imbalance=imbalance),
            **kwargs,
        )

    def test_low_class_keeps_first_touch(self):
        report = self._selector(0.3).select()
        assert report.chosen == PolicySpec(PolicyName.FIRST_TOUCH)
        assert "low" in report.rationale

    def test_moderate_class_adds_carrefour(self):
        report = self._selector(1.0).select()
        assert report.chosen == PolicySpec(PolicyName.FIRST_TOUCH, True)

    def test_high_class_switches_to_round4k_carrefour(self):
        report = self._selector(2.5).select()
        assert report.chosen == PolicySpec(PolicyName.ROUND_4K, True)

    def test_disk_override(self):
        """A disk-heavy domain must not forfeit the passthrough driver."""
        report = self._selector(0.3, disk_mb_s=200.0).select()
        assert report.chosen.base is PolicyName.ROUND_4K
        assert "passthrough" in report.rationale

    def test_churn_override(self):
        report = self._selector(0.3, churn_per_thread_s=60_000.0).select()
        assert report.chosen.base is PolicyName.ROUND_4K
        assert "refault" in report.rationale

    def test_no_overrides_outside_hypervisor(self):
        report = self._selector(
            0.3, disk_mb_s=200.0, hypervisor_mode=False
        ).select()
        assert report.chosen.base is PolicyName.FIRST_TOUCH


class TestEndToEnd:
    def test_probe_runs_real_simulation(self):
        app = fast_app(get_app("cg.C"))
        probe = make_xen_probe(app)
        result = probe(PolicySpec(PolicyName.ROUND_4K), 2)
        assert result.epochs <= 2
        assert result.records

    def test_heuristic_classifies_real_apps(self):
        # cg.C is "low": first-touch sticks; kmeans is "high": round-4K/C.
        for name, expected_base, expected_carrefour in (
            ("cg.C", PolicyName.FIRST_TOUCH, False),
            ("kmeans", PolicyName.ROUND_4K, True),
        ):
            app = fast_app(get_app(name))
            selector = CounterHeuristicSelector(
                make_xen_probe(app),
                disk_mb_s=app.disk_mb_s,
                churn_per_thread_s=0.0,
            )
            report = selector.select()
            assert report.chosen.base is expected_base
            assert report.chosen.carrefour is expected_carrefour

    def test_probing_matches_oracle_for_cg(self):
        app = fast_app(get_app("cg.C"))
        report = ProbingSelector(make_xen_probe(app), probe_epochs=4).select()
        assert report.chosen.base is PolicyName.FIRST_TOUCH
