"""The internal interface: map, invalidate, migrate."""

import pytest

from repro.core.interface import ExternalInterface, InternalInterface
from repro.errors import P2MError
from repro.hardware.presets import small_machine
from repro.hypervisor.allocator import XenHeapAllocator
from repro.hypervisor.domain import Domain
from repro.hypervisor.hypercalls import Hypercall, HypercallTable


@pytest.fixture
def setup():
    machine = small_machine(num_nodes=4, cpus_per_node=2, frames_per_node=1024)
    allocator = XenHeapAllocator(machine, machine.config)
    internal = InternalInterface(machine, allocator)
    domain = Domain(
        domain_id=1, name="d", num_vcpus=2, memory_pages=64, home_nodes=(0, 1)
    )
    return machine, internal, domain


class TestMapPage:
    def test_map_on_chosen_node(self, setup):
        machine, internal, domain = setup
        mfn = internal.map_page(domain, 3, node=2)
        assert machine.node_of_frame(mfn) == 2
        assert domain.p2m.translate(3) == mfn
        assert internal.node_of_gpfn(domain, 3) == 2

    def test_double_map_rejected(self, setup):
        machine, internal, domain = setup
        internal.map_page(domain, 3, node=2)
        with pytest.raises(P2MError, match="migrate instead"):
            internal.map_page(domain, 3, node=1)


class TestInvalidate:
    def test_invalidate_frees_frame(self, setup):
        machine, internal, domain = setup
        before = machine.memory.free_frames_on(2)
        internal.map_page(domain, 3, node=2)
        assert internal.invalidate_page(domain, 3)
        assert machine.memory.free_frames_on(2) == before
        assert internal.node_of_gpfn(domain, 3) is None

    def test_invalidate_twice_is_false(self, setup):
        machine, internal, domain = setup
        internal.map_page(domain, 3, node=2)
        internal.invalidate_page(domain, 3)
        assert not internal.invalidate_page(domain, 3)

    def test_invalidate_absent_is_false(self, setup):
        machine, internal, domain = setup
        assert not internal.invalidate_page(domain, 9)


class TestMigratePage:
    def test_migrate_moves_and_frees_old(self, setup):
        machine, internal, domain = setup
        internal.map_page(domain, 3, node=0)
        free2 = machine.memory.free_frames_on(2)
        free0 = machine.memory.free_frames_on(0)
        assert internal.migrate_page(domain, 3, dst_node=2)
        assert internal.node_of_gpfn(domain, 3) == 2
        assert machine.memory.free_frames_on(2) == free2 - 1
        assert machine.memory.free_frames_on(0) == free0 + 1

    def test_migrate_restores_writability(self, setup):
        machine, internal, domain = setup
        internal.map_page(domain, 3, node=0)
        internal.migrate_page(domain, 3, dst_node=2)
        assert domain.p2m.lookup(3).writable

    def test_migrate_same_node_is_noop(self, setup):
        machine, internal, domain = setup
        internal.map_page(domain, 3, node=0)
        assert not internal.migrate_page(domain, 3, dst_node=0)

    def test_migrate_invalid_entry_is_noop(self, setup):
        machine, internal, domain = setup
        assert not internal.migrate_page(domain, 9, dst_node=2)

    def test_migrate_to_full_node_fails_gracefully(self, setup):
        machine, internal, domain = setup
        internal.map_page(domain, 3, node=0)
        while machine.memory.alloc_frames(2, 1) is not None:
            pass
        assert not internal.migrate_page(domain, 3, dst_node=2)
        assert internal.node_of_gpfn(domain, 3) == 0

    def test_migration_log_and_cost(self, setup):
        machine, internal, domain = setup
        internal.map_page(domain, 3, node=0)
        internal.migrate_page(domain, 3, dst_node=2)
        assert len(internal.migration_log) == 1
        record = internal.migration_log[0]
        assert (record.src_node, record.dst_node) == (0, 2)
        cost = internal.take_migration_seconds()
        assert cost == pytest.approx(internal.page_copy_seconds)
        assert internal.take_migration_seconds() == 0.0


class TestExternalInterface:
    def test_set_policy_hypercall(self):
        table = HypercallTable()
        seen = {}
        table.register(
            Hypercall.NUMA_SET_POLICY,
            lambda dom, vcpu, args: seen.update(dom=dom, **args),
        )
        external = ExternalInterface(table, domain_id=7)
        external.set_policy("first-touch", carrefour=True)
        assert seen == {"dom": 7, "policy": "first-touch", "carrefour": True}

    def test_flush_page_events_hypercall(self):
        table = HypercallTable()
        batches = []
        table.register(
            Hypercall.NUMA_PAGE_EVENTS,
            lambda dom, vcpu, events: batches.append(events),
        )
        external = ExternalInterface(table, domain_id=7)
        external.flush_page_events([1, 2, 3])
        assert batches == [[1, 2, 3]]
        assert external.flush_cost(64) == pytest.approx(
            table.costs.flush_cost(64)
        )
