"""The four NUMA policies and the policy spec parsing."""

import pytest

from repro.core.interface import InternalInterface
from repro.core.page_queue import PageEvent, PageOp
from repro.core.policies import (
    CarrefourPolicy,
    FirstTouchPolicy,
    PolicyName,
    PolicySpec,
    Round1GPolicy,
    Round4KPolicy,
    make_policy,
)
from repro.errors import PolicyError
from repro.hardware.presets import small_machine
from repro.hypervisor.allocator import XenHeapAllocator
from repro.hypervisor.domain import Domain


@pytest.fixture
def setup():
    machine = small_machine(num_nodes=4, cpus_per_node=2, frames_per_node=8192)
    allocator = XenHeapAllocator(machine, machine.config)
    internal = InternalInterface(machine, allocator)
    domain = Domain(
        domain_id=1, name="d", num_vcpus=2, memory_pages=256, home_nodes=(0, 1, 2, 3)
    )
    return machine, allocator, internal, domain


class TestPolicySpec:
    @pytest.mark.parametrize(
        "text,base,carrefour",
        [
            ("round-4k", PolicyName.ROUND_4K, False),
            ("first-touch", PolicyName.FIRST_TOUCH, False),
            ("round-1g", PolicyName.ROUND_1G, False),
            ("first-touch/carrefour", PolicyName.FIRST_TOUCH, True),
            ("Round-4K / Carrefour", PolicyName.ROUND_4K, True),
        ],
    )
    def test_parse(self, text, base, carrefour):
        spec = PolicySpec.parse(text)
        assert spec.base is base
        assert spec.carrefour is carrefour

    def test_parse_rejects_unknown(self):
        with pytest.raises(PolicyError):
            PolicySpec.parse("numa-balancing")

    def test_parse_rejects_round1g_carrefour(self):
        with pytest.raises(PolicyError):
            PolicySpec.parse("round-1g/carrefour")

    def test_label_roundtrip(self):
        spec = PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True)
        assert PolicySpec.parse(spec.label) == spec


class TestRound4K:
    def test_populate_round_robin(self, setup):
        machine, allocator, internal, domain = setup
        policy = Round4KPolicy(internal)
        policy.populate(domain)
        nodes = [
            machine.node_of_frame(domain.p2m.translate(g)) for g in range(8)
        ]
        assert nodes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_flags(self, setup):
        _, _, internal, _ = setup
        policy = Round4KPolicy(internal)
        assert not policy.is_dynamic
        assert not policy.wants_page_events
        assert not policy.requires_iommu_disabled

    def test_fault_round_robins_home_nodes(self, setup):
        machine, allocator, internal, domain = setup
        policy = Round4KPolicy(internal)
        nodes = [policy.on_hypervisor_fault(domain, 0, g, 0) for g in range(4)]
        assert nodes == [0, 1, 2, 3]


class TestRound1G:
    def test_populate_all_pages(self, setup):
        machine, allocator, internal, domain = setup
        policy = Round1GPolicy(internal)
        policy.populate(domain)
        assert domain.p2m.num_valid == domain.memory_pages

    def test_flags(self, setup):
        _, _, internal, _ = setup
        policy = Round1GPolicy(internal)
        assert not policy.wants_page_events
        assert not policy.requires_iommu_disabled


class TestFirstTouch:
    def test_lazy_populate_maps_nothing(self, setup):
        machine, allocator, internal, domain = setup
        policy = FirstTouchPolicy(internal, populate_lazily=True)
        policy.populate(domain)
        assert domain.p2m.num_valid == 0
        assert domain.built

    def test_runtime_switch_keeps_mapping(self, setup):
        machine, allocator, internal, domain = setup
        Round4KPolicy(internal).populate(domain)
        policy = FirstTouchPolicy(internal, populate_lazily=False)
        policy.populate(domain)
        assert domain.p2m.num_valid == domain.memory_pages

    def test_fault_answers_vcpu_node(self, setup):
        machine, allocator, internal, domain = setup
        policy = FirstTouchPolicy(internal)
        assert policy.on_hypervisor_fault(domain, 0, 5, vcpu_node=3) == 3

    def test_flags(self, setup):
        _, _, internal, _ = setup
        policy = FirstTouchPolicy(internal)
        assert policy.wants_page_events
        assert policy.requires_iommu_disabled
        assert not policy.is_dynamic

    def test_page_events_invalidate_released(self, setup):
        machine, allocator, internal, domain = setup
        Round4KPolicy(internal).populate(domain)
        policy = FirstTouchPolicy(internal, populate_lazily=False)
        events = [PageEvent(PageOp.RELEASE, 3), PageEvent(PageOp.RELEASE, 4)]
        inv, skip = policy.on_page_events(domain, events)
        assert (inv, skip) == (2, 0)
        assert not domain.p2m.is_valid(3)
        assert policy.pages_invalidated == 2

    def test_page_events_skip_reallocated(self, setup):
        machine, allocator, internal, domain = setup
        Round4KPolicy(internal).populate(domain)
        policy = FirstTouchPolicy(internal, populate_lazily=False)
        events = [PageEvent(PageOp.RELEASE, 3), PageEvent(PageOp.ALLOC, 3)]
        inv, skip = policy.on_page_events(domain, events)
        assert (inv, skip) == (0, 1)
        assert domain.p2m.is_valid(3)
        assert policy.reallocations_skipped == 1


class TestFactory:
    def test_builds_bases(self, setup):
        _, _, internal, _ = setup
        assert isinstance(
            make_policy(PolicySpec(PolicyName.ROUND_1G), internal), Round1GPolicy
        )
        assert isinstance(
            make_policy(PolicySpec(PolicyName.ROUND_4K), internal), Round4KPolicy
        )
        assert isinstance(
            make_policy(PolicySpec(PolicyName.FIRST_TOUCH), internal),
            FirstTouchPolicy,
        )

    def test_builds_carrefour_wrapper(self, setup):
        _, _, internal, _ = setup
        policy = make_policy(
            PolicySpec(PolicyName.ROUND_4K, carrefour=True), internal
        )
        assert isinstance(policy, CarrefourPolicy)
        assert policy.name == "round-4k/carrefour"
        assert policy.is_dynamic
        policy.shutdown()

    def test_carrefour_inherits_base_flags(self, setup):
        _, _, internal, _ = setup
        policy = make_policy(
            PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True), internal
        )
        assert policy.wants_page_events
        assert policy.requires_iommu_disabled
        policy.shutdown()
