"""The CI perf-compare tool: ratios, annotations, never-fail discipline."""

import json

from repro.perfbench.compare import (
    DEFAULT_THRESHOLD,
    compare_worlds,
    main,
    render_annotations,
)


def payload(**medians):
    return {
        "worlds": {
            world: {"median_seconds": seconds}
            for world, seconds in medians.items()
        }
    }


class TestCompareWorlds:
    def test_ratio_and_regression_flag(self):
        rows = compare_worlds(
            payload(small=0.130, large=0.095),
            payload(small=0.100, large=0.100),
        )
        by_world = {row["world"]: row for row in rows}
        assert by_world["small"]["ratio"] == 1.3
        assert by_world["small"]["regressed"]
        assert by_world["large"]["ratio"] == 0.95
        assert not by_world["large"]["regressed"]
        # Worst regression first.
        assert rows[0]["world"] == "small"

    def test_exactly_at_threshold_not_flagged(self):
        rows = compare_worlds(payload(small=1.2), payload(small=1.0))
        assert not rows[0]["regressed"]
        rows = compare_worlds(
            payload(small=1.2), payload(small=1.0), threshold=0.19
        )
        assert rows[0]["regressed"]

    def test_unmatched_worlds_skipped(self):
        rows = compare_worlds(
            payload(small=1.0, xlarge=5.0), payload(small=1.0, medium=2.0)
        )
        assert [row["world"] for row in rows] == ["small"]

    def test_annotations_only_for_regressions(self):
        rows = compare_worlds(
            payload(small=2.0, large=1.0), payload(small=1.0, large=1.0)
        )
        lines = render_annotations(rows, threshold=DEFAULT_THRESHOLD)
        assert len(lines) == 1
        assert lines[0].startswith("::warning title=perf regression::")
        assert "'small'" in lines[0]
        assert "100% slower" in lines[0]


class TestMain:
    def _write(self, path, data):
        path.write_text(json.dumps(data))
        return str(path)

    def test_regression_warns_but_exits_zero(self, tmp_path, capsys):
        bench = self._write(tmp_path / "bench.json", payload(small=2.0))
        base = self._write(tmp_path / "base.json", payload(small=1.0))
        assert main([bench, base]) == 0
        out = capsys.readouterr().out
        assert "::warning title=perf regression::" in out
        assert "REGRESSED" in out

    def test_clean_run_prints_table_only(self, tmp_path, capsys):
        bench = self._write(tmp_path / "bench.json", payload(small=1.0))
        base = self._write(tmp_path / "base.json", payload(small=1.0))
        assert main([bench, base]) == 0
        out = capsys.readouterr().out
        assert "::warning" not in out
        assert "1.00x baseline median" in out

    def test_missing_file_warns_but_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", payload(small=1.0))
        assert main([str(tmp_path / "nope.json"), base]) == 0
        assert "::warning title=perf compare::" in capsys.readouterr().out

    def test_malformed_json_warns_but_exits_zero(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        base = self._write(tmp_path / "base.json", payload(small=1.0))
        assert main([str(bad), base]) == 0
        assert "::warning title=perf compare::" in capsys.readouterr().out
