"""The perf-benchmark harness: CLI output, determinism, solver speedup."""

import json

import pytest

from repro.config import SimConfig
from repro.lint import sanitizer as p2m_sanitizer
from repro.perfbench import oracle
from repro.perfbench.bench import (
    bench_migration,
    bench_multi_run,
    bench_solver,
)
from repro.perfbench.cli import main
from repro.perfbench.worlds import (
    WORLD_PRESETS,
    XLARGE_PAGE_SCALE,
    build_world,
)
from repro.sim.engine import run_world


class TestCli:
    def test_writes_valid_bench_json(self, tmp_path):
        rc = main(
            [
                "--label", "pr",
                "--output-dir", str(tmp_path),
                "--repeat", "1",
                "--worlds", "small",
                "--solver-iterations", "5",
                "--no-page-path",
            ]
        )
        assert rc == 0
        payload = json.loads((tmp_path / "BENCH_pr.json").read_text())
        assert payload["label"] == "pr"
        assert payload["seed"] == SimConfig().rng_seed
        assert "page_path" not in payload
        small = payload["worlds"]["small"]
        assert small["median_seconds"] > 0
        assert small["iqr_seconds"] >= 0
        assert small["epochs"] > 0
        assert small["epochs_per_second"] > 0
        micro = payload["solver_microbench"]
        assert micro["speedup"] > 0
        assert micro["vectorized_seconds"] > 0
        assert micro["loop_seconds"] > 0

    def test_baseline_delta_printed(self, tmp_path, capsys):
        common = [
            "--output-dir", str(tmp_path),
            "--repeat", "1",
            "--worlds", "small",
            "--solver-iterations", "2",
            "--no-page-path",
        ]
        assert main(["--label", "a", *common]) == 0
        rc = main(
            [
                "--label", "b",
                *common,
                "--baseline", str(tmp_path / "BENCH_a.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "delta vs baseline" in out
        assert "x baseline median" in out

    def test_missing_baseline_skipped(self, tmp_path, capsys):
        rc = main(
            [
                "--label", "c",
                "--output-dir", str(tmp_path),
                "--repeat", "1",
                "--worlds", "small",
                "--solver-iterations", "2",
                "--no-page-path",
                "--baseline", str(tmp_path / "nope.json"),
            ]
        )
        assert rc == 0
        assert "skipping delta" in capsys.readouterr().out


class TestWorlds:
    def test_presets_deterministic(self):
        config = SimConfig()
        first = run_world(build_world("small", config))
        second = run_world(build_world("small", config))
        assert [r.completion_seconds for r in first] == [
            r.completion_seconds for r in second
        ]

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown bench preset"):
            build_world("huge", SimConfig())

    def test_xlarge_is_large_at_page_scale_8(self):
        """The page-heavy preset is the large topology with 32x the pages
        (page scale 8 vs the default 256)."""
        assert "xlarge" in WORLD_PRESETS
        config = SimConfig()
        scale_factor = config.page_scale // XLARGE_PAGE_SCALE
        p2m_sanitizer.disable()  # array-path populate; re-armed below
        try:
            large = build_world("large", config)
            xlarge = build_world("xlarge", config)
        finally:
            p2m_sanitizer.enable()
        assert xlarge.machine.config.page_scale == XLARGE_PAGE_SCALE
        large_domains = sorted(
            run.context.domain.memory_pages for run in large.runs
        )
        xlarge_domains = sorted(
            run.context.domain.memory_pages for run in xlarge.runs
        )
        assert len(xlarge_domains) == len(large_domains)
        for small_pages, big_pages in zip(large_domains, xlarge_domains):
            assert big_pages == small_pages * scale_factor


class TestScalarOracleEquivalence:
    def test_small_world_matches_dict_backend(self):
        """One full world simulated on both page-path backends: identical
        results (the report-level byte-identity check in miniature)."""
        config = SimConfig()
        p2m_sanitizer.disable()  # exercise the real vectorized paths
        try:
            vec = run_world(build_world("small", config))
            with oracle.scalar_page_path():
                scalar = run_world(build_world("small", config))
        finally:
            p2m_sanitizer.enable()
        assert [r.completion_seconds for r in vec] == [
            r.completion_seconds for r in scalar
        ]
        assert [r.epochs for r in vec] == [r.epochs for r in scalar]


class TestMigrationMicrobench:
    def test_batched_rounds_match_scalar_and_are_faster(self):
        """The dirty-round copy kernel: both spellings must transfer an
        identical image, and the batched one must actually be the fast
        path (generous margin for noisy CI hosts)."""
        stats = bench_migration(
            SimConfig(), repeat=3, pages=1024, rounds=4, dirty_pages=128
        )
        assert stats["results_match"] == 1.0
        assert stats["rounds"] == 4.0
        assert stats["pages_per_transfer"] == 1024.0 + 3 * 128.0
        assert stats["speedup"] >= 2.0

    def test_round_structure_seeded(self):
        """The dirty sets come from the config seed, so two benches do
        byte-for-byte the same work."""
        a = bench_migration(SimConfig(), repeat=1, pages=256, rounds=3)
        b = bench_migration(SimConfig(), repeat=1, pages=256, rounds=3)
        assert a["pages_per_transfer"] == b["pages_per_transfer"]
        assert a["results_match"] == b["results_match"] == 1.0


class TestMultiRunBench:
    def test_batched_sweep_meets_speedup_target(self):
        """Acceptance bar from the issue: a 16-world sweep through the
        batched engine is >=3x faster than serial per-run execution,
        with the full report output byte-identical to the serial path.
        Measured headroom is ~4x, so the margin absorbs noisy CI
        hosts."""
        stats = bench_multi_run(SimConfig(), repeat=3)
        assert stats["num_worlds"] == 16.0
        assert stats["results_match"] == 1.0
        assert stats["speedup"] >= 3.0


class TestSolverMicrobench:
    def test_vectorized_meets_speedup_target(self):
        """Acceptance bar from the issue: >=3x over the loop oracle on
        the 8-node machine. Measured headroom is ~25x, so the margin
        absorbs noisy CI hosts."""
        stats = bench_solver(SimConfig(), repeat=3, iterations=50)
        assert stats["speedup"] >= 3.0
