"""The perf-benchmark harness: CLI output, determinism, solver speedup."""

import json

import pytest

from repro.config import SimConfig
from repro.perfbench.bench import bench_solver
from repro.perfbench.cli import main
from repro.perfbench.worlds import build_world
from repro.sim.engine import run_world


class TestCli:
    def test_writes_valid_bench_json(self, tmp_path):
        rc = main(
            [
                "--label", "pr",
                "--output-dir", str(tmp_path),
                "--repeat", "1",
                "--worlds", "small",
                "--solver-iterations", "5",
            ]
        )
        assert rc == 0
        payload = json.loads((tmp_path / "BENCH_pr.json").read_text())
        assert payload["label"] == "pr"
        assert payload["seed"] == SimConfig().rng_seed
        small = payload["worlds"]["small"]
        assert small["median_seconds"] > 0
        assert small["iqr_seconds"] >= 0
        assert small["epochs"] > 0
        assert small["epochs_per_second"] > 0
        micro = payload["solver_microbench"]
        assert micro["speedup"] > 0
        assert micro["vectorized_seconds"] > 0
        assert micro["loop_seconds"] > 0

    def test_baseline_delta_printed(self, tmp_path, capsys):
        common = [
            "--output-dir", str(tmp_path),
            "--repeat", "1",
            "--worlds", "small",
            "--solver-iterations", "2",
        ]
        assert main(["--label", "a", *common]) == 0
        rc = main(
            [
                "--label", "b",
                *common,
                "--baseline", str(tmp_path / "BENCH_a.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "delta vs baseline" in out
        assert "x baseline median" in out

    def test_missing_baseline_skipped(self, tmp_path, capsys):
        rc = main(
            [
                "--label", "c",
                "--output-dir", str(tmp_path),
                "--repeat", "1",
                "--worlds", "small",
                "--solver-iterations", "2",
                "--baseline", str(tmp_path / "nope.json"),
            ]
        )
        assert rc == 0
        assert "skipping delta" in capsys.readouterr().out


class TestWorlds:
    def test_presets_deterministic(self):
        config = SimConfig()
        first = run_world(build_world("small", config))
        second = run_world(build_world("small", config))
        assert [r.completion_seconds for r in first] == [
            r.completion_seconds for r in second
        ]

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown bench preset"):
            build_world("huge", SimConfig())


class TestSolverMicrobench:
    def test_vectorized_meets_speedup_target(self):
        """Acceptance bar from the issue: >=3x over the loop oracle on
        the 8-node machine. Measured headroom is ~25x, so the margin
        absorbs noisy CI hosts."""
        stats = bench_solver(SimConfig(), repeat=3, iterations=50)
        assert stats["speedup"] >= 3.0
