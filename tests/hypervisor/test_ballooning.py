"""The balloon driver and the paper's argument against using it."""

import pytest

from repro.core.interface import ExternalInterface, InternalInterface
from repro.core.page_queue import PageOp
from repro.core.policies.base import PolicyName
from repro.errors import HypercallError
from repro.guest.page_alloc import GuestPageAllocator
from repro.guest.pv_patch import PvNumaPatch
from repro.hypervisor.ballooning import BalloonDriver
from repro.hypervisor.xen import Hypervisor


@pytest.fixture
def setup(hypervisor):
    domain = hypervisor.create_domain("t", num_vcpus=2, memory_pages=128)
    balloon = BalloonDriver(domain, hypervisor.allocator)
    return hypervisor, domain, balloon


class TestBalloonMechanics:
    def test_inflate_surrenders_frames(self, setup):
        hv, domain, balloon = setup
        machine = hv.machine
        free_before = sum(
            machine.memory.free_frames_on(n) for n in range(machine.num_nodes)
        )
        assert balloon.inflate([1, 2, 3]) == 3
        free_after = sum(
            machine.memory.free_frames_on(n) for n in range(machine.num_nodes)
        )
        assert free_after == free_before + 3
        assert balloon.ballooned_pages == 3
        for gpfn in (1, 2, 3):
            assert not domain.p2m.is_valid(gpfn)

    def test_double_inflate_idempotent(self, setup):
        hv, domain, balloon = setup
        balloon.inflate([1])
        assert balloon.inflate([1]) == 0

    def test_deflate_restores_pages(self, setup):
        hv, domain, balloon = setup
        balloon.inflate([1, 2])
        assert balloon.deflate([1, 2]) == 2
        assert balloon.ballooned_pages == 0
        assert domain.p2m.is_valid(1)

    def test_deflate_unknown_pages_ignored(self, setup):
        hv, domain, balloon = setup
        assert balloon.deflate([5]) == 0


class TestThePapersArgument:
    """Section 4.2.3: why first-touch rides a new hypercall instead."""

    def test_ballooned_page_unusable_by_guest(self, setup):
        """A ballooned page cannot be reallocated 'at any time'."""
        hv, domain, balloon = setup
        balloon.inflate([7])
        with pytest.raises(HypercallError, match="deflate first"):
            balloon.guest_use(7)

    def test_page_queue_keeps_page_usable(self, setup):
        """The paper's alternative: report the release through the event
        queue — the hypervisor invalidates the entry, but the guest may
        immediately reallocate the page; the next access simply faults."""
        hv, domain, balloon = setup
        guest_alloc = GuestPageAllocator(first_gpfn=0, num_pages=64)
        external = ExternalInterface(hv.hypercalls, domain.domain_id)
        patch = PvNumaPatch(guest_alloc, external, batch_size=1)
        hv.set_policy(domain, PolicyName.FIRST_TOUCH)
        gpfn = guest_alloc.alloc()
        guest_alloc.free(gpfn)          # reported + invalidated (batch=1)
        assert not domain.p2m.is_valid(gpfn)
        # The guest can reallocate right away — no hypervisor round trip.
        again = guest_alloc.alloc()
        assert again == gpfn
        # And the next access faults the page back in on the right node.
        mfn = hv.guest_access(domain, 1, gpfn)
        assert domain.p2m.is_valid(gpfn)

    def test_deflate_needed_before_reuse(self, setup):
        hv, domain, balloon = setup
        balloon.inflate([9])
        balloon.deflate([9])
        balloon.guest_use(9)  # fine now — but it took a hypervisor trip
        assert balloon.stats.pages_surrendered == 1
        assert balloon.stats.pages_returned == 1
