"""Hypervisor page-fault path."""

import pytest

from repro.core.policies.first_touch import FirstTouchPolicy
from repro.core.interface import InternalInterface
from repro.errors import P2MError
from repro.hardware.presets import small_machine
from repro.hypervisor.allocator import XenHeapAllocator
from repro.hypervisor.domain import Domain
from repro.hypervisor.faults import FaultHandler


@pytest.fixture
def setup():
    machine = small_machine(num_nodes=4, cpus_per_node=2, frames_per_node=2048)
    allocator = XenHeapAllocator(machine, machine.config)
    internal = InternalInterface(machine, allocator)
    handler = FaultHandler(allocator)
    domain = Domain(
        domain_id=1, name="d", num_vcpus=2, memory_pages=100, home_nodes=(0, 1)
    )
    return machine, allocator, internal, handler, domain


class TestFastPath:
    def test_valid_entry_costs_nothing(self, setup):
        machine, allocator, internal, handler, domain = setup
        domain.p2m.set_entry(5, 42)
        mfn = handler.on_access(domain, 0, 5, node_of_vcpu=0)
        assert mfn == 42
        assert handler.stats.hypervisor_faults == 0
        assert handler.stats.seconds_spent == 0.0


class TestFaultPath:
    def test_first_touch_places_on_faulting_node(self, setup):
        machine, allocator, internal, handler, domain = setup
        domain.numa_policy = FirstTouchPolicy(internal)
        mfn = handler.on_access(domain, 0, 5, node_of_vcpu=3)
        assert machine.node_of_frame(mfn) == 3
        assert domain.p2m.translate(5) == mfn
        assert handler.stats.hypervisor_faults == 1

    def test_fault_time_accounted(self, setup):
        machine, allocator, internal, handler, domain = setup
        domain.numa_policy = FirstTouchPolicy(internal)
        handler.on_access(domain, 0, 5, node_of_vcpu=1)
        handler.on_access(domain, 0, 6, node_of_vcpu=1)
        assert handler.stats.seconds_spent == pytest.approx(
            2 * handler.fault_cost_seconds
        )

    def test_no_policy_falls_back_to_home_node(self, setup):
        machine, allocator, internal, handler, domain = setup
        mfn = handler.on_access(domain, 0, 7, node_of_vcpu=3)
        assert machine.node_of_frame(mfn) == domain.home_nodes[0]

    def test_refault_after_invalidation(self, setup):
        """The first-touch cycle: map, release (invalidate), re-fault."""
        machine, allocator, internal, handler, domain = setup
        domain.numa_policy = FirstTouchPolicy(internal)
        handler.on_access(domain, 0, 5, node_of_vcpu=0)
        internal.invalidate_page(domain, 5)
        mfn = handler.on_access(domain, 1, 5, node_of_vcpu=2)
        assert machine.node_of_frame(mfn) == 2
        assert handler.stats.hypervisor_faults == 2


class TestWriteProtection:
    def test_write_fault_accounted(self, setup):
        machine, allocator, internal, handler, domain = setup
        domain.p2m.set_entry(5, 42)
        domain.p2m.write_protect(5)
        handler.on_write_protected(domain, 5)
        assert handler.stats.write_protection_faults == 1
        assert handler.stats.seconds_spent > 0

    def test_write_fault_on_invalid_rejected(self, setup):
        machine, allocator, internal, handler, domain = setup
        with pytest.raises(P2MError):
            handler.on_write_protected(domain, 5)

    def test_write_fault_on_writable_entry_rejected(self, setup):
        # Regression: a write fault against a still-writable entry is a
        # migration-protocol violation (the hardware could not have
        # trapped that write); it used to be silently accounted.
        machine, allocator, internal, handler, domain = setup
        domain.p2m.set_entry(5, 42)
        with pytest.raises(P2MError, match="writable"):
            handler.on_write_protected(domain, 5)
        assert handler.stats.write_protection_faults == 0
        assert handler.stats.seconds_spent == 0.0
