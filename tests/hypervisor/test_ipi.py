"""IPI cost model (Figure 5)."""

import pytest

from repro.errors import SchedulerError
from repro.hypervisor.ipi import IpiModel


@pytest.fixture
def model():
    return IpiModel()


class TestTotals:
    def test_native_total(self, model):
        assert model.cost("native") == pytest.approx(0.9e-6)

    def test_guest_total(self, model):
        assert model.cost("guest") == pytest.approx(10.9e-6)

    def test_guest_is_order_of_magnitude_worse(self, model):
        assert 10 < model.cost("guest") / model.cost("native") < 15

    def test_unknown_mode_rejected(self, model):
        with pytest.raises(SchedulerError):
            model.cost("paravirt")


class TestRepartition:
    @pytest.mark.parametrize("mode", ["native", "guest"])
    def test_shares_sum_to_one(self, model, mode):
        shares = model.repartition(mode)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(0 < s < 1 for s in shares.values())

    def test_guest_has_exit_entry_steps(self, model):
        names = {c.name for c in model.components("guest")}
        assert "sender_vmexit" in names
        assert "vmentry_and_delivery" in names


class TestWakeupOverhead:
    def test_scales_with_rate(self, model):
        low = model.wakeup_overhead(1000, "guest")
        high = model.wakeup_overhead(10000, "guest")
        assert high == pytest.approx(10 * low)

    def test_memcached_rate_is_crushing_in_guest(self, model):
        """127k switches/s/core (Table 2) exceeds a core's whole second."""
        assert model.wakeup_overhead(127_100, "guest") > 1.0
        assert model.wakeup_overhead(127_100, "native") < 0.2
