"""Dirty-page tracking primitives: batch protection, guest writes, pause."""

import numpy as np
import pytest

from repro.errors import DomainError, P2MError
from repro.hypervisor.p2m import P2MTable


@pytest.fixture
def p2m():
    table = P2MTable(domain_id=1)
    for gpfn in range(8):
        table.set_entry(gpfn, 100 + gpfn)
    return table


class TestBatchProtection:
    def test_protect_many_clears_writable(self, p2m):
        gpfns = np.array([0, 2, 4], dtype=np.int64)
        p2m.write_protect_many(gpfns)
        assert not p2m.writable_mask(gpfns).any()
        others = np.array([1, 3, 5], dtype=np.int64)
        assert p2m.writable_mask(others).all()

    def test_unprotect_many_restores_writable(self, p2m):
        gpfns = np.array([0, 2, 4], dtype=np.int64)
        p2m.write_protect_many(gpfns)
        p2m.unprotect_many(gpfns)
        assert p2m.writable_mask(gpfns).all()

    def test_protect_many_invalid_entry_rejected(self, p2m):
        with pytest.raises(P2MError):
            p2m.write_protect_many(np.array([0, 999], dtype=np.int64))

    def test_empty_batch_is_a_no_op(self, p2m):
        p2m.write_protect_many(np.empty(0, dtype=np.int64))
        p2m.unprotect_many(np.empty(0, dtype=np.int64))

    def test_is_writable_matches_mask(self, p2m):
        p2m.write_protect(3)
        assert not p2m.is_writable(3)
        assert p2m.is_writable(4)
        assert not p2m.is_writable(999)

    def test_valid_gpfns_lists_every_mapping(self, p2m):
        assert p2m.valid_gpfns().tolist() == list(range(8))
        p2m.invalidate(5)
        assert 5 not in p2m.valid_gpfns().tolist()


class TestGuestWrite:
    @pytest.fixture
    def domain(self, hypervisor_plus):
        return hypervisor_plus.create_domain(
            name="writer", num_vcpus=2, memory_pages=64
        )

    def test_write_to_writable_page_stamps_memory(self, hypervisor_plus, domain):
        gpfn = int(domain.p2m.valid_gpfns()[0])
        hypervisor_plus.guest_write(domain, 0, gpfn, stamp=7)
        assert domain.read_stamps(np.array([gpfn]))[0] == 7

    def test_protected_write_needs_a_handler(self, hypervisor_plus, domain):
        gpfn = int(domain.p2m.valid_gpfns()[0])
        domain.p2m.write_protect(gpfn)
        with pytest.raises(P2MError, match="handler"):
            hypervisor_plus.guest_write(domain, 0, gpfn, stamp=1)

    def test_handler_logs_and_unprotects(self, hypervisor_plus, domain):
        gpfn = int(domain.p2m.valid_gpfns()[0])
        domain.p2m.write_protect(gpfn)
        dirty = []

        def handler(fault_gpfn):
            dirty.append(fault_gpfn)
            domain.p2m.unprotect(fault_gpfn)

        hypervisor_plus.set_write_fault_handler(domain, handler)
        hypervisor_plus.guest_write(domain, 0, gpfn, stamp=3)
        assert dirty == [gpfn]
        assert domain.read_stamps(np.array([gpfn]))[0] == 3
        assert domain.p2m.is_writable(gpfn)

    def test_handler_leaving_page_protected_rejected(
        self, hypervisor_plus, domain
    ):
        gpfn = int(domain.p2m.valid_gpfns()[0])
        domain.p2m.write_protect(gpfn)
        hypervisor_plus.set_write_fault_handler(domain, lambda g: None)
        with pytest.raises(P2MError):
            hypervisor_plus.guest_write(domain, 0, gpfn, stamp=1)

    def test_paused_domain_rejects_writes(self, hypervisor_plus, domain):
        gpfn = int(domain.p2m.valid_gpfns()[0])
        hypervisor_plus.pause_domain(domain)
        with pytest.raises(DomainError):
            hypervisor_plus.guest_write(domain, 0, gpfn, stamp=1)
        hypervisor_plus.resume_domain(domain)
        hypervisor_plus.guest_write(domain, 0, gpfn, stamp=2)

    def test_write_fault_counted(self, hypervisor_plus, domain):
        gpfn = int(domain.p2m.valid_gpfns()[0])
        domain.p2m.write_protect(gpfn)
        hypervisor_plus.set_write_fault_handler(
            domain, lambda g: domain.p2m.unprotect(g)
        )
        before = hypervisor_plus.fault_handler.stats.write_protection_faults
        hypervisor_plus.guest_write(domain, 0, gpfn, stamp=1)
        after = hypervisor_plus.fault_handler.stats.write_protection_faults
        assert after == before + 1

    def test_clear_handler(self, hypervisor_plus, domain):
        gpfn = int(domain.p2m.valid_gpfns()[0])
        domain.p2m.write_protect(gpfn)
        hypervisor_plus.set_write_fault_handler(
            domain, lambda g: domain.p2m.unprotect(g)
        )
        hypervisor_plus.clear_write_fault_handler(domain)
        with pytest.raises(P2MError):
            hypervisor_plus.guest_write(domain, 0, gpfn, stamp=1)


class TestMemoryImage:
    @pytest.fixture
    def domain(self, hypervisor_plus):
        return hypervisor_plus.create_domain(
            name="image", num_vcpus=1, memory_pages=32
        )

    def test_unwritten_pages_read_zero(self, domain):
        gpfns = domain.p2m.valid_gpfns()[:4]
        assert (domain.read_stamps(gpfns) == 0).all()

    def test_copy_stamps_between_domains(self, hypervisor_plus, domain):
        other = hypervisor_plus.create_domain(
            name="peer", num_vcpus=1, memory_pages=32
        )
        gpfns = domain.p2m.valid_gpfns()[:4]
        for i, gpfn in enumerate(gpfns.tolist()):
            domain.write_stamp(gpfn, i + 1)
        other.copy_stamps_from(domain, gpfns)
        assert np.array_equal(
            other.read_stamps(gpfns), domain.read_stamps(gpfns)
        )

    def test_snapshot_is_a_copy(self, domain):
        gpfn = int(domain.p2m.valid_gpfns()[0])
        snap = domain.image_snapshot()
        domain.write_stamp(gpfn, 9)
        assert snap[gpfn] != 9
