"""vCPU scheduler: pinning, runqueues and fair shares."""

import pytest

from repro.errors import SchedulerError
from repro.hypervisor.domain import Domain
from repro.hypervisor.scheduler import Scheduler


@pytest.fixture
def scheduler():
    return Scheduler(num_pcpus=4)


def domain(domid, vcpus):
    return Domain(
        domain_id=domid, name=f"d{domid}", num_vcpus=vcpus,
        memory_pages=10, home_nodes=(0,),
    )


class TestPinning:
    def test_pin_and_lookup(self, scheduler):
        d = domain(1, 2)
        scheduler.pin(d.vcpus[0], 3)
        assert scheduler.pcpu_of(d.vcpus[0]) == 3
        assert d.vcpus[0].pinned_pcpu == 3

    def test_pin_out_of_range(self, scheduler):
        d = domain(1, 1)
        with pytest.raises(SchedulerError):
            scheduler.pin(d.vcpus[0], 9)

    def test_repin_moves(self, scheduler):
        d = domain(1, 1)
        scheduler.pin(d.vcpus[0], 0)
        scheduler.pin(d.vcpus[0], 1)
        assert scheduler.pcpu_of(d.vcpus[0]) == 1
        assert scheduler.runqueue(0) == ()

    def test_pin_domain_1to1(self, scheduler):
        d = domain(1, 4)
        scheduler.pin_domain(d, [0, 1, 2, 3])
        assert [scheduler.pcpu_of(v) for v in d.vcpus] == [0, 1, 2, 3]

    def test_pin_domain_wrong_count(self, scheduler):
        d = domain(1, 3)
        with pytest.raises(SchedulerError):
            scheduler.pin_domain(d, [0, 1])

    def test_unplaced_lookup_rejected(self, scheduler):
        d = domain(1, 1)
        with pytest.raises(SchedulerError):
            scheduler.pcpu_of(d.vcpus[0])


class TestSharing:
    def test_dedicated_share_is_one(self, scheduler):
        d = domain(1, 1)
        scheduler.pin(d.vcpus[0], 0)
        assert scheduler.cpu_share(d.vcpus[0]) == 1.0

    def test_consolidated_share_is_half(self, scheduler):
        """The Figure 9 setup: two vCPUs per pCPU, fair credit shares."""
        d1, d2 = domain(1, 2), domain(2, 2)
        scheduler.pin_domain(d1, [0, 1])
        scheduler.pin_domain(d2, [0, 1])
        for v in d1.vcpus + d2.vcpus:
            assert scheduler.cpu_share(v) == 0.5
        assert scheduler.max_sharers() == 2

    def test_remove_domain_restores_share(self, scheduler):
        d1, d2 = domain(1, 1), domain(2, 1)
        scheduler.pin(d1.vcpus[0], 0)
        scheduler.pin(d2.vcpus[0], 0)
        scheduler.remove_domain(d2)
        assert scheduler.cpu_share(d1.vcpus[0]) == 1.0

    def test_occupied_pcpus(self, scheduler):
        d = domain(1, 2)
        scheduler.pin_domain(d, [1, 3])
        assert scheduler.occupied_pcpus() == (1, 3)
