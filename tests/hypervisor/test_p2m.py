"""The hypervisor page table: mapping, invalidation, migration, observer."""

import pytest

from repro.errors import P2MError
from repro.hypervisor.p2m import P2MTable


@pytest.fixture
def p2m():
    return P2MTable(domain_id=3)


class TestMapping:
    def test_set_and_translate(self, p2m):
        p2m.set_entry(5, 500)
        assert p2m.translate(5) == 500
        assert p2m.is_valid(5)

    def test_absent_entry_faults(self, p2m):
        with pytest.raises(P2MError):
            p2m.translate(5)
        assert not p2m.is_valid(5)

    def test_negative_frames_rejected(self, p2m):
        with pytest.raises(P2MError):
            p2m.set_entry(-1, 0)
        with pytest.raises(P2MError):
            p2m.set_entry(0, -1)

    def test_remap_via_set_entry(self, p2m):
        p2m.set_entry(5, 500)
        p2m.set_entry(5, 600)
        assert p2m.translate(5) == 600
        assert p2m.num_entries == 1


class TestInvalidation:
    def test_invalidate_returns_frame(self, p2m):
        p2m.set_entry(5, 500)
        assert p2m.invalidate(5) == 500
        assert not p2m.is_valid(5)
        with pytest.raises(P2MError):
            p2m.translate(5)

    def test_invalidate_absent_returns_none(self, p2m):
        assert p2m.invalidate(9) is None

    def test_double_invalidate_returns_none(self, p2m):
        p2m.set_entry(5, 500)
        p2m.invalidate(5)
        assert p2m.invalidate(5) is None
        assert p2m.invalidations == 1

    def test_revalidation_after_fault(self, p2m):
        """First-touch: invalidate, then the fault handler remaps."""
        p2m.set_entry(5, 500)
        p2m.invalidate(5)
        p2m.set_entry(5, 777)
        assert p2m.translate(5) == 777

    def test_counts(self, p2m):
        p2m.set_entry(1, 10)
        p2m.set_entry(2, 20)
        p2m.invalidate(1)
        assert p2m.num_entries == 2
        assert p2m.num_valid == 1


class TestMigration:
    def test_write_protect_then_remap(self, p2m):
        p2m.set_entry(5, 500)
        p2m.write_protect(5)
        assert not p2m.lookup(5).writable
        old = p2m.remap(5, 900)
        assert old == 500
        assert p2m.translate(5) == 900
        assert p2m.lookup(5).writable
        assert p2m.migrations == 1

    def test_remap_without_protection_rejected(self, p2m):
        p2m.set_entry(5, 500)
        with pytest.raises(P2MError, match="write-protected"):
            p2m.remap(5, 900)

    def test_unprotect_aborts_migration(self, p2m):
        p2m.set_entry(5, 500)
        p2m.write_protect(5)
        p2m.unprotect(5)
        assert p2m.lookup(5).writable
        assert p2m.translate(5) == 500

    def test_protect_invalid_entry_rejected(self, p2m):
        with pytest.raises(P2MError):
            p2m.write_protect(5)


class TestRemove:
    def test_remove_returns_frame(self, p2m):
        p2m.set_entry(5, 500)
        assert p2m.remove(5) == 500
        assert p2m.lookup(5) is None

    def test_remove_invalid_returns_none(self, p2m):
        p2m.set_entry(5, 500)
        p2m.invalidate(5)
        assert p2m.remove(5) is None


class _Observer:
    def __init__(self):
        self.events = []

    def entry_set(self, gpfn, mfn):
        self.events.append(("set", gpfn, mfn))

    def entry_invalidated(self, gpfn):
        self.events.append(("inv", gpfn))


class TestObserver:
    def test_set_and_invalidate_notify(self, p2m):
        obs = _Observer()
        p2m.observer = obs
        p2m.set_entry(1, 10)
        p2m.invalidate(1)
        assert obs.events == [("set", 1, 10), ("inv", 1)]

    def test_remap_notifies_new_frame(self, p2m):
        obs = _Observer()
        p2m.observer = obs
        p2m.set_entry(1, 10)
        p2m.write_protect(1)
        p2m.remap(1, 20)
        assert obs.events[-1] == ("set", 1, 20)

    def test_remove_notifies_invalidation(self, p2m):
        obs = _Observer()
        p2m.set_entry(1, 10)
        p2m.observer = obs
        p2m.remove(1)
        assert obs.events == [("inv", 1)]

    def test_valid_entries_iteration(self, p2m):
        p2m.set_entry(1, 10)
        p2m.set_entry(2, 20)
        p2m.invalidate(1)
        assert [(g, e.mfn) for g, e in p2m.valid_entries()] == [(2, 20)]
