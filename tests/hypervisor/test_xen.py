"""The hypervisor facade: domain lifecycle, policy switching, I/O mode."""

import pytest

from repro.core.policies.base import PolicyName, PolicySpec
from repro.errors import PolicyError
from repro.hypervisor.xen import Hypervisor, XEN, XEN_PLUS


class TestDom0:
    def test_dom0_exists_on_node0(self, hypervisor):
        assert hypervisor.dom0.domain_id == 0
        assert hypervisor.dom0.home_nodes == (0,)
        assert hypervisor.dom0.p2m.num_valid == hypervisor.dom0.memory_pages

    def test_dom0_cannot_be_destroyed(self, hypervisor):
        with pytest.raises(PolicyError):
            hypervisor.destroy_domain(hypervisor.dom0)


class TestDomainLifecycle:
    def test_create_boots_round_4k(self, hypervisor):
        d = hypervisor.create_domain("t", num_vcpus=2, memory_pages=64)
        assert d.numa_policy.name == "round-4k"
        assert d.p2m.num_valid == 64
        assert d.built

    def test_explicit_home_nodes(self, hypervisor):
        d = hypervisor.create_domain(
            "t", num_vcpus=2, memory_pages=64, home_nodes=[2, 3]
        )
        assert d.home_nodes == (2, 3)
        machine = hypervisor.machine
        nodes = {
            machine.node_of_frame(e.mfn) for _, e in d.p2m.valid_entries()
        }
        assert nodes <= {2, 3}

    def test_vcpus_pinned_on_home_nodes(self, hypervisor):
        d = hypervisor.create_domain(
            "t", num_vcpus=2, memory_pages=64, home_nodes=[1]
        )
        for vcpu in d.vcpus:
            pcpu = hypervisor.scheduler.pcpu_of(vcpu)
            assert hypervisor.machine.topology.node_of_cpu(pcpu) == 1

    def test_destroy_releases_everything(self, hypervisor):
        machine = hypervisor.machine
        free_before = sum(
            machine.memory.free_frames_on(n) for n in range(machine.num_nodes)
        )
        d = hypervisor.create_domain("t", num_vcpus=2, memory_pages=64)
        hypervisor.destroy_domain(d)
        free_after = sum(
            machine.memory.free_frames_on(n) for n in range(machine.num_nodes)
        )
        assert free_after == free_before
        assert d.domain_id not in hypervisor.domains

    def test_domain_ids_increment(self, hypervisor):
        d1 = hypervisor.create_domain("a", num_vcpus=1, memory_pages=16)
        d2 = hypervisor.create_domain("b", num_vcpus=1, memory_pages=16)
        assert d2.domain_id == d1.domain_id + 1


class TestPolicySwitch:
    def test_switch_to_first_touch(self, hypervisor):
        d = hypervisor.create_domain("t", num_vcpus=2, memory_pages=64)
        hypervisor.set_policy(d, PolicyName.FIRST_TOUCH)
        assert d.numa_policy.name == "first-touch"
        # A runtime switch keeps the existing mapping.
        assert d.p2m.num_valid == 64

    def test_carrefour_toggle(self, hypervisor):
        d = hypervisor.create_domain("t", num_vcpus=2, memory_pages=64)
        hypervisor.set_policy(d, carrefour=True)
        assert d.numa_policy.name == "round-4k/carrefour"
        hypervisor.set_policy(d, carrefour=False)
        assert d.numa_policy.name == "round-4k"


class TestIoMode:
    def test_stock_xen_is_paravirt(self, hypervisor):
        d = hypervisor.create_domain("t", num_vcpus=2, memory_pages=64)
        assert hypervisor.io_mode(d) == "paravirt"

    def test_xen_plus_uses_passthrough(self, hypervisor_plus):
        d = hypervisor_plus.create_domain("t", num_vcpus=2, memory_pages=64)
        assert hypervisor_plus.io_mode(d) == "passthrough"

    def test_first_touch_disables_passthrough(self, hypervisor_plus):
        """Section 4.4.1/5.3.1: first-touch cannot keep the IOMMU."""
        d = hypervisor_plus.create_domain("t", num_vcpus=2, memory_pages=64)
        hypervisor_plus.set_policy(d, PolicyName.FIRST_TOUCH)
        assert hypervisor_plus.io_mode(d) == "paravirt"

    def test_switch_back_restores_passthrough(self, hypervisor_plus):
        d = hypervisor_plus.create_domain("t", num_vcpus=2, memory_pages=64)
        hypervisor_plus.set_policy(d, PolicyName.FIRST_TOUCH)
        hypervisor_plus.set_policy(d, PolicyName.ROUND_4K)
        assert hypervisor_plus.io_mode(d) == "passthrough"


class TestGuestAccess:
    def test_access_resolves_through_policy(self, hypervisor):
        d = hypervisor.create_domain(
            "t", num_vcpus=2, memory_pages=64, home_nodes=[0, 1]
        )
        hypervisor.set_policy(d, PolicyName.FIRST_TOUCH)
        gpfn = 7
        mfn = d.p2m.invalidate(gpfn)
        hypervisor.allocator.free_page(mfn)
        vcpu_node = hypervisor.vcpu_node(d, 1)
        new_mfn = hypervisor.guest_access(d, 1, gpfn)
        assert hypervisor.machine.node_of_frame(new_mfn) == vcpu_node
