"""The Xen heap allocator: round-1G / round-4K population, home nodes."""

import pytest

from repro.config import SimConfig
from repro.errors import OutOfMemoryError
from repro.hardware.presets import small_machine
from repro.hypervisor.allocator import XenHeapAllocator, choose_home_nodes
from repro.hypervisor.domain import Domain


@pytest.fixture
def machine():
    # 4 nodes x 8192 frames; page_scale 256 -> 1 GiB = 1024 pages.
    return small_machine(num_nodes=4, cpus_per_node=2, frames_per_node=8192)


@pytest.fixture
def allocator(machine):
    return XenHeapAllocator(machine, machine.config)


def make_domain(pages, nodes=(0, 1, 2, 3)):
    return Domain(
        domain_id=1, name="d", num_vcpus=2, memory_pages=pages, home_nodes=nodes
    )


class TestRound1G:
    def test_head_and_tail_fragmented(self, allocator, machine):
        """The first and last guest GiB are 4 KiB-allocated round-robin."""
        gib = allocator.gib_pages
        domain = make_domain(gib * 4)
        allocator.populate_round_1g(domain)
        # Head pages alternate over home nodes page by page.
        head_nodes = [
            machine.node_of_frame(domain.p2m.translate(g)) for g in range(8)
        ]
        assert head_nodes == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_middle_is_chunked(self, allocator, machine):
        gib = allocator.gib_pages
        domain = make_domain(gib * 4)
        allocator.populate_round_1g(domain)
        # The middle (two whole GiBs) is contiguous per node.
        middle = range(gib, 3 * gib)
        nodes = [machine.node_of_frame(domain.p2m.translate(g)) for g in middle]
        first_chunk = set(nodes[: gib])
        second_chunk = set(nodes[gib:])
        assert len(first_chunk) == 1
        assert len(second_chunk) == 1
        assert first_chunk != second_chunk

    def test_all_pages_mapped(self, allocator):
        domain = make_domain(allocator.gib_pages * 3 + 17)
        allocator.populate_round_1g(domain)
        assert domain.p2m.num_valid == domain.memory_pages
        assert domain.built

    def test_fallback_on_fragmentation(self, allocator, machine):
        """With node 0 fragmented, 1 GiB chunks fall back to 2 MiB runs."""
        # Fragment node 0: allocate every other 2-frame run.
        holes = []
        for _ in range(2048):
            keep = machine.memory.alloc_frames(0, 2)
            holes.append(machine.memory.alloc_frames(0, 2))
        for mfn in holes:
            machine.memory.free_frames(mfn, 2)
        domain = make_domain(allocator.gib_pages * 3)
        allocator.populate_round_1g(domain)  # must not raise
        assert domain.p2m.num_valid == domain.memory_pages


class TestRound4K:
    def test_round_robin_over_home_nodes(self, allocator, machine):
        domain = make_domain(64, nodes=(1, 3))
        allocator.populate_round_4k(domain)
        nodes = [
            machine.node_of_frame(domain.p2m.translate(g)) for g in range(8)
        ]
        assert nodes == [1, 3, 1, 3, 1, 3, 1, 3]

    def test_all_mapped(self, allocator):
        domain = make_domain(1000)
        allocator.populate_round_4k(domain)
        assert domain.p2m.num_valid == 1000


class TestPageLevel:
    def test_alloc_on_preferred_node(self, allocator, machine):
        mfn = allocator.alloc_page_on(2)
        assert machine.node_of_frame(mfn) == 2

    def test_fallback_when_node_full(self, allocator, machine):
        while machine.memory.alloc_frames(2, 1) is not None:
            pass
        mfn = allocator.alloc_page_on(2)
        assert machine.node_of_frame(mfn) != 2

    def test_oom_when_machine_full(self, allocator, machine):
        for node in range(4):
            while machine.memory.alloc_frames(node, 1) is not None:
                pass
        with pytest.raises(OutOfMemoryError):
            allocator.alloc_page_on(0)

    def test_free_page_returns_frame(self, allocator, machine):
        before = machine.memory.free_frames_on(1)
        mfn = allocator.alloc_page_on(1)
        allocator.free_page(mfn)
        assert machine.memory.free_frames_on(1) == before


class TestDepopulate:
    def test_depopulate_frees_everything(self, allocator, machine):
        free_before = sum(
            machine.memory.free_frames_on(n) for n in range(4)
        )
        domain = make_domain(500)
        allocator.populate_round_4k(domain)
        freed = allocator.depopulate(domain)
        assert freed == 500
        free_after = sum(machine.memory.free_frames_on(n) for n in range(4))
        assert free_after == free_before

    def test_invalidated_pages_not_double_freed(self, allocator, machine):
        domain = make_domain(10)
        allocator.populate_round_4k(domain)
        mfn = domain.p2m.invalidate(3)
        allocator.free_page(mfn)
        assert allocator.depopulate(domain) == 9


class TestChooseHomeNodes:
    def test_explicit_nodes_validated(self, machine):
        assert choose_home_nodes(machine, 2, 100, preferred=[1, 2]) == (1, 2)
        with pytest.raises(OutOfMemoryError):
            choose_home_nodes(machine, 2, 100, preferred=[9])

    def test_packs_minimally(self, machine):
        nodes = choose_home_nodes(machine, 2, 100)
        assert len(nodes) == 1

    def test_grows_with_demand(self, machine):
        nodes = choose_home_nodes(machine, 8, 4 * 8192)
        assert len(nodes) == 4

    def test_reserved_cpus_respected(self, machine):
        with pytest.raises(OutOfMemoryError):
            choose_home_nodes(machine, 8, 100, reserved_cpus=range(8))

    def test_impossible_memory_rejected(self, machine):
        with pytest.raises(OutOfMemoryError):
            choose_home_nodes(machine, 1, 10_000_000)
