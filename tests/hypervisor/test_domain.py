"""Domain and vCPU objects."""

import pytest

from repro.errors import DomainError
from repro.hypervisor.domain import Domain, VCpu


class TestDomainValidation:
    def test_needs_vcpus(self):
        with pytest.raises(DomainError):
            Domain(1, "d", num_vcpus=0, memory_pages=10, home_nodes=(0,))

    def test_needs_memory(self):
        with pytest.raises(DomainError):
            Domain(1, "d", num_vcpus=1, memory_pages=0, home_nodes=(0,))

    def test_needs_home_nodes(self):
        with pytest.raises(DomainError):
            Domain(1, "d", num_vcpus=1, memory_pages=10, home_nodes=())


class TestDomain:
    def test_dom0_flag(self):
        assert Domain(0, "dom0", 1, 10, (0,)).is_dom0
        assert not Domain(1, "u", 1, 10, (0,)).is_dom0

    def test_vcpus_created(self):
        d = Domain(1, "d", num_vcpus=4, memory_pages=10, home_nodes=(0,))
        assert d.num_vcpus == 4
        assert [v.vcpu_id for v in d.vcpus] == [0, 1, 2, 3]
        assert all(v.domain_id == 1 for v in d.vcpus)

    def test_pin_vcpu(self):
        d = Domain(1, "d", num_vcpus=2, memory_pages=10, home_nodes=(0,))
        d.pin_vcpu(1, 7)
        assert d.vcpus[1].pinned_pcpu == 7
        assert d.vcpus[0].pinned_pcpu is None

    def test_gpfn_range(self):
        d = Domain(1, "d", num_vcpus=1, memory_pages=5, home_nodes=(0,))
        assert list(d.gpfn_range()) == [0, 1, 2, 3, 4]

    def test_vcpu_key(self):
        v = VCpu(domain_id=3, vcpu_id=2)
        assert v.key == (3, 2)

    def test_fresh_p2m(self):
        d = Domain(1, "d", num_vcpus=1, memory_pages=5, home_nodes=(0,))
        assert d.p2m.num_entries == 0
        assert d.numa_policy is None
        assert not d.built
