"""Hypercall table: dispatch, stats and the cost model."""

import pytest

from repro.errors import HypercallError
from repro.hypervisor.hypercalls import (
    Hypercall,
    HypercallCostModel,
    HypercallTable,
)


@pytest.fixture
def table():
    return HypercallTable()


class TestDispatch:
    def test_empty_hypercall_builtin(self, table):
        assert table.dispatch(Hypercall.EMPTY, 1, 0) is None

    def test_register_and_dispatch(self, table):
        table.register(Hypercall.NUMA_SET_POLICY, lambda d, v, a: (d, v, a))
        assert table.dispatch(Hypercall.NUMA_SET_POLICY, 2, 3, "x") == (2, 3, "x")

    def test_unregistered_rejected(self, table):
        with pytest.raises(HypercallError):
            table.dispatch(Hypercall.NUMA_PAGE_EVENTS, 1, 0)

    def test_duplicate_registration_rejected(self, table):
        table.register(Hypercall.NUMA_SET_POLICY, lambda d, v, a: None)
        with pytest.raises(HypercallError):
            table.register(Hypercall.NUMA_SET_POLICY, lambda d, v, a: None)

    def test_stats_accumulate(self, table):
        table.dispatch(Hypercall.EMPTY, 1, 0)
        table.dispatch(Hypercall.EMPTY, 1, 0)
        count, seconds = table.stats[Hypercall.EMPTY]
        assert count == 2
        assert seconds == pytest.approx(2 * table.costs.base_seconds)

    def test_reset_stats(self, table):
        table.dispatch(Hypercall.EMPTY, 1, 0)
        table.reset_stats()
        assert table.stats[Hypercall.EMPTY] == (0, 0.0)


class TestFailureAccounting:
    def test_raising_handler_still_charged_base_cost(self, table):
        """A guest pays for the trap even when the handler fails — the
        entry/exit happened regardless."""

        def boom(domain_id, vcpu_id, args):
            raise RuntimeError("handler exploded")

        table.register(Hypercall.NUMA_SET_POLICY, boom)
        with pytest.raises(RuntimeError, match="handler exploded"):
            table.dispatch(Hypercall.NUMA_SET_POLICY, 1, 0)
        count, seconds = table.stats[Hypercall.NUMA_SET_POLICY]
        assert count == 1
        assert seconds == pytest.approx(table.costs.base_seconds)

    def test_failed_payload_call_charged_base_not_payload(self, table):
        """The payload cost model only applies to completed calls."""

        def boom(domain_id, vcpu_id, args):
            raise ValueError("bad batch")

        table.register(Hypercall.NUMA_PAGE_EVENTS, boom)
        with pytest.raises(ValueError):
            table.dispatch(Hypercall.NUMA_PAGE_EVENTS, 1, 0, list(range(64)))
        _, seconds = table.stats[Hypercall.NUMA_PAGE_EVENTS]
        assert seconds == pytest.approx(table.costs.base_seconds)


class TestEmptyOverride:
    def test_default_empty_replaceable_once(self, table):
        table.register(Hypercall.EMPTY, lambda d, v, a: "probe")
        assert table.dispatch(Hypercall.EMPTY, 1, 0) == "probe"

    def test_second_empty_registration_rejected(self, table):
        table.register(Hypercall.EMPTY, lambda d, v, a: "probe")
        with pytest.raises(HypercallError):
            table.register(Hypercall.EMPTY, lambda d, v, a: "again")


class TestCostModel:
    def test_flush_cost_grows_with_events(self):
        costs = HypercallCostModel()
        assert costs.flush_cost(64) > costs.flush_cost(1) > costs.base_seconds

    def test_invalidation_share_at_batch_64(self):
        """Section 4.2.4: 87.5% of the flush is spent invalidating."""
        costs = HypercallCostModel()
        assert costs.invalidation_share(64) == pytest.approx(0.875, abs=0.01)

    def test_page_events_cost_counts_payload(self, table):
        table.register(Hypercall.NUMA_PAGE_EVENTS, lambda d, v, a: None)
        table.dispatch(Hypercall.NUMA_PAGE_EVENTS, 1, 0, list(range(64)))
        _, seconds = table.stats[Hypercall.NUMA_PAGE_EVENTS]
        assert seconds == pytest.approx(table.costs.flush_cost(64))

    def test_cost_of_call_predicts_dispatch(self, table):
        predicted = table.cost_of_call(Hypercall.NUMA_PAGE_EVENTS, [1, 2, 3])
        assert predicted == pytest.approx(table.costs.flush_cost(3))
