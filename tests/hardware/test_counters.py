"""Performance counters, derived metrics and IBS-style sampling."""

import numpy as np
import pytest

from repro.hardware.counters import HotPageSample, PerfCounters, sample_hot_pages


@pytest.fixture
def counters():
    return PerfCounters(num_nodes=4)


class TestRecording:
    def test_record_accumulates(self, counters):
        counters.record(0, 1, 10)
        counters.record(0, 1, 5)
        assert counters.matrix[0, 1] == 15

    def test_record_matrix(self, counters):
        counters.record_matrix(np.ones((4, 4)))
        counters.record_matrix(np.ones((4, 4)))
        assert counters.matrix.sum() == 32

    def test_end_epoch_archives_and_resets(self, counters):
        counters.record(1, 2, 7)
        snap = counters.end_epoch()
        assert snap[1, 2] == 7
        assert counters.matrix.sum() == 0
        assert len(counters.epoch_history) == 1


class TestMetrics:
    def test_balanced_imbalance_zero(self, counters):
        counters.record_matrix(np.full((4, 4), 10.0))
        assert counters.imbalance() == pytest.approx(0.0)

    def test_single_node_imbalance(self, counters):
        # All accesses to node 0: RSD = sqrt(n-1) for n nodes.
        for s in range(4):
            counters.record(s, 0, 100)
        assert counters.imbalance() == pytest.approx(np.sqrt(3), rel=1e-6)

    def test_empty_imbalance_zero(self, counters):
        assert counters.imbalance() == 0.0

    def test_local_fraction(self, counters):
        counters.record(0, 0, 75)
        counters.record(0, 1, 25)
        assert counters.local_access_fraction() == pytest.approx(0.75)

    def test_local_fraction_empty_is_one(self, counters):
        assert counters.local_access_fraction() == 1.0

    def test_node_access_counts_are_column_sums(self, counters):
        counters.record(0, 2, 5)
        counters.record(1, 2, 7)
        assert counters.node_access_counts()[2] == 12


class TestClaim:
    """Carrefour monopolises the counter registers (Table 1 footnote)."""

    def test_claim_release(self, counters):
        counters.claim("carrefour")
        assert counters.owner == "carrefour"
        counters.release("carrefour")
        assert counters.owner is None

    def test_conflicting_claim_rejected(self, counters):
        counters.claim("carrefour")
        with pytest.raises(RuntimeError, match="claimed"):
            counters.claim("table1-profiler")

    def test_same_owner_reclaim_ok(self, counters):
        counters.claim("carrefour")
        counters.claim("carrefour")

    def test_release_by_non_owner_ignored(self, counters):
        counters.claim("carrefour")
        counters.release("someone-else")
        assert counters.owner == "carrefour"


class TestSampling:
    def _profiles(self, n=10, total=1000):
        return [
            HotPageSample(page=i, domain_id=1, node_accesses=(total, 0, 0, 0))
            for i in range(n)
        ]

    def test_full_rate_keeps_everything(self):
        rng = np.random.default_rng(0)
        out = sample_hot_pages(self._profiles(), 1.0, rng)
        assert len(out) == 10
        assert all(s.total == 1000 for s in out)

    def test_thinning_reduces_counts(self):
        rng = np.random.default_rng(0)
        out = sample_hot_pages(self._profiles(total=10000), 0.01, rng)
        assert all(0 < s.total < 10000 for s in out)

    def test_cold_pages_disappear(self):
        rng = np.random.default_rng(0)
        profiles = [
            HotPageSample(page=0, domain_id=1, node_accesses=(1, 0, 0, 0))
            for _ in range(50)
        ]
        out = sample_hot_pages(profiles, 0.01, rng)
        assert len(out) < 50

    def test_sorted_hottest_first(self):
        rng = np.random.default_rng(0)
        profiles = [
            HotPageSample(page=i, domain_id=1, node_accesses=(100 * (i + 1), 0, 0, 0))
            for i in range(5)
        ]
        out = sample_hot_pages(profiles, 1.0, rng)
        totals = [s.total for s in out]
        assert totals == sorted(totals, reverse=True)

    def test_max_samples_cap(self):
        rng = np.random.default_rng(0)
        out = sample_hot_pages(self._profiles(n=20), 1.0, rng, max_samples=5)
        assert len(out) == 5

    def test_bad_rate_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_hot_pages([], 0.0, rng)
        with pytest.raises(ValueError):
            sample_hot_pages([], 1.5, rng)


class TestHotPageSample:
    def test_dominant_node(self):
        sample = HotPageSample(page=1, domain_id=0, node_accesses=(5, 80, 15, 0))
        assert sample.dominant_node == 1
        assert sample.total == 100


class TestSnapshotAliasing:
    """Regression: the end_epoch return aliases the archived history
    entry (RPR009 archive-alias); it must be frozen so a caller cannot
    rewrite epoch_history through it."""

    def test_snapshot_is_read_only(self, counters):
        counters.record(0, 1, 3)
        snap = counters.end_epoch()
        assert not snap.flags.writeable
        with pytest.raises(ValueError):
            snap[0, 1] = 99.0

    def test_history_entry_is_the_frozen_snapshot(self, counters):
        counters.record(2, 3, 5)
        snap = counters.end_epoch()
        assert counters.epoch_history[0] is snap
        assert counters.epoch_history[0][2, 3] == 5

    def test_next_epoch_matrix_stays_writable(self, counters):
        counters.end_epoch()
        counters.record(0, 0, 1)  # must not raise
        assert counters.matrix[0, 0] == 1
