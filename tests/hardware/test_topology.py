"""Topology: links, routing, distances and the AMD48 preset."""

import pytest

from repro.errors import TopologyError
from repro.hardware.presets import amd48_topology
from repro.hardware.topology import Link, NumaTopology


def two_node_topology():
    return NumaTopology(
        num_nodes=2,
        cpus_per_node=3,
        links=[Link(0, 1, 4.0)],
        memory_controller_gib_s=13.0,
        node_memory_gib=16.0,
    )


class TestLink:
    def test_endpoints_normalised(self):
        link = Link(3, 1, 4.0)
        assert (link.a, link.b) == (1, 3)
        assert link.key == (1, 3)

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            Link(2, 2, 4.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(TopologyError):
            Link(0, 1, 0.0)

    def test_other_endpoint(self):
        link = Link(0, 1, 4.0)
        assert link.other(0) == 1
        assert link.other(1) == 0
        with pytest.raises(TopologyError):
            link.other(2)


class TestNumaTopology:
    def test_cpu_node_mapping(self):
        topo = two_node_topology()
        assert topo.num_cpus == 6
        assert topo.node_of_cpu(0) == 0
        assert topo.node_of_cpu(2) == 0
        assert topo.node_of_cpu(3) == 1
        assert list(topo.cpus_of_node(1)) == [3, 4, 5]

    def test_cpu_out_of_range(self):
        topo = two_node_topology()
        with pytest.raises(TopologyError):
            topo.node_of_cpu(6)
        with pytest.raises(TopologyError):
            topo.node_of_cpu(-1)

    def test_local_route_is_empty(self):
        topo = two_node_topology()
        assert topo.route(0, 0) == ()
        assert topo.hops(1, 1) == 0

    def test_remote_route(self):
        topo = two_node_topology()
        route = topo.route(0, 1)
        assert len(route) == 1
        assert route[0].key == (0, 1)

    def test_disconnected_rejected(self):
        with pytest.raises(TopologyError, match="disconnected"):
            NumaTopology(
                num_nodes=3,
                cpus_per_node=1,
                links=[Link(0, 1, 4.0)],
                memory_controller_gib_s=13.0,
                node_memory_gib=16.0,
            )

    def test_duplicate_link_rejected(self):
        with pytest.raises(TopologyError, match="duplicate"):
            NumaTopology(
                num_nodes=2,
                cpus_per_node=1,
                links=[Link(0, 1, 4.0), Link(1, 0, 6.0)],
                memory_controller_gib_s=13.0,
                node_memory_gib=16.0,
            )

    def test_link_to_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            NumaTopology(
                num_nodes=2,
                cpus_per_node=1,
                links=[Link(0, 5, 4.0)],
                memory_controller_gib_s=13.0,
                node_memory_gib=16.0,
            )

    def test_distance_matrix_symmetric(self):
        topo = amd48_topology()
        matrix = topo.distance_matrix()
        for s in range(topo.num_nodes):
            assert matrix[s][s] == 0
            for d in range(topo.num_nodes):
                assert matrix[s][d] == matrix[d][s]

    def test_routes_are_shortest(self):
        topo = amd48_topology()
        for s in range(topo.num_nodes):
            for d in range(topo.num_nodes):
                assert len(topo.route(s, d)) == topo.hops(s, d)

    def test_route_is_connected_path(self):
        topo = amd48_topology()
        for s in range(topo.num_nodes):
            for d in range(topo.num_nodes):
                cur = s
                for link in topo.route(s, d):
                    cur = link.other(cur)
                assert cur == d


class TestAmd48:
    def test_shape(self):
        topo = amd48_topology()
        assert topo.num_nodes == 8
        assert topo.cpus_per_node == 6
        assert topo.num_cpus == 48

    def test_diameter_two_hops(self):
        # "The nodes are interconnected by HyperTransport links, with a
        # maximum distance of two hops" (section 5.1).
        assert amd48_topology().diameter() == 2

    def test_pci_nodes(self):
        # Nodes 0 and 6 carry the PCI buses (section 5.1).
        assert amd48_topology().pci_nodes == (0, 6)

    def test_asymmetric_bandwidth(self):
        topo = amd48_topology()
        bandwidths = {l.bandwidth_gib_s for l in topo.links}
        assert len(bandwidths) > 1
        assert max(bandwidths) == 6.0

    def test_siblings_are_adjacent(self):
        topo = amd48_topology()
        for socket in range(4):
            assert topo.hops(2 * socket, 2 * socket + 1) == 1
