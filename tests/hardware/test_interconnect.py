"""Interconnect byte accounting and utilisation."""

import pytest

from repro.hardware.interconnect import Interconnect
from repro.hardware.presets import amd48_topology


@pytest.fixture
def interconnect():
    return Interconnect(amd48_topology())


class TestRecording:
    def test_local_access_touches_no_link(self, interconnect):
        interconnect.record_access(3, 3, 4096)
        assert interconnect.max_utilization(1.0) == 0.0

    def test_remote_access_loads_route(self, interconnect):
        topo = interconnect.topology
        interconnect.record_access(0, 7, 1 << 20)
        route = topo.route(0, 7)
        for link in route:
            assert interconnect.bytes_on(link) == 1 << 20

    def test_two_hop_loads_both_links(self, interconnect):
        topo = interconnect.topology
        src, dst = next(
            (s, d)
            for s in range(8)
            for d in range(8)
            if topo.hops(s, d) == 2
        )
        interconnect.record_access(src, dst, 1000)
        assert sum(
            1 for l in topo.links if interconnect.bytes_on(l) == 1000
        ) == 2

    def test_zero_bytes_noop(self, interconnect):
        interconnect.record_access(0, 1, 0)
        assert interconnect.max_utilization(1.0) == 0.0


class TestUtilisation:
    def test_utilization_formula(self, interconnect):
        topo = interconnect.topology
        link = topo.route(0, 1)[0]
        capacity = int(link.bandwidth_gib_s * (1 << 30))
        interconnect.record_access(0, 1, capacity)
        assert interconnect.utilization(link, 1.0) == pytest.approx(1.0)
        assert interconnect.utilization(link, 2.0) == pytest.approx(0.5)

    def test_max_utilization_picks_hottest(self, interconnect):
        interconnect.record_access(0, 1, 1 << 30)
        interconnect.record_access(2, 3, 1 << 20)
        link01 = interconnect.topology.route(0, 1)[0]
        assert interconnect.max_utilization(1.0) == pytest.approx(
            interconnect.utilization(link01, 1.0)
        )

    def test_route_utilization_local_zero(self, interconnect):
        assert interconnect.route_utilization(4, 4, 1.0) == 0.0

    def test_zero_seconds(self, interconnect):
        interconnect.record_access(0, 1, 100)
        assert interconnect.max_utilization(0.0) == 0.0


class TestReset:
    def test_reset_clears_counts(self, interconnect):
        interconnect.record_access(0, 1, 1 << 30)
        interconnect.reset()
        assert interconnect.max_utilization(1.0) == 0.0
