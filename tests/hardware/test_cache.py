"""Cache hierarchy hit model."""

import pytest

from repro.hardware.cache import CacheHierarchy, CacheLevel, HitProfile
from repro.hardware.presets import amd48_caches


@pytest.fixture
def caches():
    return amd48_caches()


class TestHitProfile:
    def test_tiny_working_set_is_l1_resident(self, caches):
        profile = caches.hit_profile(16 * 1024)
        assert profile.level_fractions[0] == pytest.approx(1.0)
        assert profile.memory_fraction == pytest.approx(0.0)

    def test_fractions_sum_to_one(self, caches):
        for ws in (1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 30):
            profile = caches.hit_profile(ws)
            total = sum(profile.level_fractions) + profile.memory_fraction
            assert total == pytest.approx(1.0)

    def test_memory_fraction_monotone_in_working_set(self, caches):
        fractions = [
            caches.hit_profile(ws).memory_fraction
            for ws in (1 << 16, 1 << 20, 1 << 24, 1 << 28)
        ]
        assert fractions == sorted(fractions)

    def test_l3_contention_reduces_hits(self, caches):
        ws = 4 << 20  # comparable to L3
        contended = caches.hit_profile(ws, l3_contended=True)
        alone = caches.hit_profile(ws, l3_contended=False)
        assert contended.memory_fraction >= alone.memory_fraction


class TestAverageCycles:
    def test_cache_resident_cost_is_l1(self, caches):
        cycles = caches.average_access_cycles(1024, memory_cycles=156.0)
        assert cycles == pytest.approx(5.0)

    def test_large_ws_approaches_memory_latency(self, caches):
        cycles = caches.average_access_cycles(1 << 34, memory_cycles=156.0)
        assert cycles > 100.0

    def test_monotone_in_memory_latency(self, caches):
        ws = 1 << 26
        fast = caches.average_access_cycles(ws, memory_cycles=156.0)
        slow = caches.average_access_cycles(ws, memory_cycles=697.0)
        assert slow > fast


class TestConstruction:
    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ValueError):
            CacheHierarchy(levels=())

    def test_amd48_latencies(self, caches):
        by_name = {l.name: l.latency_cycles for l in caches.levels}
        assert by_name == {"L1": 5.0, "L2": 16.0, "L3": 48.0}
