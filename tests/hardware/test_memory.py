"""Machine memory: extent allocation, coalescing, controllers."""

import pytest

from repro.errors import OutOfMemoryError, TopologyError
from repro.hardware.memory import MachineMemory, MemoryController


@pytest.fixture
def memory():
    return MachineMemory(num_nodes=2, frames_per_node=128, controller_gib_s=13.0)


class TestGeometry:
    def test_node_of_frame(self, memory):
        assert memory.node_of_frame(0) == 0
        assert memory.node_of_frame(127) == 0
        assert memory.node_of_frame(128) == 1
        assert memory.node_of_frame(255) == 1

    def test_frame_out_of_range(self, memory):
        with pytest.raises(TopologyError):
            memory.node_of_frame(256)

    def test_total_frames(self, memory):
        assert memory.total_frames == 256


class TestAllocation:
    def test_single_frame_on_node(self, memory):
        mfn = memory.alloc_frames(1, 1)
        assert memory.node_of_frame(mfn) == 1

    def test_contiguous_run(self, memory):
        mfn = memory.alloc_frames(0, 16)
        assert mfn is not None
        assert memory.node_of_frame(mfn + 15) == 0
        assert memory.free_frames_on(0) == 112

    def test_exhaustion_returns_none(self, memory):
        assert memory.alloc_frames(0, 128) is not None
        assert memory.alloc_frames(0, 1) is None

    def test_too_large_returns_none(self, memory):
        assert memory.alloc_frames(0, 129) is None

    def test_aligned_allocation(self, memory):
        memory.alloc_frames(0, 3)  # misalign the cursor
        mfn = memory.alloc_frames(0, 8, align=8)
        assert mfn % 8 == 0

    def test_zero_count_rejected(self, memory):
        with pytest.raises(OutOfMemoryError):
            memory.alloc_frames(0, 0)

    def test_unknown_node_rejected(self, memory):
        with pytest.raises(TopologyError):
            memory.alloc_frames(7, 1)


class TestFree:
    def test_free_and_realloc(self, memory):
        mfn = memory.alloc_frames(0, 8)
        memory.free_frames(mfn, 8)
        assert memory.free_frames_on(0) == 128
        again = memory.alloc_frames(0, 128)
        assert again is not None

    def test_coalescing_restores_largest_extent(self, memory):
        a = memory.alloc_frames(0, 8)
        b = memory.alloc_frames(0, 8)
        c = memory.alloc_frames(0, 8)
        memory.free_frames(a, 8)
        memory.free_frames(c, 8)
        memory.free_frames(b, 8)
        assert memory.stats(0).largest_extent == 128

    def test_double_free_detected(self, memory):
        mfn = memory.alloc_frames(0, 4)
        memory.free_frames(mfn, 4)
        with pytest.raises(OutOfMemoryError, match="double free"):
            memory.free_frames(mfn, 4)

    def test_partial_overlap_free_detected(self, memory):
        mfn = memory.alloc_frames(0, 8)
        memory.free_frames(mfn, 4)
        with pytest.raises(OutOfMemoryError):
            memory.free_frames(mfn + 2, 4)

    def test_cross_node_free_rejected(self, memory):
        # Exhaust node 0, then fabricate a run crossing into node 1.
        memory.alloc_frames(0, 128)
        memory.alloc_frames(1, 128)
        with pytest.raises(OutOfMemoryError, match="boundary"):
            memory.free_frames(120, 16)


class TestStats:
    def test_stats_track_usage(self, memory):
        memory.alloc_frames(0, 32)
        stats = memory.stats(0)
        assert stats.used_frames == 32
        assert stats.free_frames == 96
        assert stats.total_frames == 128

    def test_fragmentation_shrinks_largest_extent(self, memory):
        runs = [memory.alloc_frames(0, 16) for _ in range(8)]
        for mfn in runs[::2]:
            memory.free_frames(mfn, 16)
        stats = memory.stats(0)
        assert stats.free_frames == 64
        assert stats.largest_extent == 16


class TestController:
    def test_utilization(self):
        controller = MemoryController(node=0, bandwidth_gib_s=1.0)
        controller.serve(1 << 30)
        assert controller.utilization(1.0) == pytest.approx(1.0)
        assert controller.utilization(2.0) == pytest.approx(0.5)

    def test_reset(self):
        controller = MemoryController(node=0, bandwidth_gib_s=1.0)
        controller.serve(12345)
        controller.reset()
        assert controller.utilization(1.0) == 0.0

    def test_zero_seconds(self):
        controller = MemoryController(node=0, bandwidth_gib_s=1.0)
        controller.serve(10)
        assert controller.utilization(0.0) == 0.0
