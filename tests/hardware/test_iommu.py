"""IOMMU translation and the asynchronous error log."""

import pytest

from repro.hardware.iommu import Iommu
from repro.hypervisor.p2m import P2MTable


@pytest.fixture
def p2m():
    table = P2MTable(domain_id=1)
    table.set_entry(0, 100)
    table.set_entry(1, 101)
    return table


class TestTranslate:
    def test_valid_entry_translates(self, p2m):
        iommu = Iommu()
        result = iommu.translate(p2m, 0)
        assert result.ok and result.mfn == 100

    def test_absent_entry_faults(self, p2m):
        iommu = Iommu()
        result = iommu.translate(p2m, 42)
        assert not result.ok
        assert result.async_error.gpfn == 42
        assert result.async_error.domain_id == 1

    def test_invalidated_entry_faults(self, p2m):
        """The first-touch scenario: invalidated pages abort DMA."""
        iommu = Iommu()
        p2m.invalidate(0)
        result = iommu.translate(p2m, 0)
        assert not result.ok

    def test_disabled_iommu_raises(self, p2m):
        iommu = Iommu(enabled=False)
        with pytest.raises(RuntimeError):
            iommu.translate(p2m, 0)


class TestAsyncErrorLog:
    def test_errors_accumulate_until_drained(self, p2m):
        iommu = Iommu()
        iommu.translate(p2m, 40)
        iommu.translate(p2m, 41)
        assert iommu.pending_errors == 2
        events = iommu.drain_error_log()
        assert [e.gpfn for e in events] == [40, 41]
        assert iommu.pending_errors == 0

    def test_error_is_not_raised_synchronously(self, p2m):
        """The hardware design choice of section 4.4.1: the hypervisor
        learns about the fault only after the fact."""
        iommu = Iommu()
        result = iommu.translate(p2m, 99)  # must not raise
        assert result.async_error is not None

    def test_stats(self, p2m):
        iommu = Iommu()
        iommu.translate(p2m, 0)
        iommu.translate(p2m, 77)
        assert iommu.translations == 2
        assert iommu.faults == 1
