"""TLB model (the large-page extension of section 7)."""

import pytest

from repro.errors import ReproError
from repro.hardware.tlb import (
    GRANULARITY_1G,
    GRANULARITY_2M,
    GRANULARITY_4K,
    TlbModel,
    policy_granularity,
)


@pytest.fixture
def tlb():
    return TlbModel()


class TestReach:
    def test_level_selection(self, tlb):
        assert tlb.level_for(GRANULARITY_4K).page_bytes == GRANULARITY_4K
        assert tlb.level_for(GRANULARITY_2M).page_bytes == GRANULARITY_2M
        assert tlb.level_for(GRANULARITY_1G).page_bytes == GRANULARITY_1G

    def test_intermediate_granularity_rounds_down(self, tlb):
        assert tlb.level_for(64 * 1024).page_bytes == GRANULARITY_4K

    def test_too_small_granularity_rejected(self, tlb):
        with pytest.raises(ReproError):
            tlb.level_for(512)


class TestMissRatio:
    def test_fitting_working_set_never_misses(self, tlb):
        reach = tlb.level_for(GRANULARITY_4K).reach_bytes
        assert tlb.miss_ratio(reach, GRANULARITY_4K) == 0.0

    def test_large_ws_misses_at_4k(self, tlb):
        assert tlb.miss_ratio(1 << 33, GRANULARITY_4K) > 0.5

    def test_1g_mappings_cover_everything(self, tlb):
        """Round-1G's superpages: 16 x 1 GiB reach — no misses at 8 GiB."""
        assert tlb.miss_ratio(8 << 30, GRANULARITY_1G) == 0.0

    def test_monotone_in_working_set(self, tlb):
        ratios = [
            tlb.miss_ratio(ws, GRANULARITY_4K)
            for ws in (1 << 22, 1 << 26, 1 << 30, 1 << 34)
        ]
        assert ratios == sorted(ratios)

    def test_monotone_in_granularity(self, tlb):
        ws = 4 << 30
        assert (
            tlb.miss_ratio(ws, GRANULARITY_1G)
            <= tlb.miss_ratio(ws, GRANULARITY_2M)
            <= tlb.miss_ratio(ws, GRANULARITY_4K)
        )


class TestMissCost:
    def test_remote_walks_cost_more(self, tlb):
        assert tlb.miss_cycles(1.0) > tlb.miss_cycles(0.0)

    def test_overhead_combines_ratio_and_cost(self, tlb):
        overhead = tlb.overhead_cycles_per_access(1 << 33, GRANULARITY_4K, 0.5)
        expected = tlb.miss_ratio(1 << 33, GRANULARITY_4K) * tlb.miss_cycles(0.5)
        assert overhead == pytest.approx(expected)

    def test_zero_working_set(self, tlb):
        assert tlb.overhead_cycles_per_access(0, GRANULARITY_4K) == 0.0


class TestPolicyGranularity:
    def test_round_1g_gets_superpages(self):
        assert policy_granularity("round-1g") == GRANULARITY_1G

    def test_fine_policies_get_4k(self):
        for name in ("round-4k", "first-touch", "first-touch/carrefour"):
            assert policy_granularity(name) == GRANULARITY_4K

    def test_unknown_policy_defaults_to_4k(self):
        assert policy_granularity("mystery") == GRANULARITY_4K
