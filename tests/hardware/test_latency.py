"""Latency model: Table 3 calibration and congestion behaviour."""

import pytest

from repro.hardware.latency import LatencyModel


@pytest.fixture
def model():
    return LatencyModel()


class TestTable3Calibration:
    """The model must reproduce the paper's Table 3 exactly."""

    @pytest.mark.parametrize(
        "hops,expected", [(0, 156.0), (1, 276.0), (2, 383.0)]
    )
    def test_uncontended(self, model, hops, expected):
        assert model.memory_latency_cycles(hops, 0.0, 0.0) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "hops,expected", [(0, 697.0), (1, 740.0), (2, 863.0)]
    )
    def test_contended(self, model, hops, expected):
        cap = model.rho_cap
        assert model.memory_latency_cycles(hops, cap, cap) == pytest.approx(expected)


class TestQueueing:
    def test_zero_rho(self, model):
        assert model.queueing(0.0) == 0.0

    def test_monotone(self, model):
        values = [model.queueing(rho) for rho in (0.1, 0.3, 0.5, 0.8, 0.95, 1.2, 2.0)]
        assert values == sorted(values)
        assert values[0] > 0

    def test_linear_tail_beyond_knee(self, model):
        """Past the knee, latency keeps rising (throughput self-limits)."""
        cap = model.rho_cap
        at_cap = model.queueing(cap)
        beyond = model.queueing(cap + 0.1)
        far = model.queueing(cap + 0.2)
        assert beyond > at_cap
        # Linear: equal increments.
        assert (far - beyond) == pytest.approx(beyond - at_cap)

    def test_negative_rho_clamped(self, model):
        assert model.queueing(-1.0) == 0.0


class TestCongestionSemantics:
    def test_remote_uses_worst_of_controller_and_link(self, model):
        only_controller = model.memory_latency_cycles(1, 0.8, 0.0)
        only_link = model.memory_latency_cycles(1, 0.0, 0.8)
        both = model.memory_latency_cycles(1, 0.8, 0.8)
        assert only_controller == pytest.approx(only_link)
        assert both == pytest.approx(only_controller)

    def test_local_ignores_links(self, model):
        assert model.memory_latency_cycles(0, 0.0, 0.9) == pytest.approx(156.0)

    def test_hops_beyond_table_clamp(self, model):
        # Hop counts beyond the calibrated range use the farthest entry.
        assert model.memory_latency_cycles(5, 0.0, 0.0) == pytest.approx(383.0)


class TestConversions:
    def test_cycles_seconds_roundtrip(self, model):
        assert model.seconds_to_cycles(model.cycles_to_seconds(2200.0)) == pytest.approx(2200.0)

    def test_cycle_time_at_2_2ghz(self, model):
        assert model.cycles_to_seconds(2.2e9) == pytest.approx(1.0)


class TestValidation:
    def test_mismatched_tuples_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(base_cycles=(1.0, 2.0), contended_cycles=(3.0, 4.0, 5.0))

    def test_contended_below_base_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(
                base_cycles=(100.0, 200.0, 300.0),
                contended_cycles=(50.0, 400.0, 500.0),
            )
