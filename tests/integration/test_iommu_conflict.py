"""Section 4.4.1 end to end: first-touch breaks PCI passthrough DMA.

The story: a domU under Xen+ uses the passthrough driver. The
administrator switches it to first-touch; the guest reports its free
pages; the hypervisor invalidates their p2m entries. A device DMA into
such a page now aborts with a guest-visible I/O error, and the hypervisor
only learns about it from the asynchronous IOMMU log — too late to fix.
This is why the evaluation disables passthrough whenever first-touch runs.
"""

import pytest

from repro.config import SimConfig
from repro.core.interface import ExternalInterface
from repro.core.policies.base import PolicyName
from repro.guest.page_alloc import GuestPageAllocator
from repro.guest.pv_patch import PvNumaPatch
from repro.hardware.presets import small_machine
from repro.hypervisor.xen import Hypervisor, XEN_PLUS
from repro.vio.dma import DmaEngine
from repro.vio.drivers import PassthroughDriver
from repro.vio.disk import DiskModel


@pytest.fixture
def stack():
    machine = small_machine(num_nodes=4, cpus_per_node=2, frames_per_node=2048)
    hypervisor = Hypervisor(machine, features=XEN_PLUS)
    domain = hypervisor.create_domain("db", num_vcpus=2, memory_pages=256)
    allocator = GuestPageAllocator(first_gpfn=0, num_pages=256)
    external = ExternalInterface(hypervisor.hypercalls, domain.domain_id)
    patch = PvNumaPatch(allocator, external)
    driver = PassthroughDriver(
        DiskModel(), DmaEngine(machine.iommu), machine.config
    )
    return machine, hypervisor, domain, allocator, patch, driver


class TestIommuConflict:
    def test_dma_works_under_round_4k(self, stack):
        machine, hv, domain, allocator, patch, driver = stack
        buf = [allocator.alloc() for _ in range(4)]
        result = driver.read_into(domain, buf)
        assert result.ok
        assert hv.io_mode(domain) == "passthrough"

    def test_first_touch_invalidation_breaks_dma(self, stack):
        machine, hv, domain, allocator, patch, driver = stack
        # Switch to first-touch; the guest reports its free list.
        patch.select_policy(PolicyName.FIRST_TOUCH.value)
        patch.report_free_pages()
        # A DMA buffer allocated *now* is a freshly-invalidated page the
        # CPU has not yet touched.
        buf = [allocator.alloc() for _ in range(4)]
        patch.flush()
        result = driver.read_into(domain, buf)
        assert not result.ok
        assert result.io_errors > 0
        # The guest already saw the error; the hypervisor's log catches up
        # asynchronously.
        events = machine.iommu.drain_error_log()
        assert {e.gpfn for e in events} <= set(buf)

    def test_io_mode_reports_fallback(self, stack):
        """hypervisor.io_mode is how the evaluation avoids the trap."""
        machine, hv, domain, allocator, patch, driver = stack
        assert hv.io_mode(domain) == "passthrough"
        patch.select_policy(PolicyName.FIRST_TOUCH.value)
        assert hv.io_mode(domain) == "paravirt"

    def test_cpu_touch_then_dma_is_fine(self, stack):
        """Pages the CPU has faulted back in DMA correctly again."""
        machine, hv, domain, allocator, patch, driver = stack
        patch.select_policy(PolicyName.FIRST_TOUCH.value)
        patch.report_free_pages()
        buf = [allocator.alloc() for _ in range(2)]
        patch.flush()
        for gpfn in buf:
            hv.guest_access(domain, 0, gpfn)  # CPU touch faults pages in
        result = driver.read_into(domain, buf)
        assert result.ok
