"""vCPU load balancing under hypervisor-level NUMA policies.

The paper's introduction argues against exposing the NUMA topology to the
guest because it freezes the vCPU layout; with the policies *in the
hypervisor*, a vCPU can migrate freely and the dynamic policy chases its
pages. These tests exercise that exact scenario end to end.
"""

import pytest

from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_world
from repro.sim.environment import VmSpec, XenEnvironment, migrate_vcpu
from repro.workloads.suite import get_app

from tests.conftest import fast_app


def build_world(policy, app_name="cg.C", baseline=6.0):
    app = fast_app(get_app(app_name), baseline_seconds=baseline)
    env = XenEnvironment()
    return env.setup([VmSpec(app=app, policy=policy)])


def swap_nodes_0_and_7(world):
    """Exchange the vCPUs of node 0 and node 7 (a balancing decision)."""
    run = world.runs[0]
    for i in range(6):
        migrate_vcpu(run, i, 42 + i)        # node 0 vCPUs -> node 7 CPUs
    for i in range(6):
        migrate_vcpu(run, 42 + i, 0 + i)    # node 7 vCPUs -> node 0 CPUs


class TestMigrateVcpu:
    def test_thread_node_follows_pcpu(self):
        world = build_world(PolicySpec(PolicyName.FIRST_TOUCH))
        run = world.runs[0]
        run.initialize()
        migrate_vcpu(run, 0, 47)
        assert run.threads[0].node == 7
        assert world.runs[0].context.hypervisor.scheduler.pcpu_of(
            run.context.domain.vcpus[0]
        ) == 47
        world.teardown()

    def test_guest_topology_unchanged(self):
        """The whole point: the guest never learns about the move."""
        world = build_world(PolicySpec(PolicyName.FIRST_TOUCH))
        run = world.runs[0]
        run.initialize()
        resident_before = run.context.aspace.resident_pages
        migrate_vcpu(run, 0, 47)
        # No guest-visible state changed: same address space, same pages.
        assert run.context.aspace.resident_pages == resident_before
        world.teardown()


class TestLoadBalancingScenario:
    def test_static_first_touch_loses_locality_after_migration(self):
        world = build_world(PolicySpec(PolicyName.FIRST_TOUCH))
        world.at_epoch(2, swap_nodes_0_and_7)
        results = run_world(world, max_epochs=6)
        records = results[0].records
        # Locality drops once the vCPUs moved away from their pages.
        assert records[1].local_fraction > records[3].local_fraction

    def test_carrefour_chases_the_migrated_vcpus(self):
        world = build_world(
            PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True), baseline=20.0
        )
        world.at_epoch(2, swap_nodes_0_and_7)
        results = run_world(world, max_epochs=14)
        records = results[0].records
        after_move = records[3].local_fraction
        settled = records[-1].local_fraction
        # The migration heuristic moves the hot pages after their users.
        assert settled > after_move + 0.02
        assert results[0].total_migrations > 0

    def test_carrefour_softens_the_migration_cost(self):
        """A mid-run rebalance hurts a static placement more than a
        dynamic one: Carrefour moves the pages after the vCPUs, the
        static first-touch placement stays stranded."""
        dynamic = PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True)
        static = PolicySpec(PolicyName.FIRST_TOUCH)
        moved = {}
        for label, spec in (("dynamic", dynamic), ("static", static)):
            world = build_world(spec)
            world.at_epoch(2, swap_nodes_0_and_7)
            moved[label] = run_world(world)[0].completion_seconds
        undisturbed = run_world(build_world(dynamic))[0].completion_seconds
        assert moved["dynamic"] < moved["static"]
        assert moved["dynamic"] < undisturbed * 3.0
