"""Full-stack Xen runs: faults, queues, policy switches, placement."""

import pytest

from repro.core.policies.base import PolicyName, PolicySpec
from repro.hypervisor.xen import XEN, XEN_PLUS
from repro.sim.engine import run_app, run_apps
from repro.sim.environment import VmSpec, XenEnvironment
from repro.workloads.suite import get_app

from tests.conftest import fast_app


@pytest.fixture
def app():
    return fast_app(get_app("cg.C"), baseline_seconds=4.0)


class TestSingleVm:
    def test_first_touch_places_private_locally(self, app):
        env = XenEnvironment(features=XEN_PLUS)
        world = env.setup([VmSpec(app=app, policy=PolicySpec(PolicyName.FIRST_TOUCH))])
        run = world.runs[0]
        run.initialize()
        # Every thread's private segment must sit on the thread's node.
        for thread in run.threads:
            segment = run.private_by_tid[thread.tid]
            dist = segment.distribution(world.machine.num_nodes)
            assert dist[thread.node] == pytest.approx(1.0)
        world.teardown()

    def test_round_4k_spreads_evenly(self, app):
        env = XenEnvironment(features=XEN_PLUS)
        world = env.setup([VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K))])
        run = world.runs[0]
        run.initialize()
        shared = run.shared_segments[0]
        counts = shared.placement.counts
        assert counts.min() > 0
        assert counts.max() - counts.min() <= counts.mean() * 0.2
        world.teardown()

    def test_round_1g_concentrates_small_app(self):
        small = fast_app(get_app("ep.D"), baseline_seconds=4.0)
        env = XenEnvironment(features=XEN_PLUS)
        world = env.setup([VmSpec(app=small, policy=PolicySpec(PolicyName.ROUND_1G))])
        run = world.runs[0]
        run.initialize()
        shared = run.shared_segments[0]
        dist = shared.distribution(world.machine.num_nodes)
        assert dist.max() > 0.9  # everything in one 1 GiB chunk
        world.teardown()

    def test_placement_view_matches_p2m(self, app):
        """The incremental placement arrays never drift from the p2m."""
        env = XenEnvironment(features=XEN_PLUS)
        world = env.setup([VmSpec(app=app, policy=PolicySpec(PolicyName.FIRST_TOUCH))])
        run = world.runs[0]
        run.initialize()
        context = run.context
        machine = world.machine
        for segment in run.segments[:5]:
            for idx in range(segment.num_pages):
                gpfn = int(segment.keys[idx])
                expected = None
                if gpfn >= 0:
                    entry = context.domain.p2m.lookup(gpfn)
                    if entry is not None and entry.valid:
                        expected = machine.node_of_frame(entry.mfn)
                assert segment.placement.node_of(idx) == expected
        world.teardown()

    def test_churn_exercises_queue_and_faults(self):
        churny = fast_app(get_app("wrmem"), baseline_seconds=4.0)
        env = XenEnvironment(features=XEN_PLUS)
        result = run_app(
            env, VmSpec(app=churny, policy=PolicySpec(PolicyName.FIRST_TOUCH))
        )
        assert result.completion_seconds > 0
        assert result.stats["churn_slowdown"] > 1.0

    def test_stock_xen_slower_than_xen_plus_for_ipi_app(self):
        ipi_heavy = fast_app(get_app("streamcluster"), baseline_seconds=4.0)
        spec = lambda: VmSpec(app=ipi_heavy, policy=PolicySpec(PolicyName.ROUND_4K))
        stock = run_app(XenEnvironment(features=XEN), spec())
        plus = run_app(XenEnvironment(features=XEN_PLUS), spec())
        assert plus.completion_seconds < stock.completion_seconds


class TestPolicyEffects:
    def test_first_touch_wins_for_cg(self, app):
        results = {}
        for base in (PolicyName.ROUND_1G, PolicyName.ROUND_4K, PolicyName.FIRST_TOUCH):
            env = XenEnvironment(features=XEN_PLUS)
            results[base] = run_app(
                env, VmSpec(app=app, policy=PolicySpec(base))
            ).completion_seconds
        assert results[PolicyName.FIRST_TOUCH] < results[PolicyName.ROUND_4K]
        assert results[PolicyName.FIRST_TOUCH] < results[PolicyName.ROUND_1G]

    def test_round_1g_catastrophic_for_memory_bound_app(self, app):
        env = XenEnvironment(features=XEN_PLUS)
        r1g = run_app(env, VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_1G)))
        env = XenEnvironment(features=XEN_PLUS)
        ft = run_app(env, VmSpec(app=app, policy=PolicySpec(PolicyName.FIRST_TOUCH)))
        # The paper's headline: cg.C completion divided by ~6 (we accept >3).
        assert r1g.completion_seconds / ft.completion_seconds > 3.0

    def test_carrefour_on_round4k_recovers_locality(self, app):
        env = XenEnvironment(features=XEN_PLUS)
        plain = run_app(env, VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K)))
        env = XenEnvironment(features=XEN_PLUS)
        with_c = run_app(
            env,
            VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K, carrefour=True)),
        )
        assert with_c.mean_local_fraction > plain.mean_local_fraction
        assert with_c.completion_seconds < plain.completion_seconds
        assert with_c.total_migrations > 0
