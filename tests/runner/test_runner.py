"""Runner behaviour: dedup, store hits, and serial/parallel identity."""

from repro import obs
from repro.config import SimConfig
from repro.runner import Runner, execute_request
from repro.runstore import DiskRunStore, MemoryRunStore
from repro.sim.runspec import RunRequest, VmRequest


def _linux(app="swaptions", policy="first-touch"):
    return RunRequest(
        environment="linux",
        vms=(VmRequest(app=app, policy=policy),),
        config=SimConfig(),
    )


def _xen(app="swaptions"):
    return RunRequest(
        environment="xen",
        vms=(VmRequest(app=app, policy="round-1g"),),
        features="Xen+",
        config=SimConfig(),
    )


class TestDedupAndStore:
    def test_duplicates_coalesce(self):
        runner = Runner()
        request = _linux()
        results = runner.resolve([request, request, request])
        assert runner.stats.requested == 3
        assert runner.stats.deduplicated == 2
        assert runner.stats.executed == 1
        assert len(results) == 1

    def test_second_resolve_hits_store(self):
        runner = Runner()
        runner.resolve([_linux()])
        runner.resolve([_linux()])
        assert runner.stats.executed == 1
        assert runner.store.stats().hits >= 1

    def test_shared_store_across_runners(self):
        store = MemoryRunStore()
        Runner(store=store).resolve([_linux()])
        second = Runner(store=store)
        second.resolve([_linux()])
        assert second.stats.executed == 0
        assert store.stats().hits == 1

    def test_two_runners_publish_distinguishable_stats(self):
        # Regression: stats cells used to be registered by bare name, so
        # two runners in one process (the serve layer holds several)
        # published indistinguishable runner.* cells and every aggregated
        # view double-counted them. Each cell now carries a runner label.
        with obs.session() as sess:
            first = Runner(name="alpha")
            second = Runner(name="beta")
            first.resolve([_linux()])
            second.resolve([_linux(), _linux()])
            assert first.stats.requested == 1
            assert second.stats.requested == 2
            by_scope = {
                cell["labels"]["runner"]: cell["value"]
                for cell in sess.registry.snapshot()
                if cell["name"] == "runner.requested"
            }
        assert by_scope["alpha"] == 1
        assert by_scope["beta"] == 2

    def test_default_scopes_are_distinct(self):
        with obs.session() as sess:
            Runner().resolve([_linux()])
            Runner().resolve([_linux()])
            scopes = [
                cell["labels"]["runner"]
                for cell in sess.registry.snapshot()
                if cell["name"] == "runner.executed"
            ]
        assert len(scopes) == 2
        assert len(set(scopes)) == 2

    def test_summary_has_both_counter_groups(self):
        runner = Runner()
        runner.resolve([_linux()])
        text = runner.summary()
        assert "store:" in text
        assert "runner:" in text


class TestResultSet:
    def test_one_returns_single_result(self):
        runner = Runner()
        request = _linux()
        result = runner.resolve([request]).one(request)
        assert result.app == "swaptions"
        assert result.completion_seconds > 0.0

    def test_lazy_follow_up_resolution(self):
        runner = Runner()
        results = runner.resolve([_linux()])
        follow_up = _xen()
        assert follow_up not in results
        result = results.one(follow_up)  # resolves through the runner
        assert follow_up in results
        assert result.completion_seconds > 0.0
        assert runner.stats.executed == 2

    def test_resolve_merges_into_set(self):
        runner = Runner()
        results = runner.resolve([_linux()])
        results.resolve([_xen()])
        assert len(results) == 2


class TestParallelIdentity:
    REQUESTS = [
        _linux("swaptions", "first-touch"),
        _linux("swaptions", "round-4k"),
        _linux("bodytrack", "first-touch"),
        _xen("swaptions"),
    ]

    def test_parallel_results_bit_identical_to_serial(self):
        serial = Runner(jobs=1)
        parallel = Runner(jobs=2)
        serial_set = serial.resolve(self.REQUESTS)
        parallel_set = parallel.resolve(self.REQUESTS)
        for request in self.REQUESTS:
            assert serial_set.get(request) == parallel_set.get(request)

    def test_parallel_disk_store_round_trip(self, tmp_path):
        store = DiskRunStore(tmp_path / "rs")
        Runner(store=store, jobs=2).resolve(self.REQUESTS)
        # A fresh store instance re-reads everything from disk.
        reread = Runner(store=DiskRunStore(tmp_path / "rs"))
        reread_set = reread.resolve(self.REQUESTS)
        assert reread.stats.executed == 0
        direct = [execute_request(request) for request in self.REQUESTS]
        for request, expected in zip(self.REQUESTS, direct):
            assert reread_set.get(request) == expected


class TestExecuteRequest:
    def test_xen_pair_returns_one_result_per_vm(self):
        halves = ([0, 1, 2, 3], [4, 5, 6, 7])
        request = RunRequest(
            environment="xen",
            vms=tuple(
                VmRequest(
                    app=app,
                    policy=policy,
                    num_vcpus=24,
                    home_nodes=home,
                    pin_pcpus=[c for node in home for c in range(node * 6, node * 6 + 6)],
                )
                for app, policy, home in (
                    ("swaptions", "round-1g", halves[0]),
                    ("bodytrack", "round-4k", halves[1]),
                )
            ),
            features="Xen+",
            config=SimConfig(),
        )
        results = execute_request(request)
        assert [r.app for r in results] == ["swaptions", "bodytrack"]

    def test_deterministic_re_execution(self):
        request = _linux()
        assert execute_request(request) == execute_request(request)


def _cluster(config=None):
    return RunRequest(
        environment="cluster",
        vms=(
            VmRequest(app="streamcluster", num_vcpus=6),
            VmRequest(app="facesim", num_vcpus=6),
        ),
        features="Xen+",
        config=config or SimConfig(page_scale=4096),
    )


class TestClusterExecution:
    def test_first_vm_migrates_to_the_other_host(self):
        results = execute_request(_cluster())
        by_app = {r.app: r for r in results}
        assert set(by_app) == {"streamcluster", "facesim"}
        # The migrated VM finishes on a host-qualified world label and
        # carries the protocol stats.
        migrated = by_app["streamcluster"]
        assert "@h" in migrated.environment
        assert migrated.stats["migration.rounds"] >= 1

    def test_cluster_execution_deterministic(self):
        assert execute_request(_cluster()) == execute_request(_cluster())

    def test_cluster_results_cache_and_replay(self, tmp_path):
        request = _cluster()
        runner = Runner(store=DiskRunStore(str(tmp_path / "rs")))
        first = runner.resolve([request]).get(request)
        runner2 = Runner(store=DiskRunStore(str(tmp_path / "rs")))
        second = runner2.resolve([request]).get(request)
        assert runner2.stats.executed == 0
        assert first == second
