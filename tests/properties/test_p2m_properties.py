"""Property-based tests: the placement view never drifts from the p2m."""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.hypervisor.p2m import P2MTable
from repro.sim.placement import PlacementTracker, SegmentPlacement

PAGES = 32
NODES = 4


class P2MPlacementMachine(RuleBasedStateMachine):
    """Random map/invalidate/migrate sequences keep the view in sync."""

    def __init__(self):
        super().__init__()
        self.p2m = P2MTable(domain_id=1)
        self.tracker = PlacementTracker(node_of_frame=lambda mfn: mfn % NODES)
        self.p2m.observer = self.tracker
        self.placement = SegmentPlacement(PAGES, NODES)
        for gpfn in range(PAGES):
            self.tracker.track(gpfn, self.placement, gpfn)

    @rule(
        gpfn=st.integers(min_value=0, max_value=PAGES - 1),
        mfn=st.integers(min_value=0, max_value=1023),
    )
    def map_page(self, gpfn, mfn):
        entry = self.p2m.lookup(gpfn)
        if entry is None or not entry.valid:
            self.p2m.set_entry(gpfn, mfn)

    @rule(gpfn=st.integers(min_value=0, max_value=PAGES - 1))
    def invalidate(self, gpfn):
        self.p2m.invalidate(gpfn)

    @rule(
        gpfn=st.integers(min_value=0, max_value=PAGES - 1),
        mfn=st.integers(min_value=0, max_value=1023),
    )
    def migrate(self, gpfn, mfn):
        if self.p2m.is_valid(gpfn):
            self.p2m.write_protect(gpfn)
            self.p2m.remap(gpfn, mfn)

    @invariant()
    def view_matches_table(self):
        for gpfn in range(PAGES):
            entry = self.p2m.lookup(gpfn)
            expected = None
            if entry is not None and entry.valid:
                expected = entry.mfn % NODES
            assert self.placement.node_of(gpfn) == expected

    @invariant()
    def counts_match_nodes(self):
        import numpy as np

        recomputed = np.zeros(NODES, dtype=int)
        for gpfn in range(PAGES):
            node = self.placement.node_of(gpfn)
            if node is not None:
                recomputed[node] += 1
        assert recomputed.tolist() == self.placement.counts.tolist()


TestP2MPlacementMachine = P2MPlacementMachine.TestCase
