"""Property-based tests of routing on random connected topologies."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.topology import Link, NumaTopology


@st.composite
def connected_topologies(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    # Spanning chain guarantees connectivity; extra random links on top.
    links = {(i, i + 1) for i in range(n - 1)}
    extra = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=10,
        )
    )
    for a, b in extra:
        if a != b:
            links.add((min(a, b), max(a, b)))
    return NumaTopology(
        num_nodes=n,
        cpus_per_node=draw(st.integers(min_value=1, max_value=4)),
        links=[Link(a, b, 4.0) for a, b in sorted(links)],
        memory_controller_gib_s=13.0,
        node_memory_gib=16.0,
    )


class TestRoutingProperties:
    @given(connected_topologies())
    def test_hops_symmetric_and_triangle(self, topo):
        n = topo.num_nodes
        for s in range(n):
            assert topo.hops(s, s) == 0
            for d in range(n):
                assert topo.hops(s, d) == topo.hops(d, s)
                for m in range(n):
                    assert topo.hops(s, d) <= topo.hops(s, m) + topo.hops(m, d)

    @given(connected_topologies())
    def test_routes_walk_the_graph(self, topo):
        for s in range(topo.num_nodes):
            for d in range(topo.num_nodes):
                cur = s
                for link in topo.route(s, d):
                    assert cur in (link.a, link.b)
                    cur = link.other(cur)
                assert cur == d

    @given(connected_topologies())
    def test_every_cpu_has_one_node(self, topo):
        seen = {}
        for cpu in range(topo.num_cpus):
            node = topo.node_of_cpu(cpu)
            seen.setdefault(node, []).append(cpu)
            assert cpu in topo.cpus_of_node(node)
        assert sum(len(v) for v in seen.values()) == topo.num_cpus
