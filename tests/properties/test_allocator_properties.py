"""Property-based tests of the guest page allocator."""

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.guest.page_alloc import GuestPageAllocator

PAGES = 64


class GuestAllocatorMachine(RuleBasedStateMachine):
    """Alloc/free sequences keep the free list consistent."""

    def __init__(self):
        super().__init__()
        self.alloc = GuestPageAllocator(first_gpfn=100, num_pages=PAGES)
        self.live = set()
        self.events = []
        self.alloc.on_alloc = lambda g: self.events.append(("a", g))
        self.alloc.on_release = lambda g: self.events.append(("r", g))

    @rule()
    def allocate(self):
        if self.alloc.free_pages == 0:
            return
        gpfn = self.alloc.alloc()
        assert gpfn not in self.live, "allocator handed out a live page"
        assert 100 <= gpfn < 100 + PAGES
        self.live.add(gpfn)

    @rule(data=st.data())
    def release(self, data):
        if not self.live:
            return
        gpfn = data.draw(st.sampled_from(sorted(self.live)))
        self.live.discard(gpfn)
        self.alloc.free(gpfn)

    @invariant()
    def accounting_consistent(self):
        assert self.alloc.allocated_pages == len(self.live)
        assert self.alloc.free_pages == PAGES - len(self.live)

    @invariant()
    def free_list_disjoint_from_live(self):
        free = set(self.alloc.iter_free())
        assert not (free & self.live)
        assert len(free) == self.alloc.free_pages

    @invariant()
    def hooks_saw_every_transition(self):
        balance = {}
        for kind, gpfn in self.events:
            balance[gpfn] = balance.get(gpfn, 0) + (1 if kind == "a" else -1)
        for gpfn in self.live:
            assert balance.get(gpfn) == 1
        for gpfn, value in balance.items():
            assert value in (0, 1)


TestGuestAllocatorMachine = GuestAllocatorMachine.TestCase
