"""Property-based tests of the machine frame extent allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.hardware.memory import MachineMemory

FRAMES = 256


class ExtentMachine(RuleBasedStateMachine):
    """Random alloc/free sequences never corrupt the allocator."""

    def __init__(self):
        super().__init__()
        self.memory = MachineMemory(
            num_nodes=1, frames_per_node=FRAMES, controller_gib_s=13.0
        )
        self.live = {}  # mfn -> count

    @rule(count=st.integers(min_value=1, max_value=32))
    def alloc(self, count):
        mfn = self.memory.alloc_frames(0, count)
        if mfn is not None:
            # No overlap with any live allocation.
            for start, length in self.live.items():
                assert mfn + count <= start or start + length <= mfn
            self.live[mfn] = count

    @rule(data=st.data())
    def free(self, data):
        if not self.live:
            return
        mfn = data.draw(st.sampled_from(sorted(self.live)))
        count = self.live.pop(mfn)
        self.memory.free_frames(mfn, count)

    @invariant()
    def frames_conserved(self):
        allocated = sum(self.live.values())
        assert self.memory.free_frames_on(0) == FRAMES - allocated

    @invariant()
    def largest_extent_bounded(self):
        stats = self.memory.stats(0)
        assert 0 <= stats.largest_extent <= stats.free_frames


TestExtentMachine = ExtentMachine.TestCase


class TestAlignmentProperty:
    @given(
        st.integers(min_value=1, max_value=16),
        st.sampled_from([1, 2, 4, 8, 16]),
    )
    def test_alignment_always_honoured(self, count, align):
        memory = MachineMemory(1, FRAMES, 13.0)
        memory.alloc_frames(0, 3)  # perturb
        mfn = memory.alloc_frames(0, count, align=align)
        if mfn is not None:
            assert mfn % align == 0
