"""Property-based tests of the page-event queue and its replay."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.page_queue import (
    PageEvent,
    PageOp,
    PartitionedPageQueue,
    replay_page_events,
)

events_strategy = st.lists(
    st.tuples(st.sampled_from([PageOp.ALLOC, PageOp.RELEASE]),
              st.integers(min_value=0, max_value=63)),
    max_size=200,
)


class TestReplayProperties:
    @given(events_strategy)
    def test_replay_matches_last_op_semantics(self, raw):
        """Replay must honour exactly the newest operation per page."""
        events = [PageEvent(op, g) for op, g in raw]
        last_op = {}
        for op, g in raw:
            last_op[g] = op
        expected_invalidated = {
            g for g, op in last_op.items() if op is PageOp.RELEASE
        }
        invalidated = set()
        inv, skip = replay_page_events(
            events, lambda g: invalidated.add(g) or True
        )
        assert invalidated == expected_invalidated
        assert inv == len(expected_invalidated)
        assert skip == len(last_op) - len(expected_invalidated)

    @given(events_strategy)
    def test_replay_touches_each_page_at_most_once(self, raw):
        events = [PageEvent(op, g) for op, g in raw]
        calls = []
        replay_page_events(events, lambda g: calls.append(g) or True)
        assert len(calls) == len(set(calls))


class TestQueueProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=1023), max_size=300),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=4),
    )
    def test_no_event_lost_or_duplicated(self, gpfns, batch, partitions):
        """Every recorded event is flushed exactly once."""
        flushed = []
        queue = PartitionedPageQueue(
            flush_fn=lambda events: flushed.extend(events),
            batch_size=batch,
            num_partitions=partitions,
        )
        for g in gpfns:
            queue.record(PageOp.RELEASE, g)
        queue.flush_all()
        assert sorted(e.gpfn for e in flushed) == sorted(gpfns)
        assert queue.pending() == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=1023), max_size=300),
        st.integers(min_value=1, max_value=16),
    )
    def test_partition_order_preserved(self, gpfns, batch):
        """Within one partition, events flush in record order."""
        flushed = []
        queue = PartitionedPageQueue(
            flush_fn=lambda events: flushed.extend(events),
            batch_size=batch,
            num_partitions=4,
        )
        for g in gpfns:
            queue.record(PageOp.ALLOC, g)
        queue.flush_all()
        for part in range(4):
            recorded = [g for g in gpfns if g % 4 == part]
            seen = [e.gpfn for e in flushed if e.gpfn % 4 == part]
            assert seen == recorded

    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=200))
    def test_stats_consistent(self, gpfns):
        queue = PartitionedPageQueue(
            flush_fn=lambda events: None, batch_size=8, num_partitions=4
        )
        for g in gpfns:
            queue.record(PageOp.RELEASE, g)
        stats = queue.stats
        assert stats.events == len(gpfns)
        assert stats.flushed_events + queue.pending() == stats.events
