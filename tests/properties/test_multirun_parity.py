"""Batched multi-run execution vs serial: randomized observational equality.

``tests/core/test_multirun.py`` pins the grouping and fallback rules on
fixed batches; here hypothesis draws whole request batches — mixed
applications, policies, seeds, environments, with the per-request P2M
sanitizer armed on a random subset — and requires the batched executor to
reproduce serial execution byte for byte, with the armed requests on the
scalar fallback path. A second, deterministic case drives the fig8
two-stage scenario (sweeps decide follow-up pair runs) through a batched
runner and compares stores against a serial runner.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.core.multirun import execute_batch, group_signature
from repro.experiments import common, fig8
from repro.runner import Runner, execute_request
from repro.sim.runspec import RunRequest, VmRequest

#: Short, coarse runs: the value of these tests is in the *comparison*,
#: not in simulation fidelity, so every request uses ~10 fat epochs.
FAST_KWARGS = dict(epoch_seconds=4.0, page_scale=4096)

APPS = ("swaptions", "ep.D", "ft.C", "streamcluster")
XEN_POLICIES = ("round-4k", "first-touch", "round-1g")
LINUX_POLICIES = ("first-touch", "round-4k")


def dumps(groups):
    return json.dumps(
        [[r.to_json() for r in g] for g in groups], sort_keys=True
    )


@st.composite
def requests_st(draw):
    """One randomly-configured request (xen or linux, maybe sanitized)."""
    app = draw(st.sampled_from(APPS))
    seed = draw(st.sampled_from((42, 7, 3)))
    sanitize = draw(st.booleans())
    config = SimConfig(rng_seed=seed, sanitize_p2m=sanitize, **FAST_KWARGS)
    if draw(st.booleans()):
        return RunRequest(
            environment="xen",
            features=draw(st.sampled_from(("Xen", "Xen+"))),
            vms=(
                VmRequest(app=app, policy=draw(st.sampled_from(XEN_POLICIES))),
            ),
            config=config,
        )
    return RunRequest(
        environment="linux",
        vms=(VmRequest(app=app, policy=draw(st.sampled_from(LINUX_POLICIES))),),
        config=config,
    )


class TestRandomBatchParity:
    @settings(max_examples=8, deadline=None)
    @given(
        requests=st.lists(requests_st(), min_size=2, max_size=5),
        batch_worlds=st.integers(min_value=2, max_value=4),
    )
    def test_batched_equals_serial(self, requests, batch_worlds):
        serial = [execute_request(r) for r in requests]
        outcome = execute_batch(requests, batch_worlds)
        assert dumps(outcome.results) == dumps(serial)
        assert outcome.batched_runs + outcome.fallback_runs == len(requests)
        # Sanitizer-armed requests must have taken the scalar path; they
        # can therefore never be the *only* explanation of a batch.
        armed = sum(1 for r in requests if r.config.sanitize_p2m)
        assert outcome.fallback_runs >= armed
        for request in requests:
            if request.config.sanitize_p2m:
                assert group_signature(request) is None

    @settings(max_examples=8, deadline=None)
    @given(
        requests=st.lists(requests_st(), min_size=2, max_size=5),
        batch_worlds=st.integers(min_value=2, max_value=4),
    )
    def test_metrics_match_serial(self, requests, batch_worlds):
        """Satellite guard at property scale: the transient per-run
        counter snapshots (excluded from to_json, hence from the byte
        comparison above) also match run for run."""
        serial = [execute_request(r) for r in requests]
        outcome = execute_batch(requests, batch_worlds)
        for want_group, got_group in zip(serial, outcome.results):
            for want, got in zip(want_group, got_group):
                assert want.metrics == got.metrics


class TestTwoStageScenario:
    def test_fig8_follow_ups_resolve_through_batches(self):
        """fig8 stage 2 (best-policy pair runs chosen from stage-1 sweeps)
        flows through ResultSet.resolve, so a batched runner must cover it
        too — and produce the stores and figures of a serial runner."""
        pairs = [("cg.C", "sp.C")]
        with common.configured(SimConfig(**FAST_KWARGS)):
            serial_runner = Runner(jobs=1)
            serial_result = fig8.run(
                verbose=False, pairs=pairs, runner=serial_runner
            )
            batched_runner = Runner(batch_worlds=4)
            batched_result = fig8.run(
                verbose=False, pairs=pairs, runner=batched_runner
            )
        assert batched_runner.stats.batched > 0
        assert batched_runner.stats.executed == serial_runner.stats.executed
        keys = sorted(serial_runner.store.data)
        assert sorted(batched_runner.store.data) == keys
        a = dumps([serial_runner.store.get(k) for k in keys])
        b = dumps([batched_runner.store.get(k) for k in keys])
        assert a == b
        assert [p.improvements for p in batched_result.pairs] == [
            p.improvements for p in serial_result.pairs
        ]
