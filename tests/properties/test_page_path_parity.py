"""Array-backed page path vs the scalar oracle: observational equality.

The dict-of-objects :class:`~repro.perfbench.oracle.DictP2MTable` and the
loop bodies it carries *define* the page-path semantics; these tests feed
random operation sequences — scalar and batch, valid and invalid — to
both backends and require identical observable state, return values and
errors throughout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import batch
from repro.core.page_queue import PageOp, PartitionedPageQueue
from repro.errors import P2MError
from repro.hypervisor.p2m import P2MTable
from repro.perfbench.oracle import DictP2MTable
from repro.sim.placement import PlacementTracker, SegmentPlacement

PAGES = 24
MFNS = 64
NODES = 4


def snapshot(table):
    """Everything a client can observe about a p2m table."""
    entries = {}
    for gpfn in range(PAGES):
        entry = table.lookup(gpfn)
        if entry is not None:
            entries[gpfn] = (entry.mfn, entry.valid, entry.writable)
    return {
        "entries": entries,
        "num_entries": table.num_entries,
        "num_valid": table.num_valid,
        "valid": sorted((g, e.mfn) for g, e in table.valid_entries()),
        "invalidations": table.invalidations,
        "migrations": table.migrations,
    }


def apply_op(table, op):
    """Run one operation; returns (result, error message or None)."""
    kind = op[0]
    try:
        if kind == "set":
            return table.set_entry(op[1], op[2]), None
        if kind == "invalidate":
            return table.invalidate(op[1]), None
        if kind == "remove":
            return table.remove(op[1]), None
        if kind == "protect":
            return table.write_protect(op[1]), None
        if kind == "remap":
            return table.remap(op[1], op[2]), None
        if kind == "unprotect":
            return table.unprotect(op[1]), None
        if kind == "set_many":
            return table.set_entries(np.asarray(op[1]), np.asarray(op[2])), None
        if kind == "invalidate_many":
            sel, mfns = table.invalidate_many(np.asarray(op[1]))
            return (sel.tolist(), mfns.tolist()), None
        if kind == "remove_many":
            return table.remove_many(np.asarray(op[1])).tolist(), None
        if kind == "translate_many":
            return table.translate_many(np.asarray(op[1])).tolist(), None
        if kind == "mfns_if_valid":
            return table.mfns_if_valid(np.asarray(op[1])).tolist(), None
        if kind == "nodes_of":
            return table.nodes_of(np.asarray(op[1])).tolist(), None
        raise AssertionError(f"unknown op {kind}")
    except P2MError as exc:
        return None, str(exc)


gpfns_st = st.integers(min_value=0, max_value=PAGES - 1)
mfns_st = st.integers(min_value=0, max_value=MFNS - 1)
gpfn_arrays = st.lists(gpfns_st, min_size=0, max_size=8)

op_st = st.one_of(
    st.tuples(st.just("set"), gpfns_st, mfns_st),
    st.tuples(st.just("invalidate"), gpfns_st),
    st.tuples(st.just("remove"), gpfns_st),
    st.tuples(st.just("protect"), gpfns_st),
    st.tuples(st.just("remap"), gpfns_st, mfns_st),
    st.tuples(st.just("unprotect"), gpfns_st),
    st.lists(st.tuples(gpfns_st, mfns_st), min_size=0, max_size=8).map(
        lambda pairs: (
            "set_many",
            [g for g, _ in pairs],
            [m for _, m in pairs],
        )
    ),
    st.tuples(st.just("invalidate_many"), gpfn_arrays),
    st.tuples(st.just("remove_many"), gpfn_arrays),
    st.tuples(st.just("translate_many"), gpfn_arrays),
    st.tuples(st.just("mfns_if_valid"), gpfn_arrays),
    st.tuples(st.just("nodes_of"), gpfn_arrays),
)


class TestP2MParity:
    @settings(max_examples=150, deadline=None)
    @given(ops=st.lists(op_st, min_size=1, max_size=50))
    def test_random_op_sequences(self, ops):
        """Same ops, same results, same errors, same state — every step."""
        array = P2MTable(domain_id=1, capacity=4)
        oracle = DictP2MTable(domain_id=1, capacity=4)
        array.frames_per_node = oracle.frames_per_node = MFNS // NODES
        for op in ops:
            got = apply_op(array, op)
            want = apply_op(oracle, op)
            assert got == want, f"divergence on {op}: {got} != {want}"
            assert snapshot(array) == snapshot(oracle), f"state after {op}"

    def test_set_entries_all_or_nothing(self):
        """A negative mfn anywhere in a batch mutates neither backend."""
        for table in (P2MTable(1), DictP2MTable(1)):
            table.set_entry(0, 5)
            with pytest.raises(P2MError):
                table.set_entries([1, 2], [7, -1])
            # The array backend validates up front; the loop oracle stops
            # at the bad element. Both leave gpfn 1 unmapped-or-mapped —
            # the observable contract is only that gpfn 0 is untouched
            # and the bad element is not applied.
            assert table.lookup(0).mfn == 5
            assert not table.is_valid(2)

    def test_translate_many_raises_like_scalar(self):
        array, oracle = P2MTable(1), DictP2MTable(1)
        for table in (array, oracle):
            table.set_entry(0, 3)
        got = apply_op(array, ("translate_many", [0, 1]))
        want = apply_op(oracle, ("translate_many", [0, 1]))
        assert got == want
        assert got[1] is not None  # both raised


class TestSanitizerDelegation:
    """With a sanitizer attached the batch paths take the scalar loops,
    so traps fire at the same point with the same message."""

    def _armed(self, cls):
        from repro.lint.sanitizer import P2MSanitizer

        table = cls(domain_id=1)
        sanitizer = P2MSanitizer()
        sanitizer.frames_allocated(0, MFNS)
        table.sanitizer = sanitizer
        return table

    def test_double_map_trap_parity(self):
        results = []
        for cls in (P2MTable, DictP2MTable):
            table = self._armed(cls)
            table.set_entry(0, 7)
            try:
                table.set_entries([1, 2, 3], [8, 7, 9])
                results.append(None)
            except Exception as exc:
                results.append(str(exc))
            # The trap fired on the second element; the first landed.
            assert table.is_valid(1)
            assert not table.is_valid(3)
        assert results[0] == results[1]
        assert results[0] is not None


class TestRngStreamEquality:
    def test_array_draw_matches_sequential_draws(self):
        """`rng.integers(n, size=k)` consumes the stream exactly like k
        scalar draws — the invariant the Carrefour interleave batch path
        and the placement paths rely on."""
        a = np.random.default_rng(1234)
        b = np.random.default_rng(1234)
        for n, k in ((3, 7), (5, 1), (7, 64)):
            batch_draw = a.integers(n, size=k).tolist()
            scalar_draw = [int(b.integers(n)) for _ in range(k)]
            assert batch_draw == scalar_draw


class CaptureFlush:
    def __init__(self):
        self.batches = []

    def __call__(self, events):
        self.batches.append([(e.op, e.gpfn) for e in events])


class TestQueueParity:
    @settings(max_examples=60, deadline=None)
    @given(
        gpfns=st.lists(
            st.integers(min_value=0, max_value=255), min_size=0, max_size=80
        ),
        batch_size=st.integers(min_value=1, max_value=9),
        partitions=st.sampled_from([1, 4]),
    )
    def test_record_many_equals_record_loop(self, gpfns, batch_size, partitions):
        """Same flushes in the same order with the same stats, whether the
        events arrive one by one or as one array."""

        def build():
            capture = CaptureFlush()
            queue = PartitionedPageQueue(
                capture,
                flush_cost_fn=lambda n: 1e-6 * n,
                batch_size=batch_size,
                num_partitions=partitions,
            )
            return capture, queue

        scalar_capture, scalar_queue = build()
        with batch.scalar_mode():
            scalar_queue.record_many(PageOp.ALLOC, gpfns)
        vec_capture, vec_queue = build()
        vec_queue.record_many(PageOp.ALLOC, np.asarray(gpfns, dtype=np.int64))

        assert vec_capture.batches == scalar_capture.batches
        assert vec_queue.pending() == scalar_queue.pending()
        for field in (
            "events",
            "flushes",
            "lock_acquisitions",
            "append_hold_seconds",
            "flush_hold_seconds",
        ):
            assert getattr(vec_queue.stats, field) == getattr(
                scalar_queue.stats, field
            ), field

        scalar_queue.flush_all()
        vec_queue.flush_all()
        assert vec_capture.batches == scalar_capture.batches


class TestPlacementParity:
    @settings(max_examples=60, deadline=None)
    @given(
        moves=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=PAGES - 1),
                st.integers(min_value=0, max_value=NODES - 1),
            ),
            min_size=0,
            max_size=30,
        )
    )
    def test_place_many_equals_place_loop(self, moves):
        # place_many requires duplicate-free indices: keep last write per
        # index, which is what a scalar loop over the dedup'd list does.
        dedup = dict(moves)
        idxs = np.fromiter(dedup.keys(), dtype=np.int64, count=len(dedup))
        nodes = np.fromiter(dedup.values(), dtype=np.int64, count=len(dedup))

        scalar = SegmentPlacement(PAGES, NODES)
        for idx, node in dedup.items():
            scalar.place(idx, node)
        vectorized = SegmentPlacement(PAGES, NODES)
        vectorized.place_many(idxs, nodes)

        assert vectorized.counts.tolist() == scalar.counts.tolist()
        assert vectorized.version == scalar.version
        for idx in range(PAGES):
            assert vectorized.node_of(idx) == scalar.node_of(idx)

        scalar.release_many(idxs)
        for idx in range(PAGES):
            assert scalar.node_of(idx) is None

    def test_tracker_range_hooks_match_scalar_hooks(self):
        """Batch observer callbacks over a tracked range reproduce the
        per-entry scalar callbacks exactly."""
        rng = np.random.default_rng(7)
        gpfns = np.arange(100, 100 + PAGES, dtype=np.int64)
        mfns = rng.integers(0, MFNS, size=PAGES)

        def build(use_range):
            placement = SegmentPlacement(PAGES, NODES)
            tracker = PlacementTracker(
                node_of_frame=lambda mfn: mfn % NODES,
                nodes_of_frames=lambda arr: np.asarray(arr) % NODES,
            )
            if use_range:
                tracker.track_range(100, PAGES, placement, 0)
            else:
                for i in range(PAGES):
                    tracker.track(100 + i, placement, i)
            return placement, tracker

        scalar_placement, scalar_tracker = build(use_range=False)
        for gpfn, mfn in zip(gpfns.tolist(), mfns.tolist()):
            scalar_tracker.entry_set(gpfn, mfn)
        range_placement, range_tracker = build(use_range=True)
        range_tracker.entries_set(gpfns, mfns)

        assert range_placement.counts.tolist() == scalar_placement.counts.tolist()
        assert range_placement.version == scalar_placement.version

        scalar_tracker.entries_invalidated(gpfns[: PAGES // 2])
        range_tracker.entries_invalidated(gpfns[: PAGES // 2])
        assert range_placement.counts.tolist() == scalar_placement.counts.tolist()
        assert range_placement.version == scalar_placement.version
        for idx in range(PAGES):
            assert range_placement.node_of(idx) == scalar_placement.node_of(idx)
