"""Baseline mechanics: load/apply/render round-trips, determinism, and
honest failure on corrupt input."""

import json

import pytest

from repro.errors import ReproError
from repro.lint.baseline import (
    BASELINE_VERSION,
    apply_baseline,
    load_baseline,
    render_baseline,
    save_baseline,
)
from repro.lint.findings import FINDINGS_SCHEMA_VERSION, Finding


def finding(rule="RPR006", path="src/repro/mod.py", line=10, msg="boom"):
    return Finding(
        rule_id=rule,
        rule_name="shared-mutable-state",
        path=path,
        line=line,
        col=1,
        message=msg,
    )


class TestApply:
    def test_exact_match_suppressed(self):
        f = finding()
        allowed = {("RPR006", "src/repro/mod.py", "boom"): 1}
        kept, suppressed = apply_baseline([f], allowed)
        assert kept == [] and suppressed == 1

    def test_line_drift_still_suppressed(self):
        # The baseline matches on (rule, file, message), not line: code
        # moving above a grandfathered finding must not break CI.
        allowed = {("RPR006", "src/repro/mod.py", "boom"): 1}
        kept, suppressed = apply_baseline([finding(line=999)], allowed)
        assert kept == [] and suppressed == 1

    def test_excess_over_count_kept(self):
        allowed = {("RPR006", "src/repro/mod.py", "boom"): 1}
        kept, suppressed = apply_baseline(
            [finding(line=1), finding(line=2)], allowed
        )
        assert suppressed == 1
        assert [f.line for f in kept] == [2]

    def test_unrelated_finding_kept(self):
        allowed = {("RPR006", "src/repro/mod.py", "boom"): 5}
        kept, suppressed = apply_baseline([finding(msg="other")], allowed)
        assert suppressed == 0 and len(kept) == 1


class TestRoundTrip:
    def test_render_load_apply_suppresses_everything(self, tmp_path):
        findings = [
            finding(line=3),
            finding(line=7),
            finding(rule="RPR009", path="src/repro/x.py", msg="leak"),
        ]
        path = tmp_path / "baseline.json"
        save_baseline(str(path), findings)
        allowed = load_baseline(str(path))
        kept, suppressed = apply_baseline(findings, allowed)
        assert kept == [] and suppressed == 3

    def test_duplicate_signatures_counted(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(str(path), [finding(line=3), finding(line=7)])
        payload = json.loads(path.read_text())
        (entry,) = payload["findings"]
        assert entry["count"] == 2

    def test_render_is_deterministic(self):
        findings = [finding(line=7), finding(rule="RPR009", msg="leak")]
        assert render_baseline(findings) == render_baseline(
            list(reversed(findings))
        )

    def test_render_is_sorted_and_versioned(self):
        text = render_baseline([finding()])
        payload = json.loads(text)
        assert payload["schema_version"] == BASELINE_VERSION
        assert payload["tool"] == "repro.lint"
        assert text.endswith("\n")


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read baseline"):
            load_baseline(str(tmp_path / "absent.json"))

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_baseline(str(path))

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": 99, "findings": []}))
        with pytest.raises(ReproError, match="schema_version"):
            load_baseline(str(path))

    def test_missing_findings_key(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema_version": BASELINE_VERSION}))
        with pytest.raises(ReproError, match="no findings list"):
            load_baseline(str(path))


class TestFindingRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        f = finding()
        assert Finding.from_dict(f.to_dict()) == f

    def test_schema_version_is_two(self):
        assert FINDINGS_SCHEMA_VERSION == 2

    def test_dict_uses_v2_keys(self):
        assert set(finding().to_dict()) == {
            "rule_id",
            "rule_name",
            "severity",
            "file",
            "line",
            "col",
            "message",
        }
