"""Each lint rule catches its seeded fixture violation and passes the
clean twin."""

import os

import pytest

from repro.lint.analyzer import Analyzer

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint(relpath, select=None):
    report = Analyzer(select=select).run([os.path.join(FIXTURES, relpath)])
    assert not report.errors, report.errors
    return report.findings


def rule_ids(findings):
    return {f.rule_id for f in findings}


class TestInterfaceEncapsulation:
    def test_bad_policy_flagged(self):
        findings = lint("core/policies/bad_policy.py", select=["RPR001"])
        assert findings, "seeded violations not caught"
        lines = {f.line for f in findings}
        # The hypervisor-internal imports, the .allocator/.p2m reaches and
        # the set_entry call must all be flagged.
        messages = " ".join(f.message for f in findings)
        assert "repro.hypervisor.allocator" in messages
        assert ".allocator" in messages
        assert "set_entry" in messages
        assert len(lines) >= 4

    def test_good_policy_clean(self):
        assert lint("core/policies/good_policy.py", select=["RPR001"]) == []

    def test_rule_scoped_to_policy_paths(self):
        # The same constructs outside policies/carrefour paths are legal.
        assert lint("hypervisor/good_migration.py", select=["RPR001"]) == []


class TestDeterminism:
    def test_bad_flagged(self):
        findings = lint("bad_determinism.py", select=["RPR002"])
        messages = " ".join(f.message for f in findings)
        assert "random module" in messages
        assert "wall clock" in messages
        assert "hash()" in messages
        assert "without a seed" in messages
        assert "global random stream" in messages
        # The ImportFrom flavour: `from numpy.random import uniform` binds
        # the global stream just like `np.random.uniform(...)` does.
        assert "from numpy.random import uniform" in messages

    def test_good_clean(self):
        # Includes `from numpy.random import PCG64, default_rng` — the
        # seeded-generator constructors stay importable either way.
        assert lint("good_determinism.py", select=["RPR002"]) == []


class TestErrorDiscipline:
    def test_bad_flagged(self):
        findings = lint("core/bad_errors.py", select=["RPR003"])
        messages = " ".join(f.message for f in findings)
        assert "bare except" in messages
        assert "except Exception" in messages
        assert "except BaseException" in messages
        assert "raise ValueError" in messages

    def test_good_clean(self):
        assert lint("core/good_errors.py", select=["RPR003"]) == []


class TestHypercallValidation:
    def test_bad_flagged(self):
        findings = lint("core/bad_hypercall.py", select=["RPR004"])
        assert len(findings) == 1
        assert "_hc_leaky" in findings[0].message

    def test_good_clean(self):
        assert lint("core/good_hypercall.py", select=["RPR004"]) == []


class TestMigrationProtocol:
    def test_bad_flagged(self):
        findings = lint("hypervisor/bad_migration.py", select=["RPR005"])
        assert len(findings) == 1
        assert "write_protect" in findings[0].message

    def test_good_clean(self):
        assert lint("hypervisor/good_migration.py", select=["RPR005"]) == []


class TestFrameworkBehaviour:
    def test_all_rules_fire_on_fixture_tree(self):
        report = Analyzer().run([FIXTURES])
        assert rule_ids(report.findings) == {
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
        }

    def test_suppression_comment(self, tmp_path):
        src = "import random  # repro-lint: ignore[RPR002]\n"
        path = tmp_path / "suppressed.py"
        path.write_text(src)
        assert Analyzer().run([str(path)]).findings == []
        # A mismatched id does not suppress.
        path.write_text("import random  # repro-lint: ignore[RPR001]\n")
        assert len(Analyzer().run([str(path)]).findings) == 1

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        report = Analyzer().run([str(path)])
        assert report.errors and not report.findings
        assert not report.ok

    def test_unknown_rule_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            Analyzer(select=["RPR999"])

    def test_select_by_name(self):
        findings = lint("bad_determinism.py", select=["determinism"])
        assert findings and rule_ids(findings) == {"RPR002"}
