"""The project-wide dataflow rules (RPR006-RPR010): each catches its
seeded fixture violations and passes the clean twin."""

import os

from repro.lint.analyzer import Analyzer
from repro.lint.project import ProjectContext, module_name_for
from repro.lint.visitor import FileContext

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "project")


def lint(relpaths, select):
    if isinstance(relpaths, str):
        relpaths = [relpaths]
    report = Analyzer(select=select).run(
        [os.path.join(FIXTURES, rel) for rel in relpaths]
    )
    assert not report.errors, report.errors
    return report.findings


def project_for(relpaths):
    contexts = []
    for rel in relpaths:
        path = os.path.join(FIXTURES, rel)
        with open(path, "r", encoding="utf-8") as handle:
            contexts.append(FileContext(path, handle.read()))
    return ProjectContext(contexts)


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/sim/engine.py") == "repro.sim.engine"

    def test_package_init_is_the_package(self):
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_fixture_paths_keep_their_tail(self):
        name = module_name_for("tests/lint/fixtures/project/helpers.py")
        assert name.endswith("fixtures.project.helpers")


class TestCallGraph:
    def test_cross_module_call_resolves(self):
        project = project_for(["purity_bad/worker.py", "purity_bad/helpers.py"])
        roots = project.roots_named("execute_request")
        assert len(roots) == 1
        chains = project.reachable_from(roots)
        reachable_tails = {q.split(".")[-1] for q in chains}
        assert {"execute_request", "annotate", "simulate"} <= reachable_tails

    def test_chains_are_shortest_and_deterministic(self):
        project = project_for(["purity_bad/worker.py", "purity_bad/helpers.py"])
        chains = project.reachable_from(project.roots_named("execute_request"))
        annotate = next(q for q in chains if q.endswith(".annotate"))
        assert len(chains[annotate]) == 2  # root -> annotate, direct

    def test_effects_collected(self):
        project = project_for(["purity_bad/helpers.py"])
        fn = next(
            f for q, f in project.functions.items() if q.endswith(".annotate")
        )
        assert {e.kind for e in fn.effects} == {"time", "env"}


class TestSharedMutableState:
    def test_bad_flagged(self):
        findings = lint(
            ["shared_state_bad.py", "shared_state_poker.py"], select=["RPR006"]
        )
        messages = " ".join(f.message for f in findings)
        assert "mutates module-level mutable '_REGISTRY'" in messages
        assert "'_EVENTS'" in messages
        assert "rebinds module-level name '_MODE' via 'global'" in messages
        # The cross-module poke attributes the state to its owner.
        assert "shared_state_bad" in messages
        assert len(findings) == 4

    def test_good_clean(self):
        assert lint("shared_state_good.py", select=["RPR006"]) == []

    def test_inline_suppression_honored(self):
        assert lint("suppressed_state.py", select=["RPR006"]) == []


class TestPurity:
    def test_bad_flagged_with_chains(self):
        findings = lint(
            ["purity_bad/worker.py", "purity_bad/helpers.py"],
            select=["RPR007"],
        )
        messages = " ".join(f.message for f in findings)
        assert "wall-clock read" in messages
        assert "environment read" in messages
        assert "unseeded randomness" in messages
        assert "filesystem access" in messages
        assert "module-state write" in messages
        assert "execute_request -> annotate" in messages
        assert "execute_request -> simulate" in messages
        # All findings anchor in helpers.py, where the impurity sits.
        assert all(f.path.endswith("helpers.py") for f in findings)

    def test_good_clean(self):
        assert (
            lint(
                ["purity_good/worker.py", "purity_good/helpers.py"],
                select=["RPR007"],
            )
            == []
        )

    def test_no_roots_no_findings(self):
        # A tree without execute_request has no pure zone at all.
        assert lint("shared_state_bad.py", select=["RPR007"]) == []


class TestP2MTypestate:
    def test_bad_flagged(self):
        findings = lint("hypervisor/typestate_bad.py", select=["RPR008"])
        messages = " ".join(f.message for f in findings)
        assert "already write-protected" in messages
        assert "abandons an in-flight migration" in messages
        assert "loses the frame" in messages
        assert "remap requires a write-protected entry" in messages
        assert "double free" in messages
        assert len(findings) == 6

    def test_good_clean(self):
        assert lint("hypervisor/typestate_good.py", select=["RPR008"]) == []

    def test_scoped_to_hypervisor_and_policies(self):
        assert lint("typestate_elsewhere.py", select=["RPR008"]) == []


class TestArrayAliasReturn:
    def test_bad_flagged(self):
        findings = lint("aliasing_return_bad.py", select=["RPR009"])
        messages = " ".join(f.message for f in findings)
        assert "LeakyAttribute.matrix returns attribute-held" in messages
        assert "LeakyMemo.lookup returns memoized" in messages
        assert "LeakyArchive.snapshot returns ndarray 'snap'" in messages
        assert "archives into self.history" in messages
        assert len(findings) == 3

    def test_good_clean(self):
        assert lint("aliasing_return_good.py", select=["RPR009"]) == []


class TestArrayAliasParam:
    def test_bad_flagged(self):
        findings = lint("aliasing_param_bad.py", select=["RPR010"])
        messages = " ".join(f.message for f in findings)
        assert "'matrix'" in messages
        assert "'buffer'" in messages
        assert "'target'" in messages
        assert "'totals'" in messages
        assert len(findings) == 4

    def test_good_clean(self):
        assert lint("aliasing_param_good.py", select=["RPR010"]) == []


class TestDefaultModeGating:
    def test_project_rules_off_by_default(self):
        # Without --strict or an explicit select, the dataflow rules do
        # not run: the fast per-file mode stays exactly as before.
        report = Analyzer().run([os.path.join(FIXTURES, "shared_state_bad.py")])
        assert report.findings == []

    def test_strict_flag_turns_them_on(self):
        report = Analyzer(project=True).run(
            [os.path.join(FIXTURES, "shared_state_bad.py")]
        )
        assert {f.rule_id for f in report.findings} == {"RPR006"}
