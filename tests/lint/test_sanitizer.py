"""The runtime P2M sanitizer catches every dynamic protocol violation."""

import pytest

from repro.config import SimConfig
from repro.errors import SanitizerError
from repro.hardware.memory import MachineMemory
from repro.hardware.presets import small_machine
from repro.hypervisor.p2m import P2MTable
from repro.hypervisor.xen import Hypervisor
from repro.lint.sanitizer import P2MSanitizer


@pytest.fixture
def world():
    """A sanitized two-node memory + two p2m tables, wired by hand."""
    sanitizer = P2MSanitizer()
    memory = MachineMemory(num_nodes=2, frames_per_node=64, controller_gib_s=10.0)
    memory.sanitizer = sanitizer
    p2m_a, p2m_b = P2MTable(1), P2MTable(2)
    p2m_a.sanitizer = sanitizer
    p2m_b.sanitizer = sanitizer
    return sanitizer, memory, p2m_a, p2m_b


class TestDoubleMap:
    def test_same_frame_two_domains(self, world):
        _, memory, p2m_a, p2m_b = world
        mfn = memory.alloc_frames(0)
        p2m_a.set_entry(0, mfn)
        with pytest.raises(SanitizerError, match="double map"):
            p2m_b.set_entry(0, mfn)

    def test_same_frame_two_gpfns(self, world):
        _, memory, p2m_a, _ = world
        mfn = memory.alloc_frames(0)
        p2m_a.set_entry(0, mfn)
        with pytest.raises(SanitizerError, match="double map"):
            p2m_a.set_entry(1, mfn)

    def test_idempotent_set_entry_allowed(self, world):
        _, memory, p2m_a, _ = world
        mfn = memory.alloc_frames(0)
        p2m_a.set_entry(0, mfn)
        p2m_a.set_entry(0, mfn)

    def test_overwrite_leaks_old_frame(self, world):
        _, memory, p2m_a, _ = world
        first, second = memory.alloc_frames(0), memory.alloc_frames(0)
        p2m_a.set_entry(0, first)
        with pytest.raises(SanitizerError, match="leak"):
            p2m_a.set_entry(0, second)


class TestFrameLifetime:
    def test_map_of_freed_frame(self, world):
        _, memory, p2m_a, _ = world
        mfn = memory.alloc_frames(0)
        memory.free_frames(mfn, 1)
        with pytest.raises(SanitizerError, match="not allocated"):
            p2m_a.set_entry(0, mfn)

    def test_map_of_never_allocated_frame(self, world):
        _, _, p2m_a, _ = world
        with pytest.raises(SanitizerError, match="not allocated"):
            p2m_a.set_entry(0, 7)

    def test_free_of_mapped_frame(self, world):
        _, memory, p2m_a, _ = world
        mfn = memory.alloc_frames(0)
        p2m_a.set_entry(0, mfn)
        with pytest.raises(SanitizerError, match="still mapped"):
            memory.free_frames(mfn, 1)

    def test_invalidate_then_free_is_legal(self, world):
        _, memory, p2m_a, _ = world
        mfn = memory.alloc_frames(0)
        p2m_a.set_entry(0, mfn)
        assert p2m_a.invalidate(0) == mfn
        memory.free_frames(mfn, 1)


class TestMigrationOrdering:
    def _mapped(self, memory, p2m, gpfn=0, node=0):
        mfn = memory.alloc_frames(node)
        p2m.set_entry(gpfn, mfn)
        return mfn

    def test_legit_migration_passes(self, world):
        _, memory, p2m_a, _ = world
        old = self._mapped(memory, p2m_a)
        new = memory.alloc_frames(1)
        p2m_a.write_protect(0)
        assert p2m_a.remap(0, new) == old
        memory.free_frames(old, 1)

    def test_remap_without_write_protect(self, world):
        _, memory, p2m_a, _ = world
        self._mapped(memory, p2m_a)
        new = memory.alloc_frames(1)
        # Simulate a buggy migration that skips write_protect by flipping
        # the bit directly (so the p2m's own precondition check passes).
        p2m_a.lookup(0).writable = False
        with pytest.raises(SanitizerError, match="out-of-order"):
            p2m_a.remap(0, new)

    def test_double_write_protect(self, world):
        _, memory, p2m_a, _ = world
        self._mapped(memory, p2m_a)
        p2m_a.write_protect(0)
        with pytest.raises(SanitizerError, match="already in flight"):
            p2m_a.write_protect(0)

    def test_set_entry_during_migration(self, world):
        _, memory, p2m_a, _ = world
        mfn = self._mapped(memory, p2m_a)
        p2m_a.write_protect(0)
        with pytest.raises(SanitizerError, match="in-flight migration"):
            p2m_a.set_entry(0, mfn)

    def test_unprotect_aborts_migration(self, world):
        _, memory, p2m_a, _ = world
        mfn = self._mapped(memory, p2m_a)
        p2m_a.write_protect(0)
        p2m_a.unprotect(0)
        p2m_a.set_entry(0, mfn)  # entry usable again

    def test_unprotect_without_protect(self, world):
        _, memory, p2m_a, _ = world
        self._mapped(memory, p2m_a)
        with pytest.raises(SanitizerError, match="never write-protected"):
            p2m_a.unprotect(0)

    def test_remap_onto_foreign_frame(self, world):
        _, memory, p2m_a, p2m_b = world
        self._mapped(memory, p2m_a, gpfn=0)
        theirs = self._mapped(memory, p2m_b, gpfn=0, node=1)
        p2m_a.write_protect(0)
        with pytest.raises(SanitizerError, match="double map"):
            p2m_a.remap(0, theirs)


class TestHypervisorIntegration:
    def test_hypervisor_gets_sanitizer_from_global_enable(self, hypervisor):
        # tests/conftest.py arms the sanitizer for the whole suite.
        assert hypervisor.sanitizer is not None
        assert hypervisor.machine.memory.sanitizer is hypervisor.sanitizer
        assert hypervisor.dom0.p2m.sanitizer is hypervisor.sanitizer

    def test_config_flag_enables_without_global(self, monkeypatch):
        from repro.lint import sanitizer as mod

        monkeypatch.setattr(mod._MODE, "enabled", False)
        config = SimConfig(sanitize_p2m=True)
        hyp = Hypervisor(small_machine(config=config))
        assert hyp.sanitizer is not None
        monkeypatch.setattr(mod._MODE, "enabled", False)
        hyp_off = Hypervisor(small_machine())
        assert hyp_off.sanitizer is None

    def test_interface_migration_passes_sanitized(self, hypervisor):
        domain = hypervisor.create_domain("vm", num_vcpus=1, memory_pages=16)
        target = 0 if hypervisor.internal.node_of_gpfn(domain, 3) else 1
        assert hypervisor.internal.migrate_page(domain, 3, target)
        assert hypervisor.internal.node_of_gpfn(domain, 3) == target

    def test_broken_migration_ordering_trapped(self, hypervisor):
        """Regression: a remap that skips write_protect must raise."""
        domain = hypervisor.create_domain("vm", num_vcpus=1, memory_pages=16)
        entry = domain.p2m.lookup(3)
        src = hypervisor.machine.node_of_frame(entry.mfn)
        new_mfn = hypervisor.machine.memory.alloc_frames((src + 1) % 4, 1)
        entry.writable = False  # buggy code path: protocol step skipped
        with pytest.raises(SanitizerError, match="out-of-order"):
            domain.p2m.remap(3, new_mfn)

    def test_forged_write_protection_fault_trapped(self, hypervisor):
        """Regression: accounting a write fault against an entry the
        migration protocol never write-protected must raise.

        The fault handler's own precondition (entry not writable) is
        satisfied here because the bit was flipped straight through the
        entry view — only the sanitizer's protocol shadow catches it.
        """
        domain = hypervisor.create_domain("vm", num_vcpus=1, memory_pages=16)
        domain.p2m.lookup(3).writable = False  # forged, not write_protect()
        with pytest.raises(SanitizerError, match="no migration in flight"):
            hypervisor.fault_handler.on_write_protected(domain, 3)

    def test_genuine_write_protection_fault_passes(self, hypervisor):
        domain = hypervisor.create_domain("vm", num_vcpus=1, memory_pages=16)
        domain.p2m.write_protect(3)
        hypervisor.fault_handler.on_write_protected(domain, 3)
        assert hypervisor.fault_handler.stats.write_protection_faults == 1

    def test_domain_teardown_is_clean(self, hypervisor):
        domain = hypervisor.create_domain("vm", num_vcpus=1, memory_pages=16)
        hypervisor.destroy_domain(domain)  # remove-then-free must not trap
