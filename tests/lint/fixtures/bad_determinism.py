"""Seeded RPR002 violations: every flavour of nondeterminism."""

import random
import time

import numpy as np
from numpy.random import uniform


def derive_seed(name):
    return hash(name) + int(time.time())


def make_rng():
    return np.random.default_rng()


def draw():
    return np.random.uniform(0, 1) + random.random()
