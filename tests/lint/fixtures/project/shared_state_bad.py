"""RPR006 firing fixture: module-level mutables written at runtime."""

_REGISTRY = {}
_EVENTS = []
_MODE = "fast"


def register(name, value):
    _REGISTRY[name] = value  # subscript store into a module-level dict


def log_event(event):
    _EVENTS.append(event)  # mutating method on a module-level list


def set_mode(mode):
    global _MODE
    _MODE = mode  # runtime rebind via 'global'
