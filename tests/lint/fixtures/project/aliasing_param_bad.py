"""RPR010 firing fixture: undocumented in-place parameter mutation."""

import numpy as np


def normalize(matrix):
    matrix[...] = matrix / matrix.sum()


def reset(buffer):
    buffer.fill(0.0)


def scatter(target, values):
    np.copyto(target, values)


def accumulate(totals, amounts):
    totals[:] += amounts
