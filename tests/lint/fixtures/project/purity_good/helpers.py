"""Pure helpers: seeded randomness, no clock, no filesystem."""

import numpy as np


def simulate(request):
    rng = np.random.default_rng(request["seed"])
    samples = rng.random(8)
    return float(samples.sum())


def unreachable_impurity():
    # Impure, but not reachable from execute_request: RPR007 stays quiet.
    import time

    return time.time()
