"""RPR007 silent fixture: a pure execute_request closure."""

import helpers


def execute_request(request):
    return helpers.simulate(request)
