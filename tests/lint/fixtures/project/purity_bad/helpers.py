"""Reachable helpers carrying every impurity kind."""

import os
import time

import numpy as np

_SEEN = []


def annotate(request):
    return {
        "at": time.time(),
        "host": os.getenv("HOSTNAME"),
    }


def simulate(request):
    _SEEN.append(request)
    rng = np.random.default_rng()
    with open("/tmp/fixture-debug.log", "w") as handle:
        handle.write("simulated")
    return rng.random()
