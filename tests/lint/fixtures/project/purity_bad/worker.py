"""RPR007 firing fixture: an impure execute_request closure."""

import helpers


def execute_request(request):
    annotation = helpers.annotate(request)
    return helpers.simulate(request), annotation
