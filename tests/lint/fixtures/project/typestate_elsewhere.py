"""RPR008 scope fixture: violating sequences OUTSIDE hypervisor/policies
paths are another subsystem's business — the rule must stay quiet."""


def double_protect(p2m, gpfn):
    p2m.write_protect(gpfn)
    p2m.write_protect(gpfn)
