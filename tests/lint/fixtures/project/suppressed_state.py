"""Inline-suppression fixture: project findings honor ignore comments."""

_SWITCH = {"on": False}


def flip(value):
    _SWITCH["on"] = value  # repro-lint: ignore[RPR006] - deliberate toggle
