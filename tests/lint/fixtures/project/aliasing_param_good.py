"""RPR010 silent fixture: sanctioned in-place parameter contracts."""

import numpy as np


def normalize_into(matrix, out):
    out[...] = matrix / matrix.sum()  # numpy's own out= convention


def reset(buffer):
    """Zero ``buffer`` in place (the caller's array is overwritten)."""
    buffer.fill(0.0)


def scatter(target, values):
    """Copy ``values`` into ``target`` in place."""
    np.copyto(target, values)


def doubled(matrix):
    matrix = matrix.copy()  # rebound: no longer the caller's array
    matrix[...] *= 2.0
    return matrix


def read_only(matrix):
    return float(matrix.sum())
