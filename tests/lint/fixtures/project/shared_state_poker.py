"""RPR006 firing fixture: cross-module poke into another module's state."""

import shared_state_bad


def poke(name, value):
    shared_state_bad._REGISTRY[name] = value
