"""RPR009 silent fixture: the sanctioned ways to hand out arrays."""

import numpy as np


class FrozenAttribute:
    def __init__(self, n):
        self._matrix = np.zeros((n, n))
        self._matrix.setflags(write=False)

    def matrix(self):
        return self._matrix  # frozen before it can escape


class CopyingAttribute:
    def __init__(self, n):
        self._matrix = np.zeros((n, n))

    def matrix(self):
        return self._matrix.copy()  # the caller owns the copy


class FrozenMemo:
    def __init__(self):
        self._cache = {}

    def lookup(self, key):
        if key not in self._cache:
            value = np.zeros(4)
            value.setflags(write=False)
            self._cache[key] = value
        return self._cache[key]


class FrozenArchive:
    def __init__(self):
        self.history = []
        self.state = np.zeros(3)

    def snapshot(self):
        snap = self.state.copy()
        snap.setflags(write=False)
        self.history.append(snap)
        return snap
