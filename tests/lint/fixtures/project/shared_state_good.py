"""RPR006 silent fixture: the sanctioned shapes of mutable state."""

#: Import-time-only population is fine (no function body writes it).
_DEFAULTS = {"mode": "fast", "jobs": 1}

#: Immutable module constants are not shared mutable state.
SUPPORTED_MODES = ("fast", "slow")


class Registry:
    """State owned by an instance handed down explicitly."""

    def __init__(self):
        self._entries = {}

    def register(self, name, value):
        self._entries[name] = value


def merge(overrides):
    # Locals and parameters may be mutated freely.
    merged = dict(_DEFAULTS)
    merged.update(overrides)
    overrides["seen"] = True
    return merged
