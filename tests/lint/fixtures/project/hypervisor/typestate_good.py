"""RPR008 silent fixture: protocol-correct p2m call sequences."""


def migrate(p2m, gpfn, new_mfn):
    p2m.write_protect(gpfn)
    return p2m.remap(gpfn, new_mfn)


def migrate_or_abort(p2m, gpfn, new_mfn, failed):
    p2m.write_protect(gpfn)
    if failed:
        p2m.unprotect(gpfn)
    else:
        p2m.remap(gpfn, new_mfn)


def first_touch_cycle(p2m, gpfn):
    p2m.set_entry(gpfn, 3)
    p2m.invalidate(gpfn)
    p2m.set_entry(gpfn, 4)
    p2m.remove(gpfn)


def distinct_pages(p2m, a, b):
    # b's protocol is not satisfied by a's write-protect: separate keys.
    p2m.write_protect(a)
    p2m.remap(a, 1)
    p2m.write_protect(b)
    p2m.remap(b, 2)


def migrate_batch(p2m, gpfns, mfns):
    for gpfn, mfn in zip(gpfns, mfns):
        p2m.write_protect(gpfn)
        p2m.remap(gpfn, mfn)


def guarded_migration(p2m, gpfn, new_mfn):
    p2m.write_protect(gpfn)
    try:
        p2m.remap(gpfn, new_mfn)
    except RuntimeError:
        # The remap may or may not have happened; either way this is
        # legal on at least one path.
        p2m.unprotect(gpfn)
