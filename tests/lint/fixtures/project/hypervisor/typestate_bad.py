"""RPR008 firing fixture: migration-protocol-violating call sequences."""


def double_protect(p2m, gpfn):
    p2m.write_protect(gpfn)
    p2m.write_protect(gpfn)  # already write-protected


def invalidate_mid_migration(p2m, gpfn):
    p2m.set_entry(gpfn, 1)
    p2m.write_protect(gpfn)
    p2m.invalidate(gpfn)  # abandons the in-flight migration


def free_mid_migration(p2m, gpfn):
    p2m.set_entry(gpfn, 1)
    p2m.write_protect(gpfn)
    p2m.remove(gpfn)  # frees the frame the protocol still copies from


def remap_without_protect(p2m, gpfn):
    p2m.set_entry(gpfn, 1)
    p2m.remap(gpfn, 2)  # remap requires a write-protected entry


def double_free(p2m, gpfn):
    p2m.remove(gpfn)
    p2m.remove(gpfn)  # double free


def violating_on_every_branch(p2m, gpfn, fast):
    p2m.write_protect(gpfn)
    if fast:
        p2m.remap(gpfn, 3)
    else:
        p2m.unprotect(gpfn)
    p2m.unprotect(gpfn)  # mapped on both paths: always a violation
