"""RPR009 firing fixture: writable aliases of internal ndarrays escape."""

import numpy as np


class LeakyAttribute:
    def __init__(self, n):
        self._matrix = np.zeros((n, n))

    def matrix(self):
        return self._matrix  # live alias of internal state


class LeakyMemo:
    def __init__(self):
        self._cache = {}

    def lookup(self, key):
        if key not in self._cache:
            value = np.zeros(4)
            self._cache[key] = value
        return self._cache[key]  # memoized array handed out writable


class LeakyArchive:
    def __init__(self):
        self.history = []
        self.state = np.zeros(3)

    def snapshot(self):
        snap = self.state.copy()
        self.history.append(snap)
        return snap  # the caller's array IS the history entry
