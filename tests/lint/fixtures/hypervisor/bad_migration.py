"""Seeded RPR005 violation: remap with no preceding write-protect."""


def migrate(p2m, machine, gpfn, dst_node):
    new_mfn = machine.memory.alloc_frames(dst_node, 1)
    old_mfn = p2m.remap(gpfn, new_mfn)
    return old_mfn
