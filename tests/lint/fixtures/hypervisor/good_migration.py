"""Protocol-respecting migration (no findings)."""


def migrate(p2m, machine, gpfn, dst_node):
    new_mfn = machine.memory.alloc_frames(dst_node, 1)
    p2m.write_protect(gpfn)
    old_mfn = p2m.remap(gpfn, new_mfn)
    machine.memory.free_frames(old_mfn, 1)
    return old_mfn


def abort(p2m, gpfn):
    p2m.write_protect(gpfn)
    p2m.unprotect(gpfn)
