"""Seeded RPR003 violations: broad excepts and untyped raises."""


def swallow():
    try:
        return 1
    except:
        return None


def too_broad():
    try:
        return 1
    except Exception:
        raise ValueError("untyped in core scope")


def tuple_broad():
    try:
        return 1
    except (KeyError, BaseException):
        return None
