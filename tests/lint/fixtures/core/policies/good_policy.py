"""A policy that stays behind the internal interface (no findings)."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.interface import InternalInterface


class GoodPolicy:
    def __init__(self, internal):
        self.internal = internal

    def populate(self, domain):
        self.internal.populate_round_4k(domain)

    def rebalance(self, domain, gpfn, node):
        self.internal.migrate_page(domain, gpfn, node)
