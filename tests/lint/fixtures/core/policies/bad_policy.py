"""Seeded RPR001 violations: a policy reaching past the interface."""

from repro.hypervisor.allocator import XenHeapAllocator, _RoundRobin
from repro.hypervisor.p2m import P2MTable


class BadPolicy:
    def __init__(self, hypervisor):
        self.allocator = hypervisor.allocator

    def populate(self, domain):
        mfn = self.allocator.alloc_page_on(0)
        domain.p2m.set_entry(0, mfn)
