"""Seeded RPR004 violation: state touched before validation."""

from repro.errors import HypercallError


class Manager:
    def _hc_leaky(self, domain_id, vcpu_id, args):
        domain = self.domain(domain_id)
        if not isinstance(args, dict):
            raise HypercallError("needs a dict")
        return domain.numa_policy
