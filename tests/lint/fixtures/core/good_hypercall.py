"""Validation-first hypercall handlers (no findings)."""

from repro.errors import HypercallError


class Manager:
    def _hc_strict(self, domain_id, vcpu_id, args):
        if not isinstance(args, dict):
            raise HypercallError("needs a dict")
        domain = self.domain(domain_id)
        return domain.numa_policy

    def _hc_helper_validated(self, domain_id, vcpu_id, args):
        self.validate_events(args)
        return self.domain(domain_id)
