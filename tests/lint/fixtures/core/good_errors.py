"""Typed-error discipline (no findings)."""

from repro.errors import PolicyError


def typed():
    try:
        return 1
    except KeyError:
        raise PolicyError("typed and precise") from None


def protocol():
    raise NotImplementedError


def __getattr__(name):
    raise AttributeError(name)
