"""Deterministic randomness patterns (no findings)."""

import numpy as np
from numpy.random import PCG64, default_rng


def make_rng(seed):
    return np.random.default_rng(seed)


def draw(rng):
    return rng.uniform(0, 1) + rng.random()
