"""The ``python -m repro.lint`` command line, including the self-check."""

import json
import os
import subprocess
import sys

from repro.lint.cli import main
from repro.lint.findings import FINDINGS_SCHEMA_VERSION, Finding

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
PROJECT_FIXTURES = os.path.join(FIXTURES, "project")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([os.path.join(FIXTURES, "good_determinism.py")]) == 0
        assert "all clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([os.path.join(FIXTURES, "bad_determinism.py")]) == 1
        out = capsys.readouterr().out
        assert "RPR002" in out and "finding(s)" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--select", "RPR999", FIXTURES]) == 2

    def test_missing_path_exits_two(self, capsys):
        # Analysis failure, not a finding: CI must tell them apart.
        assert main(["no/such/dir"]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_unparsable_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        assert main([str(bad)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
            "RPR006", "RPR007", "RPR008", "RPR009", "RPR010",
        ):
            assert rule_id in out


class TestJsonOutput:
    def test_json_is_parseable_and_complete(self, capsys):
        code = main(
            ["--format", "json", os.path.join(FIXTURES, "bad_determinism.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == FINDINGS_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["errors"] == []
        assert payload["baselined"] == 0
        finding = payload["findings"][0]
        assert set(finding) == {
            "rule_id",
            "rule_name",
            "severity",
            "file",
            "line",
            "col",
            "message",
        }

    def test_json_findings_round_trip(self, capsys):
        main(["--format", "json", os.path.join(FIXTURES, "bad_determinism.py")])
        payload = json.loads(capsys.readouterr().out)
        for entry in payload["findings"]:
            rebuilt = Finding.from_dict(entry)
            assert rebuilt.to_dict() == entry


class TestStrictMode:
    def test_strict_fails_on_project_finding(self, capsys):
        bad = os.path.join(PROJECT_FIXTURES, "shared_state_bad.py")
        assert main(["--strict", bad]) == 1
        assert "RPR006" in capsys.readouterr().out

    def test_default_mode_ignores_project_finding(self, capsys):
        bad = os.path.join(PROJECT_FIXTURES, "shared_state_bad.py")
        assert main([bad]) == 0

    def test_baseline_suppresses_known_findings(self, tmp_path, capsys):
        bad = os.path.join(PROJECT_FIXTURES, "shared_state_bad.py")
        baseline = tmp_path / "baseline.json"
        assert main(["--baseline-update", "--baseline", str(baseline), bad]) == 0
        capsys.readouterr()
        assert main(["--strict", "--baseline", str(baseline), bad]) == 0
        assert "baselined finding(s) suppressed" in capsys.readouterr().out

    def test_baseline_update_is_deterministic(self, tmp_path, capsys):
        bad = os.path.join(PROJECT_FIXTURES, "shared_state_bad.py")
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["--baseline-update", "--baseline", str(first), bad]) == 0
        assert main(["--baseline-update", "--baseline", str(second), bad]) == 0
        assert first.read_text() == second.read_text()

    def test_new_finding_beyond_baseline_still_fails(self, tmp_path, capsys):
        bad = os.path.join(PROJECT_FIXTURES, "shared_state_bad.py")
        poker = os.path.join(PROJECT_FIXTURES, "shared_state_poker.py")
        baseline = tmp_path / "baseline.json"
        assert main(["--baseline-update", "--baseline", str(baseline), bad]) == 0
        capsys.readouterr()
        # The poker adds a cross-module write that is not in the baseline.
        assert main(["--strict", "--baseline", str(baseline), bad, poker]) == 1
        assert "RPR006" in capsys.readouterr().out

    def test_explicit_missing_baseline_exits_two(self, tmp_path, capsys):
        bad = os.path.join(PROJECT_FIXTURES, "shared_state_bad.py")
        missing = str(tmp_path / "absent.json")
        assert main(["--strict", "--baseline", missing, bad]) == 2

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        bad = os.path.join(PROJECT_FIXTURES, "shared_state_bad.py")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        assert main(["--strict", "--baseline", str(baseline), bad]) == 2


def _run_lint(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


class TestSelfCheck:
    def test_src_repro_is_lint_clean(self):
        """The tree this repo ships must pass its own analyzer."""
        proc = _run_lint("src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all clean" in proc.stdout

    def test_src_repro_is_strict_clean_under_committed_baseline(self):
        """The CI gate: strict mode + the committed baseline exit 0."""
        assert os.path.exists(os.path.join(REPO_ROOT, "lint-baseline.json"))
        proc = _run_lint("--strict", "src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all clean" in proc.stdout

    def test_committed_baseline_is_current(self, tmp_path):
        """--baseline-update reproduces the committed file byte-for-byte:
        nobody hand-edited it, and nothing drifted since it was cut."""
        out = tmp_path / "regenerated.json"
        proc = _run_lint("--baseline-update", "--baseline", str(out), "src/repro")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        committed = os.path.join(REPO_ROOT, "lint-baseline.json")
        with open(committed, "r", encoding="utf-8") as handle:
            assert out.read_text() == handle.read()
