"""The ``python -m repro.lint`` command line, including the self-check."""

import json
import os
import subprocess
import sys

from repro.lint.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([os.path.join(FIXTURES, "good_determinism.py")]) == 0
        assert "all clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([os.path.join(FIXTURES, "bad_determinism.py")]) == 1
        out = capsys.readouterr().out
        assert "RPR002" in out and "finding(s)" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--select", "RPR999", FIXTURES]) == 2

    def test_missing_path_is_an_error(self, capsys):
        assert main(["no/such/dir"]) == 1
        assert "no such file" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
            assert rule_id in out


class TestJsonOutput:
    def test_json_is_parseable_and_complete(self, capsys):
        code = main(
            ["--format", "json", os.path.join(FIXTURES, "bad_determinism.py")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert payload["errors"] == []
        finding = payload["findings"][0]
        assert set(finding) == {
            "rule_id",
            "rule_name",
            "path",
            "line",
            "col",
            "message",
        }


class TestSelfCheck:
    def test_src_repro_is_lint_clean(self):
        """The tree this repo ships must pass its own analyzer."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src/repro"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all clean" in proc.stdout
