"""Placement scheduler: multi-NUMA space scoring and seeded tie-breaks."""

import numpy as np
import pytest

from repro.errors import OutOfMemoryError
from repro.cluster.placement import PlacementScheduler

from tests.cluster.conftest import build_cluster, cluster_vms


def _scheduler(seed=7):
    return PlacementScheduler(np.random.default_rng(seed))


class TestScoring:
    def test_empty_host_is_admissible(self):
        cluster = build_cluster()
        host = cluster.hosts[0]
        score = _scheduler().score_host(host, num_vcpus=6, memory_pages=64)
        assert score.admissible
        assert score.space_pages >= 64
        assert score.score > 0

    def test_small_vm_needs_one_node(self):
        cluster = build_cluster()
        host = cluster.hosts[0]
        cpus_per_node = host.machine.topology.cpus_per_node
        score = _scheduler().score_host(
            host, num_vcpus=cpus_per_node, memory_pages=1
        )
        assert score.nodes_needed == 1

    def test_node_set_grows_for_large_footprints(self):
        cluster = build_cluster()
        host = cluster.hosts[0]
        free = host.free_frames_by_node()
        per_node = max(free)
        score = _scheduler().score_host(
            host, num_vcpus=1, memory_pages=per_node * 2
        )
        assert score.nodes_needed >= 2

    def test_impossible_request_not_admissible(self):
        cluster = build_cluster()
        host = cluster.hosts[0]
        total = sum(host.free_frames_by_node())
        score = _scheduler().score_host(host, num_vcpus=6, memory_pages=total + 1)
        assert not score.admissible
        assert score.score == float("-inf")


class TestChoice:
    def test_loaded_host_loses_to_empty_host(self):
        cluster = build_cluster()
        cluster.deploy(cluster_vms())
        # Host 0 got the first VM; a new placement must prefer whichever
        # host the scheduler scores higher, and both stayed admissible.
        chosen = _scheduler().choose_host(cluster.hosts, 6, 64)
        assert chosen in cluster.hosts

    def test_exclude_rules_out_the_source(self):
        cluster = build_cluster()
        chosen = _scheduler().choose_host(
            cluster.hosts, 6, 64, exclude=(0,)
        )
        assert chosen.host_id == 1

    def test_no_admissible_host_raises(self):
        cluster = build_cluster()
        total = sum(cluster.hosts[0].free_frames_by_node())
        with pytest.raises(OutOfMemoryError):
            _scheduler().choose_host(cluster.hosts, 6, total * 2)

    def test_tie_break_is_seeded(self):
        cluster = build_cluster()
        picks_a = [
            _scheduler(seed=11).choose_host(cluster.hosts, 6, 64).host_id
            for _ in range(4)
        ]
        picks_b = [
            _scheduler(seed=11).choose_host(cluster.hosts, 6, 64).host_id
            for _ in range(4)
        ]
        assert picks_a == picks_b


class TestDeployment:
    def test_two_vms_spread_over_two_hosts(self, cluster):
        populated = [
            host.host_id
            for host in cluster.hosts
            if cluster.worlds[host.host_id].runs
        ]
        assert sorted(populated) == [0, 1]

    def test_every_host_gets_a_world(self, cluster):
        assert set(cluster.worlds) == {0, 1}

    def test_deploy_twice_rejected(self, cluster):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            cluster.deploy(cluster_vms())
