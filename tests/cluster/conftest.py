"""Shared fixtures for the cluster tests: coarse, fast two-VM clusters."""

import pytest

from repro.config import SimConfig
from repro.cluster import Cluster
from repro.sim.environment import VmSpec, XenEnvironment
from repro.workloads.suite import get_app

from tests.conftest import fast_app

#: Coarse pages keep the resident set in the hundreds, so a full
#: pre-copy migration runs in well under a second.
COARSE = SimConfig(page_scale=4096)


def cluster_vms():
    """Two fast 6-vCPU VMs; the first one is the migration candidate."""
    return [
        VmSpec(app=fast_app(get_app("streamcluster"), baseline_seconds=6.0), num_vcpus=6),
        VmSpec(app=fast_app(get_app("facesim"), baseline_seconds=6.0), num_vcpus=6),
    ]


def build_cluster(num_hosts=2, config=COARSE):
    return Cluster(XenEnvironment(config=config), num_hosts)


@pytest.fixture
def cluster():
    """A deployed two-host cluster with the fast VM pair."""
    cluster = build_cluster()
    cluster.deploy(cluster_vms())
    return cluster
