"""Pre-copy live migration: protocol, re-homing, determinism, abort."""

import json

import numpy as np
import pytest

from repro.sim.engine import EpochStepper

from tests.cluster.conftest import build_cluster, cluster_vms


def _simulate(migrate_epoch=2, **knobs):
    cluster = build_cluster()
    cluster.deploy(cluster_vms())
    cluster.migrate_at(migrate_epoch, "streamcluster", **knobs)
    results = cluster.simulate()
    return cluster, {result.app: result for result in results}


def _drive_to_cutover(cluster, **knobs):
    """Run the protocol by hand (no engine epochs) until it completes."""
    cluster.migrate_at(0, "streamcluster", **knobs)
    for host_id in sorted(cluster.worlds):
        stepper = EpochStepper(cluster.worlds[host_id])
        stepper.initialize()
        cluster.steppers[host_id] = stepper
    (plan,) = cluster._plans
    cluster._launch(plan)
    (migration,) = cluster.migrations
    epoch = 0
    while migration.phase == "precopy":
        migration.on_epoch(epoch, 1.0)
        epoch += 1
    if migration.phase == "complete":
        cluster._transfer_run(migration)
    return migration


class TestEndToEnd:
    def test_migrated_run_finishes_on_destination(self):
        cluster, by_app = _simulate()
        result = by_app["streamcluster"]
        assert result.environment == "xen+@h1"
        assert result.stats["migration.rounds"] >= 1
        assert result.stats["migration.pages_copied"] > 0
        assert result.stats["migration.downtime_seconds"] > 0

    def test_untouched_run_reports_no_migration(self):
        _, by_app = _simulate()
        stats = by_app["facesim"].stats
        assert not any(key.startswith("migration.") for key in stats)

    def test_round_budget_forces_cutover(self):
        _, by_app = _simulate(
            dirty_threshold=0, round_budget=3, writes_per_epoch=512
        )
        stats = by_app["streamcluster"].stats
        assert stats["migration.rounds"] == 3
        assert stats["migration.converged"] == 0.0

    def test_both_runs_complete(self):
        _, by_app = _simulate()
        assert set(by_app) == {"streamcluster", "facesim"}
        for result in by_app.values():
            assert result.completion_seconds > 0

    def test_source_frames_freed_after_cutover(self):
        cluster, _ = _simulate()
        source = cluster.hosts[0]
        # The evacuated host holds no domUs any more (dom0 remains).
        domus = [
            d for d in source.hypervisor.domains.values() if not d.is_dom0
        ]
        assert not domus


class TestDeterminism:
    def test_two_simulations_byte_identical(self):
        def one():
            cluster = build_cluster()
            cluster.deploy(cluster_vms())
            cluster.migrate_at(2, "streamcluster")
            return [
                json.dumps(r.to_json(), sort_keys=True)
                for r in cluster.simulate()
            ]

        assert one() == one()


class TestReHoming:
    def test_placements_survive_source_destroy(self):
        """Regression: tearing the source down must not release the
        destination's freshly resynced segment placements (the source
        p2m's observer used to still point at the shared placements)."""
        cluster = build_cluster()
        cluster.deploy(cluster_vms())
        migration = _drive_to_cutover(cluster)
        assert migration.phase == "complete"
        run = migration.run
        for segment in run.segments:
            touched = segment.keys[segment.keys >= 0]
            if touched.size == 0:
                continue
            assert segment.placement.mapped_pages == touched.size

    def test_placements_match_destination_p2m(self):
        cluster = build_cluster()
        cluster.deploy(cluster_vms())
        migration = _drive_to_cutover(cluster)
        run = migration.run
        domain = run.context.domain
        assert domain is migration.dest_domain
        for segment in run.segments:
            idx = np.nonzero(segment.keys >= 0)[0]
            if idx.size == 0:
                continue
            nodes = domain.p2m.nodes_of(segment.keys[idx])
            assert (nodes >= 0).all()
            for i, node in zip(idx.tolist(), nodes.tolist()):
                assert segment.placement.node_of(i) == node

    def test_context_bound_to_destination_host(self):
        cluster = build_cluster()
        cluster.deploy(cluster_vms())
        migration = _drive_to_cutover(cluster)
        context = migration.run.context
        dest = cluster.hosts[1]
        assert context.hypervisor is dest.hypervisor
        assert context.domain.domain_id in dest.hypervisor.domains
        # Thread pins were re-derived from the destination vCPUs.
        for thread in migration.run.threads:
            assert thread.node == dest.hypervisor.vcpu_node(
                context.domain, thread.tid
            )

    def test_fault_accounting_reset_on_rebind(self):
        """Regression: the context must not carry the source hypervisor's
        fault-seconds watermark onto the destination (it would swallow
        or double-charge the first destination epoch)."""
        cluster = build_cluster()
        cluster.deploy(cluster_vms())
        migration = _drive_to_cutover(cluster)
        context = migration.run.context
        expected = context.hypervisor.fault_handler.stats.seconds_spent
        assert context._hv_fault_seconds_seen == expected


class TestAbort:
    def test_run_finishing_first_aborts_migration(self):
        cluster, by_app = _simulate(
            migrate_epoch=4,
            dirty_threshold=0,
            round_budget=10**6,
            writes_per_epoch=512,
        )
        (migration,) = cluster.migrations
        assert migration.phase == "aborted"
        result = by_app["streamcluster"]
        assert result.environment == "xen+@h0"
        # An abandoned protocol contributes no migration stats.
        assert not any(key.startswith("migration.") for key in result.stats)
        # The half-built destination domain was torn down: host 1 keeps
        # only dom0 and its own facesim domU.
        assert migration.dest_domain is None
        domus = [
            d
            for d in cluster.hosts[1].hypervisor.domains.values()
            if not d.is_dom0
        ]
        assert len(domus) == 1

    def test_abort_releases_protections(self):
        cluster = build_cluster()
        cluster.deploy(cluster_vms())
        cluster.migrate_at(0, "streamcluster")
        for host_id in sorted(cluster.worlds):
            stepper = EpochStepper(cluster.worlds[host_id])
            stepper.initialize()
            cluster.steppers[host_id] = stepper
        (plan,) = cluster._plans
        cluster._launch(plan)
        (migration,) = cluster.migrations
        migration.on_epoch(0, 1.0)
        if migration.phase == "precopy":
            migration.abort()
        source = cluster.worlds[0].runs[0].context.domain
        resident = source.p2m.valid_gpfns()
        assert bool(source.p2m.writable_mask(resident).all())


class TestKnobValidation:
    def test_migrating_unknown_app_fails_at_launch(self):
        from repro.errors import ExperimentError

        cluster = build_cluster()
        cluster.deploy(cluster_vms())
        cluster.migrate_at(0, "no-such-app")
        with pytest.raises(ExperimentError):
            cluster.simulate()

    def test_pinned_destination_must_differ_from_source(self):
        from repro.errors import ExperimentError

        cluster = build_cluster()
        cluster.deploy(cluster_vms())
        cluster.migrate_at(0, "streamcluster", dest_host_id=0)
        with pytest.raises(ExperimentError):
            cluster.simulate()
