"""Property: pre-copy migration equals a naive stop-and-copy oracle.

The oracle is the trivial protocol — pause the source, copy *every*
resident page once, resume on the destination. Whatever interleaving of
copy rounds, dirty faults and re-copies the pre-copy protocol goes
through, the destination it hands over must hold byte-for-byte the
guest memory the source held at pause time, which is exactly what the
oracle produces. The suite-wide runtime sanitizer stays armed, so every
protect/unprotect of the protocol is policed while the property runs.
"""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.sim.engine import EpochStepper
from repro.sim.environment import XenEnvironment

from tests.cluster.conftest import COARSE, cluster_vms


class SnapshottingEnvironment(XenEnvironment):
    """Capture the stop-and-copy oracle at the instant of cutover.

    ``complete_migration`` runs with the source paused and the final
    dirty pages already copied — the exact moment the naive protocol
    would copy everything. Snapshotting the source here *is* running
    the oracle.
    """

    def complete_migration(self, run, dest_host, domain):
        source = run.context.domain
        self.oracle_valid = source.p2m.valid_gpfns()
        self.oracle_image = source.image_snapshot()
        super().complete_migration(run, dest_host, domain)


def _migrate(seed, **knobs):
    config = COARSE.__class__(**{**COARSE.result_fields(), "rng_seed": seed})
    env = SnapshottingEnvironment(config=config)
    cluster = Cluster(env, 2)
    cluster.deploy(cluster_vms())
    cluster.migrate_at(0, "streamcluster", **knobs)
    for host_id in sorted(cluster.worlds):
        stepper = EpochStepper(cluster.worlds[host_id])
        stepper.initialize()
        cluster.steppers[host_id] = stepper
    (plan,) = cluster._plans
    cluster._launch(plan)
    (migration,) = cluster.migrations
    epoch = 0
    while migration.phase == "precopy":
        migration.on_epoch(epoch, 1.0)
        epoch += 1
    assert migration.phase == "complete"
    return env, migration


@pytest.mark.parametrize("seed", [1, 42, 1337])
@pytest.mark.parametrize(
    "knobs",
    [
        {},
        {"dirty_threshold": 0, "round_budget": 4, "writes_per_epoch": 512},
        {"writes_per_epoch": 32, "round_budget": 2},
    ],
)
def test_destination_matches_stop_and_copy_oracle(seed, knobs):
    env, migration = _migrate(seed, **knobs)
    dest = migration.dest_domain
    dest_image = dest.image_snapshot()
    oracle_valid = env.oracle_valid
    oracle_image = env.oracle_image

    # Guest memory: every page the source held at pause time reads the
    # same stamps on the destination, byte for byte.
    size = min(dest_image.size, oracle_image.size)
    valid = oracle_valid[oracle_valid < size]
    assert valid.size == oracle_valid.size
    assert np.array_equal(dest_image[valid], oracle_image[valid])

    # P2M: each of those pages is a live destination mapping.
    assert (dest.p2m.mfns_if_valid(valid) >= 0).all()


@pytest.mark.parametrize("seed", [7, 99])
def test_dirty_pages_carry_final_writes(seed):
    """The stamps the guest wrote *during* the copy reach the destination
    (the last write wins, as in the oracle)."""
    env, migration = _migrate(
        seed, dirty_threshold=0, round_budget=3, writes_per_epoch=256
    )
    assert migration.stats.dirty_faults > 0
    dest = migration.dest_domain
    dest_image = dest.image_snapshot()
    # Stamps are unique and increasing; the highest stamp issued must be
    # present on the destination (its page was dirty at cutover).
    issued = migration._next_stamp - 1
    assert issued >= 1
    assert dest_image.max() == env.oracle_image.max()
