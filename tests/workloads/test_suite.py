"""The 29-application suite and segment resolution."""

import pytest

from repro.config import SimConfig
from repro.errors import WorkloadError
from repro.workloads.app import AppSpec, build_segments
from repro.workloads.suite import (
    APP_NAMES,
    APPLICATIONS,
    WRMEM_CHURN,
    apps_in_class,
    get_app,
)


class TestSuite:
    def test_exactly_29_applications(self):
        assert len(APPLICATIONS) == 29

    def test_unique_names(self):
        assert len(set(APP_NAMES)) == 29

    def test_suite_membership(self):
        by_suite = {}
        for app in APPLICATIONS:
            by_suite.setdefault(app.suite, []).append(app.name)
        assert len(by_suite["parsec"]) == 6
        assert len(by_suite["npb"]) == 9
        assert len(by_suite["mosbench"]) == 7
        assert len(by_suite["xstream"]) == 5
        assert len(by_suite["ycsb"]) == 2

    def test_class_counts_match_table1(self):
        """Section 3.5.2: 11 low, 5 moderate, 13 high."""
        assert len(apps_in_class("low")) == 11
        assert len(apps_in_class("moderate")) == 5
        assert len(apps_in_class("high")) == 13

    def test_lookup(self):
        assert get_app("cg.C").suite == "npb"
        with pytest.raises(WorkloadError):
            get_app("doom")

    def test_table2_spot_checks(self):
        dc = get_app("dc.B")
        assert dc.footprint_mb == 39273
        assert dc.disk_mb_s == 175
        mc = get_app("memcached")
        assert mc.ctx_switches_k_s == pytest.approx(127.1)

    def test_table1_spot_checks(self):
        facesim = get_app("facesim")
        assert facesim.ft_imbalance == pytest.approx(2.53)
        assert facesim.r4k_interconnect == pytest.approx(0.16)

    def test_wrmem_churn_is_one_per_15us(self):
        assert get_app("wrmem").churn_per_thread_s == pytest.approx(1 / 15e-6)
        assert WRMEM_CHURN == pytest.approx(66_666.67, rel=1e-3)

    def test_every_app_has_best_policies(self):
        for app in APPLICATIONS:
            assert app.best_linux
            assert app.best_xen


class TestDerivedParameters:
    def test_master_share_tracks_class(self):
        for app in apps_in_class("high"):
            assert app.master_share > 0.45
        for app in apps_in_class("low"):
            assert app.master_share < 0.35

    def test_hot_weight_in_unit_interval(self):
        for app in APPLICATIONS:
            assert 0.0 <= app.hot_weight <= 1.0

    def test_segments_cover_and_weight_one(self):
        for app in APPLICATIONS:
            specs = app.segments()
            assert sum(s.fraction for s in specs) == pytest.approx(1.0)
            assert sum(s.weight for s in specs) == pytest.approx(1.0)


class TestBuildSegments:
    def test_private_split_per_thread(self):
        config = SimConfig()
        segments = build_segments(get_app("facesim"), 4, config)
        private = [s for s in segments if s.owner_tid is not None]
        shared = [s for s in segments if s.owner_tid is None]
        assert len(private) == 4
        assert len(shared) == 1
        assert {s.owner_tid for s in private} == {0, 1, 2, 3}

    def test_every_segment_nonempty(self):
        config = SimConfig()
        for app in APPLICATIONS:
            for segment in build_segments(app, 48, config):
                assert segment.num_pages >= 1

    def test_total_roughly_footprint(self):
        config = SimConfig()
        app = get_app("wc")
        total = sum(s.num_pages for s in build_segments(app, 48, config))
        expected = config.pages_for_bytes(app.footprint_bytes)
        assert total == pytest.approx(expected, rel=0.05)

    def test_zero_threads_rejected(self):
        with pytest.raises(WorkloadError):
            build_segments(get_app("wc"), 0, SimConfig())


class TestValidation:
    def test_bad_class_rejected(self):
        with pytest.raises(WorkloadError):
            AppSpec(
                name="x", suite="s", footprint_mb=1, disk_mb_s=0,
                ctx_switches_k_s=0, ft_imbalance=0, r4k_imbalance=0,
                ft_interconnect=0, r4k_interconnect=0, imbalance_class="huge",
            )

    def test_bad_footprint_rejected(self):
        with pytest.raises(WorkloadError):
            AppSpec(
                name="x", suite="s", footprint_mb=0, disk_mb_s=0,
                ctx_switches_k_s=0, ft_imbalance=0, r4k_imbalance=0,
                ft_interconnect=0, r4k_interconnect=0, imbalance_class="low",
            )
