"""Pattern calibration arithmetic."""

import math

import pytest

from repro.workloads.patterns import (
    hot_weight_for_ratio,
    imbalance_for_master_share,
    master_share_for_imbalance,
)


class TestMasterShareInversion:
    def test_roundtrip(self):
        for share in (0.0, 0.1, 0.5, 0.9):
            imb = imbalance_for_master_share(share)
            assert master_share_for_imbalance(imb) == pytest.approx(share)

    def test_full_concentration(self):
        """All accesses on one of 8 nodes: RSD = sqrt(7) ~ 265%."""
        assert imbalance_for_master_share(1.0) == pytest.approx(math.sqrt(7))

    def test_facesim_calibration(self):
        """Table 1: facesim 253% -> ~96% of accesses master-allocated."""
        assert master_share_for_imbalance(2.53) == pytest.approx(0.956, abs=0.01)

    def test_cap(self):
        assert master_share_for_imbalance(10.0) == 0.97

    def test_validation(self):
        with pytest.raises(ValueError):
            imbalance_for_master_share(1.5)
        with pytest.raises(ValueError):
            master_share_for_imbalance(-0.1)


class TestHotWeight:
    def test_ratio(self):
        assert hot_weight_for_ratio(0.27, 2.53) == pytest.approx(0.107, abs=0.01)

    def test_swaptions_clamps_to_one(self):
        """180% under round-4K vs 175% under first-touch: one page rules."""
        assert hot_weight_for_ratio(1.80, 1.75) == 1.0

    def test_zero_ft_imbalance(self):
        assert hot_weight_for_ratio(0.5, 0.0) == 0.0
