"""Run store behaviour: counters, persistence, invalidation."""

import json

import pytest

from repro.runstore import DiskRunStore, MemoryRunStore, open_store
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest, VmRequest

KEY = "a" * 64
OTHER = "b" * 64


def _results():
    return [
        RunResult(
            app="swaptions",
            environment="linux",
            policy="First-Touch",
            completion_seconds=12.5,
            epochs=4,
            stats={"faults": 7.0},
        )
    ]


def _request():
    return RunRequest(
        environment="linux", vms=(VmRequest(app="swaptions", policy="first-touch"),)
    )


class TestMemoryStore:
    def test_miss_then_hit_counters(self):
        store = MemoryRunStore()
        assert store.get(KEY) is None
        store.put(KEY, _results())
        assert store.get(KEY) is not None
        stats = store.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.entries == 1

    def test_contains_does_not_count(self):
        store = MemoryRunStore()
        assert KEY not in store
        store.put(KEY, _results())
        assert KEY in store
        assert store.stats().hits == 0
        assert store.stats().misses == 0

    def test_clear_keeps_dict_aliases_alive(self):
        # experiments.common._CACHE aliases this dict; clear() must empty
        # it in place, never rebind it.
        store = MemoryRunStore()
        alias = store.data
        store.put(KEY, _results())
        store.clear()
        assert alias is store.data
        assert len(alias) == 0
        assert store.stats().hits == 0

    def test_summary_mentions_counters(self):
        store = MemoryRunStore()
        store.get(KEY)
        text = store.stats().summary()
        assert "hits" in text
        assert "misses" in text


class TestDiskStore:
    def test_persists_across_instances(self, tmp_path):
        store = DiskRunStore(tmp_path / "rs")
        store.put(KEY, _results(), request=_request())
        again = DiskRunStore(tmp_path / "rs")
        loaded = again.get(KEY)
        assert loaded == _results()
        assert again.stats().hits == 1

    def test_engine_version_bump_purges(self, tmp_path):
        root = tmp_path / "rs"
        store = DiskRunStore(root)
        store.put(KEY, _results())
        store.put(OTHER, _results())
        (root / "engine_version").write_text("0\n")
        fresh = DiskRunStore(root)
        assert fresh.invalidated_entries() == 2
        assert len(fresh) == 0
        assert fresh.get(KEY) is None

    def test_same_version_keeps_entries(self, tmp_path):
        root = tmp_path / "rs"
        DiskRunStore(root).put(KEY, _results())
        fresh = DiskRunStore(root)
        assert fresh.invalidated_entries() == 0
        assert len(fresh) == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        root = tmp_path / "rs"
        store = DiskRunStore(root)
        (root / f"{KEY}.json").write_text("{not json")
        assert store.get(KEY) is None
        assert not (root / f"{KEY}.json").exists()

    def test_stale_entry_version_is_a_miss(self, tmp_path):
        root = tmp_path / "rs"
        store = DiskRunStore(root)
        entry = {"engine_version": "0", "request": None, "results": []}
        (root / f"{KEY}.json").write_text(json.dumps(entry))
        assert store.get(KEY) is None

    def test_entry_records_request_payload(self, tmp_path):
        root = tmp_path / "rs"
        store = DiskRunStore(root)
        request = _request()
        store.put(request.cache_key(), _results(), request=request)
        payload = json.loads((root / f"{request.cache_key()}.json").read_text())
        assert payload["request"] == request.to_json()


class TestDiskStoreCrashSafety:
    """Torn/concurrent writes and crash litter (regression tests).

    The original ``_save`` staged every write of one key at the shared
    name ``<key>.json.tmp``: a concurrent save renamed — and thereby
    destroyed — the other writer's half-written temp file, and a temp
    file orphaned by a crash sat in the store directory forever.
    """

    def test_concurrent_saves_of_same_key(self, tmp_path, monkeypatch):
        import os as os_module

        store = DiskRunStore(tmp_path / "rs")
        real_replace = os_module.replace
        reentered = False

        def racing_replace(src, dst, **kwargs):
            # The moment the first save reaches its rename, a second
            # save of the same key runs start to finish — exactly the
            # interleaving two processes produce. With a shared temp
            # name the second save renames the first writer's file away
            # and the outer rename dies with FileNotFoundError.
            nonlocal reentered
            if not reentered:
                reentered = True
                store.put(KEY, _results())
            return real_replace(src, dst, **kwargs)

        monkeypatch.setattr("repro.runstore.disk.os.replace", racing_replace)
        store.put(KEY, _results())
        monkeypatch.undo()
        assert reentered
        loaded = store.get(KEY)
        assert loaded == _results()
        assert list((tmp_path / "rs").glob("*.json.tmp")) == []

    def test_save_leaves_no_temp_files(self, tmp_path):
        root = tmp_path / "rs"
        store = DiskRunStore(root)
        store.put(KEY, _results())
        store.put(OTHER, _results())
        assert list(root.glob("*.json.tmp")) == []
        assert len(store) == 2

    def test_stale_tmp_swept_on_open(self, tmp_path):
        root = tmp_path / "rs"
        DiskRunStore(root).put(KEY, _results())
        litter = root / f"{OTHER}.12345.json.tmp"
        litter.write_text("half-written entry from a crashed writer")
        store = DiskRunStore(root)
        assert not litter.exists()
        assert store.get(KEY) is not None  # real entries untouched

    def test_stale_tmp_swept_on_clear(self, tmp_path):
        root = tmp_path / "rs"
        store = DiskRunStore(root)
        store.put(KEY, _results())
        litter = root / f"{KEY}.999.json.tmp"
        litter.write_text("crash litter")
        store.clear()
        assert not litter.exists()
        assert len(store) == 0


class TestVersionCheckConcurrency:
    """Engine-version bookkeeping under concurrency (regression tests).

    The original ``_check_engine_version`` wrote the version file with a
    bare ``write_text`` (a crash could leave a truncated file that purges
    a current store on the next open) and purged without any
    inter-process coordination: two processes opening one stale store
    concurrently purged twice, the slower purge deleting entries the
    faster opener had already re-saved.
    """

    def test_version_file_written_atomically(self, tmp_path, monkeypatch):
        import os as os_module

        replaced = []
        real_replace = os_module.replace

        def recording_replace(src, dst, **kwargs):
            replaced.append(str(dst))
            return real_replace(src, dst, **kwargs)

        monkeypatch.setattr("repro.runstore.disk.os.replace", recording_replace)
        root = tmp_path / "rs"
        DiskRunStore(root)
        assert str(root / "engine_version") in replaced
        assert (root / "engine_version").read_text().strip() != ""

    def test_second_stale_opener_skips_the_purge(self, tmp_path, monkeypatch):
        root = tmp_path / "rs"
        DiskRunStore(root).put(KEY, _results())
        (root / "engine_version").write_text("0\n")
        # Process A migrates the store (purge + version rewrite) and
        # saves a fresh entry.
        first = DiskRunStore(root)
        assert first.invalidated_entries() == 1
        first.put(KEY, _results())
        # Process B read the stale version *before* A migrated; by the
        # time B holds the purge lock the version file is current. B
        # must re-check under the lock and leave A's fresh entry alone.
        real_read = DiskRunStore._read_version
        calls = {"n": 0}

        def stale_first_read(self):
            calls["n"] += 1
            if calls["n"] == 1:
                return "0"  # the pre-migration value B observed
            return real_read(self)

        monkeypatch.setattr(DiskRunStore, "_read_version", stale_first_read)
        second = DiskRunStore(root)
        assert calls["n"] >= 2  # re-checked under the lock
        assert second.invalidated_entries() == 0
        assert second.get(KEY) == _results()

    def test_purge_runs_under_the_version_lock(self, tmp_path, monkeypatch):
        import fcntl

        root = tmp_path / "rs"
        DiskRunStore(root).put(KEY, _results())
        (root / "engine_version").write_text("0\n")
        locked_during_purge = []
        real_purge = DiskRunStore._purge_stale_locked

        def checking_purge(self):
            # flock is re-entrant within one process only in the sense
            # that a second LOCK_EX on a *new* fd would block; probe with
            # a non-blocking attempt instead.
            probe = open(root / "engine_version.lock", "a")
            try:
                fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                locked_during_purge.append(True)
            else:
                fcntl.flock(probe.fileno(), fcntl.LOCK_UN)
                locked_during_purge.append(False)
            finally:
                probe.close()
            return real_purge(self)

        monkeypatch.setattr(DiskRunStore, "_purge_stale_locked", checking_purge)
        DiskRunStore(root)
        assert locked_during_purge == [True]


class TestTransientReadErrors:
    """Satellite regression: only provably-bad entries may be discarded.

    The original ``_load`` treated *any* ``OSError`` as a corrupt entry
    and unlinked the file — so a transient EACCES/EMFILE (routine under
    the serve layer's fd pressure) silently destroyed a perfectly good
    cached run.
    """

    def test_transient_read_error_is_miss_without_unlink(
        self, tmp_path, monkeypatch
    ):
        from pathlib import Path

        root = tmp_path / "rs"
        store = DiskRunStore(root)
        store.put(KEY, _results())
        entry = root / f"{KEY}.json"
        real_read_text = Path.read_text
        flaked = {"n": 0}

        def flaky_read_text(self, *args, **kwargs):
            if self.name == entry.name and flaked["n"] == 0:
                flaked["n"] += 1
                raise PermissionError(13, "transient denial")
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", flaky_read_text)
        assert store.get(KEY) is None  # the failed read is a miss...
        monkeypatch.undo()
        assert entry.exists()  # ...but the entry survives
        assert store.get(KEY) == _results()  # and the next read succeeds

    def test_undecodable_entry_still_discarded(self, tmp_path):
        root = tmp_path / "rs"
        store = DiskRunStore(root)
        (root / f"{KEY}.json").write_text('{"engine_version": 3}')  # wrong shape
        assert store.get(KEY) is None
        assert not (root / f"{KEY}.json").exists()


class TestOpenStore:
    @pytest.mark.parametrize("spec", [None, "", "memory"])
    def test_memory_specs(self, spec):
        assert isinstance(open_store(spec), MemoryRunStore)

    def test_path_spec(self, tmp_path):
        store = open_store(str(tmp_path / "rs"))
        assert isinstance(store, DiskRunStore)
        assert (tmp_path / "rs").is_dir()
