"""Sharded store: layout, invalidation, and multi-process stress.

The stress tests fork real writer processes (the scenario the sharded
layout exists for: the serving layer's worker pool all saving into one
store). Worker functions live at module level so the pool can address
them.
"""

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import ReproError
from repro.runstore import (
    DiskRunStore,
    MemoryRunStore,
    ShardedDiskRunStore,
    open_store,
)
from repro.sim.engine import ENGINE_VERSION
from repro.sim.results import RunResult

WRITERS = 8
ENTRIES_PER_WRITER = 25
SHARED_KEY = hashlib.sha256(b"shared").hexdigest()


def _results(marker=1.0):
    return [
        RunResult(
            app="swaptions",
            environment="linux",
            policy="First-Touch",
            completion_seconds=marker,
            epochs=4,
            stats={"faults": 7.0},
        )
    ]


def _key(writer, index):
    return hashlib.sha256(f"{writer}-{index}".encode()).hexdigest()


class TestLayout:
    def test_entries_land_in_prefix_shards(self, tmp_path):
        store = ShardedDiskRunStore(tmp_path / "rs")
        key = _key(0, 0)
        store.put(key, _results())
        assert (tmp_path / "rs" / key[:2] / f"{key}.json").is_file()
        assert store.get(key) == _results()

    def test_non_hex_keys_use_the_overflow_shard(self, tmp_path):
        store = ShardedDiskRunStore(tmp_path / "rs")
        store.put("not-a-hex-key", _results())
        assert (tmp_path / "rs" / "__" / "not-a-hex-key.json").is_file()
        assert store.get("not-a-hex-key") == _results()

    def test_shard_width_bounds(self, tmp_path):
        with pytest.raises(ReproError):
            ShardedDiskRunStore(tmp_path / "rs", shard_width=0)
        with pytest.raises(ReproError):
            ShardedDiskRunStore(tmp_path / "rs", shard_width=5)
        assert ShardedDiskRunStore(tmp_path / "a", shard_width=1).num_shards() == 16
        assert ShardedDiskRunStore(tmp_path / "b").num_shards() == 256

    def test_len_and_clear_span_all_shards(self, tmp_path):
        store = ShardedDiskRunStore(tmp_path / "rs")
        keys = [_key(0, i) for i in range(10)]
        for key in keys:
            store.put(key, _results())
        assert len(store) == 10
        assert len({key[:2] for key in keys}) > 1  # really spans shards
        store.clear()
        assert len(store) == 0

    def test_persists_across_instances(self, tmp_path):
        key = _key(1, 1)
        ShardedDiskRunStore(tmp_path / "rs").put(key, _results())
        again = ShardedDiskRunStore(tmp_path / "rs")
        assert again.get(key) == _results()
        assert again.stats().hits == 1


class TestInvalidation:
    def test_version_bump_purges_every_shard(self, tmp_path):
        root = tmp_path / "rs"
        store = ShardedDiskRunStore(root)
        keys = [_key(2, i) for i in range(8)]
        for key in keys:
            store.put(key, _results())
        (root / "engine_version").write_text("0\n")
        fresh = ShardedDiskRunStore(root)
        assert fresh.invalidated_entries() == 8
        assert len(fresh) == 0
        for key in keys:
            assert fresh.get(key) is None

    def test_same_version_keeps_entries(self, tmp_path):
        root = tmp_path / "rs"
        key = _key(3, 0)
        ShardedDiskRunStore(root).put(key, _results())
        fresh = ShardedDiskRunStore(root)
        assert fresh.invalidated_entries() == 0
        assert len(fresh) == 1

    def test_shard_tmp_litter_survives_open_but_not_clear(self, tmp_path):
        # An opener must NOT sweep shard-level temp files: with many
        # writer processes, a staged-but-unrenamed file may belong to a
        # live writer, not a crashed one. clear() (quiescent by contract)
        # does sweep them.
        root = tmp_path / "rs"
        key = _key(4, 0)
        ShardedDiskRunStore(root).put(key, _results())
        litter = root / key[:2] / f"{key}.999.json.tmp"
        litter.write_text("staged write, maybe still in progress")
        store = ShardedDiskRunStore(root)
        assert litter.exists()  # open leaves it alone
        assert store.get(key) == _results()
        store.clear()
        assert not litter.exists()

    def test_version_tmp_litter_swept_on_open(self, tmp_path):
        root = tmp_path / "rs"
        ShardedDiskRunStore(root)
        litter = root / "engine_version.999.tmp"
        litter.write_text("half-written version file")
        ShardedDiskRunStore(root)
        assert not litter.exists()


class TestOpenStore:
    def test_sharded_prefix_spec(self, tmp_path):
        store = open_store(f"sharded:{tmp_path / 'rs'}")
        assert isinstance(store, ShardedDiskRunStore)

    def test_sharded_flag(self, tmp_path):
        assert isinstance(
            open_store(str(tmp_path / "rs"), sharded=True), ShardedDiskRunStore
        )

    def test_flag_keeps_memory_specs_in_memory(self):
        assert isinstance(open_store(None, sharded=True), MemoryRunStore)
        assert isinstance(open_store("memory", sharded=True), MemoryRunStore)

    def test_plain_spec_stays_flat(self, tmp_path):
        store = open_store(str(tmp_path / "rs"))
        assert isinstance(store, DiskRunStore)
        assert not isinstance(store, ShardedDiskRunStore)


# ----------------------------------------------------------------------
# Multi-process stress (module-level workers for the process pool)


def _stress_writer(args):
    """One writer process: distinct keys plus contended same-key saves."""
    root, writer = args
    store = ShardedDiskRunStore(root)
    for index in range(ENTRIES_PER_WRITER):
        store.put(_key(writer, index), _results(marker=float(writer)))
        # Every writer also hammers one shared key every iteration —
        # concurrent same-key renames must never tear.
        store.put(SHARED_KEY, _results(marker=float(writer)))
    return writer


def _race_opener(args):
    """Open a (possibly stale) store, then immediately write and read."""
    root, writer = args
    store = ShardedDiskRunStore(root)
    key = _key(writer, 0)
    store.put(key, _results(marker=float(writer)))
    return (writer, store.get(key) == _results(marker=float(writer)))


class TestConcurrentWriters:
    def test_stress_no_lost_or_torn_entries(self, tmp_path):
        root = str(tmp_path / "rs")
        ShardedDiskRunStore(root)  # create + write the version file once
        with ProcessPoolExecutor(max_workers=WRITERS) as pool:
            done = list(pool.map(_stress_writer, [(root, w) for w in range(WRITERS)]))
        assert sorted(done) == list(range(WRITERS))
        store = ShardedDiskRunStore(root)
        # Every distinct entry present and intact.
        assert len(store) == WRITERS * ENTRIES_PER_WRITER + 1
        for writer in range(WRITERS):
            for index in range(ENTRIES_PER_WRITER):
                loaded = store.get(_key(writer, index))
                assert loaded == _results(marker=float(writer))
        # The contended key holds one complete entry from some writer.
        shared = store.get(SHARED_KEY)
        assert shared is not None
        assert shared[0].completion_seconds in {float(w) for w in range(WRITERS)}
        # No crash litter, correct counters.
        assert list((tmp_path / "rs").glob("**/*.json.tmp")) == []
        stats = store.stats()
        assert stats.hits == WRITERS * ENTRIES_PER_WRITER + 1
        assert stats.misses == 0

    def test_concurrent_stale_openers_purge_once(self, tmp_path):
        root = str(tmp_path / "rs")
        seeded = ShardedDiskRunStore(root)
        for index in range(8):
            seeded.put(_key(99, index), _results())
        (tmp_path / "rs" / "engine_version").write_text("0\n")
        # Eight processes race to open the stale store; each one then
        # immediately saves a fresh entry. Without the purge lock a slow
        # opener's wholesale purge deletes entries a fast opener already
        # re-saved after migrating the store.
        with ProcessPoolExecutor(max_workers=WRITERS) as pool:
            outcomes = list(
                pool.map(_race_opener, [(root, w) for w in range(WRITERS)])
            )
        assert all(ok for _, ok in outcomes)
        final = ShardedDiskRunStore(root)
        assert final.invalidated_entries() == 0  # already migrated
        for writer in range(WRITERS):
            assert final.get(_key(writer, 0)) == _results(marker=float(writer))
        for index in range(8):  # the stale seed entries are gone
            assert final.get(_key(99, index)) is None
        version = (tmp_path / "rs" / "engine_version").read_text().strip()
        assert version == ENGINE_VERSION

    def test_entry_payloads_are_valid_json_after_stress(self, tmp_path):
        root = str(tmp_path / "rs")
        ShardedDiskRunStore(root)
        with ProcessPoolExecutor(max_workers=WRITERS) as pool:
            list(pool.map(_stress_writer, [(root, w) for w in range(WRITERS)]))
        store = ShardedDiskRunStore(root)
        for path in store._entry_files():
            payload = json.loads(path.read_text())
            assert payload["engine_version"] == ENGINE_VERSION
            assert isinstance(payload["results"], list)
