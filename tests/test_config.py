"""Global configuration arithmetic."""

import pytest

from repro.config import DEFAULT_CONFIG, REAL_PAGE_SIZE, SimConfig


class TestSimConfig:
    def test_page_bytes(self):
        assert SimConfig(page_scale=1).page_bytes == 4096
        assert SimConfig(page_scale=256).page_bytes == 1 << 20

    def test_pages_for_bytes_rounds(self):
        config = SimConfig(page_scale=256)
        assert config.pages_for_bytes(1 << 20) == 1
        assert config.pages_for_bytes(3.4 * (1 << 20)) == 3

    def test_pages_for_bytes_minimum_one(self):
        assert SimConfig(page_scale=256).pages_for_bytes(100) == 1

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.page_scale = 1  # type: ignore[misc]

    def test_hashable_for_memoisation(self):
        assert hash(SimConfig()) == hash(SimConfig())
        assert SimConfig() == SimConfig()
        assert SimConfig(page_scale=64) != SimConfig()

    def test_defaults(self):
        assert DEFAULT_CONFIG.page_scale == 256
        assert DEFAULT_CONFIG.epoch_seconds == 1.0
        assert DEFAULT_CONFIG.traffic_burstiness == 2.0
        assert DEFAULT_CONFIG.model_tlb is False
        assert REAL_PAGE_SIZE == 4096
