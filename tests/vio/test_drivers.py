"""The para-virtualised and passthrough disk drivers."""

import pytest

from repro.config import SimConfig
from repro.errors import ReproError
from repro.hardware.iommu import Iommu
from repro.hypervisor.domain import Domain
from repro.vio.disk import DiskModel, IoMode
from repro.vio.dma import DmaEngine
from repro.vio.drivers import ParavirtDriver, PassthroughDriver, make_driver


@pytest.fixture
def domain():
    d = Domain(domain_id=1, name="d", num_vcpus=1, memory_pages=16, home_nodes=(0,))
    for gpfn in range(16):
        d.p2m.set_entry(gpfn, 200 + gpfn)
    return d


@pytest.fixture
def dom0():
    return Domain(domain_id=0, name="dom0", num_vcpus=1, memory_pages=4, home_nodes=(0,))


class TestParavirt:
    def test_read_costs_pv_time(self, domain, dom0):
        disk = DiskModel()
        driver = ParavirtDriver(disk, dom0)
        result = driver.read(domain, 4096, block_bytes=4096)
        assert result.ok
        assert result.seconds == pytest.approx(307e-6)
        assert driver.bytes_read == 4096


class TestPassthrough:
    def test_read_into_valid_pages(self, domain):
        config = SimConfig(page_scale=1)
        driver = PassthroughDriver(DiskModel(), DmaEngine(Iommu()), config)
        result = driver.read_into(domain, [0, 1], block_bytes=4096)
        assert result.ok
        assert result.nbytes == 2 * 4096

    def test_read_into_invalid_page_reports_io_error(self, domain):
        """First-touch invalidation makes passthrough I/O fail."""
        config = SimConfig(page_scale=1)
        driver = PassthroughDriver(DiskModel(), DmaEngine(Iommu()), config)
        domain.p2m.invalidate(1)
        result = driver.read_into(domain, [0, 1], block_bytes=4096)
        assert not result.ok
        assert result.io_errors == 1
        assert driver.io_errors == 1

    def test_bulk_read_faster_than_pv(self, domain, dom0):
        disk = DiskModel()
        config = SimConfig(page_scale=1)
        pt = PassthroughDriver(disk, DmaEngine(Iommu()), config)
        pv = ParavirtDriver(disk, dom0)
        assert (
            pt.read(domain, 1 << 20).seconds < pv.read(domain, 1 << 20).seconds
        )


class TestFactory:
    def test_make_paravirt(self, dom0):
        driver = make_driver("paravirt", DiskModel(), dom0=dom0)
        assert isinstance(driver, ParavirtDriver)

    def test_make_passthrough(self):
        driver = make_driver(
            "passthrough",
            DiskModel(),
            dma=DmaEngine(Iommu()),
            config=SimConfig(),
        )
        assert isinstance(driver, PassthroughDriver)

    def test_missing_parts_rejected(self):
        with pytest.raises(ReproError):
            make_driver("paravirt", DiskModel())
        with pytest.raises(ReproError):
            make_driver("passthrough", DiskModel())
        with pytest.raises(ReproError):
            make_driver("warp", DiskModel())
