"""Disk timing model, calibrated to section 2.2."""

import pytest

from repro.vio.disk import DiskModel, IoMode, MEASURED_4K_SECONDS


@pytest.fixture
def disk():
    return DiskModel()


class TestCalibration:
    @pytest.mark.parametrize("mode", list(IoMode))
    def test_4k_read_matches_paper(self, disk, mode):
        assert disk.block_read_seconds(4096, mode) == pytest.approx(
            MEASURED_4K_SECONDS[mode]
        )

    def test_ordering(self, disk):
        n = disk.block_read_seconds(4096, IoMode.NATIVE)
        pt = disk.block_read_seconds(4096, IoMode.PASSTHROUGH)
        pv = disk.block_read_seconds(4096, IoMode.PARAVIRT)
        assert n < pt < pv


class TestAmortisation:
    def test_overhead_shrinks_with_block_size(self, disk):
        """Section 2.2: 'the larger the amount of bytes read, the lower
        the overhead caused by virtualization'."""
        overheads = []
        for size in (4096, 16 * 1024, 1 << 20, 8 << 20):
            native = disk.read_seconds(size, size, IoMode.NATIVE)
            virt = disk.read_seconds(size, size, IoMode.PASSTHROUGH)
            overheads.append(virt / native - 1.0)
        assert overheads == sorted(overheads, reverse=True)

    def test_effective_bandwidth_grows_with_block(self, disk):
        small = disk.effective_bandwidth_bytes_s(4096, IoMode.NATIVE)
        big = disk.effective_bandwidth_bytes_s(1 << 20, IoMode.NATIVE)
        assert big > 5 * small


class TestRingSplitting:
    def test_paravirt_large_blocks_pay_per_segment(self, disk):
        """Blkfront ring segments: extra segments cost pipelined slots."""
        size = 4 * disk.pv_ring_bytes
        expected = (
            disk.setup_seconds[IoMode.PARAVIRT]
            + 3 * disk.pv_pipeline_seconds
            + size / disk.bandwidth_bytes_s
        )
        assert disk.block_read_seconds(size, IoMode.PARAVIRT) == pytest.approx(
            expected
        )

    def test_paravirt_segment_cost_visible(self, disk):
        small = disk.block_read_seconds(disk.pv_ring_bytes, IoMode.PARAVIRT)
        big = disk.block_read_seconds(2 * disk.pv_ring_bytes, IoMode.PARAVIRT)
        transfer = disk.pv_ring_bytes / disk.bandwidth_bytes_s
        assert big - small == pytest.approx(
            transfer + disk.pv_pipeline_seconds
        )

    def test_passthrough_not_split(self, disk):
        big = disk.block_read_seconds(1 << 20, IoMode.PASSTHROUGH)
        expected = disk.setup_seconds[IoMode.PASSTHROUGH] + (1 << 20) / disk.bandwidth_bytes_s
        assert big == pytest.approx(expected)

    def test_pv_beats_nothing_but_stays_finite(self, disk):
        assert disk.read_seconds(1 << 30, 64 * 1024, IoMode.PARAVIRT) < 60


class TestValidation:
    def test_zero_block_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.block_read_seconds(0, IoMode.NATIVE)

    def test_zero_total_is_free(self, disk):
        assert disk.read_seconds(0, 4096, IoMode.NATIVE) == 0.0

    def test_bad_setup_rejected(self):
        with pytest.raises(ValueError):
            DiskModel(setup_seconds={mode: -1.0 for mode in IoMode})
