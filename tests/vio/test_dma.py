"""DMA through the IOMMU — including the first-touch failure mode."""

import pytest

from repro.hardware.iommu import Iommu
from repro.hypervisor.domain import Domain
from repro.vio.dma import DmaEngine


@pytest.fixture
def domain():
    d = Domain(domain_id=1, name="d", num_vcpus=1, memory_pages=16, home_nodes=(0,))
    for gpfn in range(8):
        d.p2m.set_entry(gpfn, 100 + gpfn)
    return d


class TestDma:
    def test_valid_pages_transfer(self, domain):
        engine = DmaEngine(Iommu())
        result = engine.dma_to_guest(domain, [0, 1, 2])
        assert result.ok
        assert result.completed_pages == 3

    def test_invalid_page_aborts_that_page(self, domain):
        engine = DmaEngine(Iommu())
        domain.p2m.invalidate(1)
        result = engine.dma_to_guest(domain, [0, 1, 2])
        assert not result.ok
        assert result.completed_pages == 2
        assert result.failed_gpfns == [1]

    def test_error_is_asynchronous(self, domain):
        """The guest sees the failed transfer before the hypervisor can
        react — the error sits in the IOMMU log (section 4.4.1)."""
        iommu = Iommu()
        engine = DmaEngine(iommu)
        domain.p2m.invalidate(0)
        result = engine.dma_to_guest(domain, [0])
        assert not result.ok  # the guest already failed
        events = iommu.drain_error_log()  # only now does Xen learn
        assert [e.gpfn for e in events] == [0]

    def test_stats(self, domain):
        engine = DmaEngine(Iommu())
        engine.dma_to_guest(domain, [0])
        domain.p2m.invalidate(2)
        engine.dma_to_guest(domain, [2])
        assert engine.transfers == 2
        assert engine.failed_transfers == 1
