"""Tracer mechanics, payload schema validation, and the chrome export."""

import json

from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    build_payload,
    dump_payload,
    to_chrome,
    validate_payload,
    write_trace,
)
from repro.sim.engine import ENGINE_VERSION


def _payload(events=(), metrics=()):
    return {
        "format": "repro-trace",
        "version": 1,
        "engine_version": ENGINE_VERSION,
        "events": list(events),
        "metrics": list(metrics),
    }


class TestTracer:
    def test_events_carry_seq_and_sim_time(self):
        tr = Tracer()
        tr.instant("boot", cat="engine")
        tr.set_time(2.5)
        tr.span("solve", 0.25, cat="engine", iterations=3)
        assert tr.events == [
            {"seq": 0, "ts": 0.0, "name": "boot", "cat": "engine", "args": {}},
            {
                "seq": 1, "ts": 2.5, "name": "solve", "cat": "engine",
                "args": {"iterations": 3}, "dur": 0.25,
            },
        ]

    def test_null_tracer_records_nothing(self):
        tr = NullTracer()
        assert tr.enabled is False
        tr.set_time(1.0)
        tr.instant("x")
        tr.span("y", 1.0)
        assert tr.events == ()


class TestPayload:
    def test_build_payload_is_valid(self):
        tr = Tracer()
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(2)
        tr.instant("e", cat="engine", n=1)
        payload = build_payload(tr, reg)
        assert payload["engine_version"] == ENGINE_VERSION
        assert validate_payload(payload) == []

    def test_dump_is_canonical(self):
        text = dump_payload(_payload())
        assert text.endswith("\n")
        assert " " not in text
        assert json.loads(text)["format"] == "repro-trace"

    def test_write_trace_round_trips(self, tmp_path):
        path = write_trace(tmp_path / "t.json", _payload())
        assert json.loads(path.read_text()) == _payload()


class TestValidate:
    def test_rejects_non_object(self):
        assert validate_payload([]) == ["top level is not a JSON object"]

    def test_rejects_wrong_header(self):
        problems = validate_payload({"format": "x", "version": 2})
        assert any("format" in p for p in problems)
        assert any("version" in p for p in problems)
        assert any("engine_version" in p for p in problems)

    def test_rejects_bad_events(self):
        events = [
            {"seq": 0, "ts": -1.0, "name": "a", "cat": "c", "args": {}},
            {"seq": 0, "ts": 0.0, "name": "", "cat": "c", "args": {}},
            {"seq": 2, "ts": 0.0, "name": "a", "cat": "c", "args": {"v": [1]},
             "bogus": 1},
        ]
        problems = validate_payload(_payload(events=events))
        assert any("ts is not a non-negative" in p for p in problems)
        assert any("not strictly increasing" in p for p in problems)
        assert any("name is not a non-empty string" in p for p in problems)
        assert any("unknown keys" in p for p in problems)
        assert any("not a JSON scalar" in p for p in problems)

    def test_rejects_bad_metrics(self):
        metrics = [
            {"name": "c", "kind": "counter", "labels": {}, "value": True},
            {"name": "h", "kind": "histogram", "labels": {}, "value": {}},
            {"name": "g", "kind": "dial", "labels": {}, "value": 1},
            {"name": "x"},
        ]
        problems = validate_payload(_payload(metrics=metrics))
        assert any("value is not a number" in p for p in problems)
        assert any("not a histogram summary" in p for p in problems)
        assert any("'dial' is unknown" in p for p in problems)
        assert any("keys are" in p for p in problems)


class TestChromeExport:
    def test_categories_become_named_threads(self):
        events = [
            {"seq": 0, "ts": 1.0, "name": "solve", "cat": "engine",
             "args": {}, "dur": 0.5},
            {"seq": 1, "ts": 1.0, "name": "hit", "cat": "store", "args": {}},
            {"seq": 2, "ts": 2.0, "name": "solve", "cat": "engine", "args": {}},
        ]
        chrome = to_chrome(_payload(events=events))
        trace_events = chrome["traceEvents"]
        names = [
            e["args"]["name"] for e in trace_events if e["ph"] == "M"
        ]
        assert names == ["engine", "store"]
        span = next(e for e in trace_events if e.get("ph") == "X")
        assert span["ts"] == 1.0e6 and span["dur"] == 0.5e6
        instants = [e for e in trace_events if e.get("ph") == "i"]
        assert all(e["s"] == "t" for e in instants)
        # both engine events land on the same tid, store on another
        tids = {e["cat"]: e["tid"] for e in trace_events if e["ph"] != "M"}
        assert tids["engine"] != tids["store"]
        assert chrome["otherData"]["engine_version"] == ENGINE_VERSION
