"""``python -m repro.obs`` subcommands against real and broken traces."""

import json

from repro import obs
from repro.obs.cli import main
from repro.sim.engine import ENGINE_VERSION


def _write_trace(tmp_path, name="trace.json"):
    with obs.session() as sess:
        reg, tr = sess.registry, sess.tracer
        reg.counter("faults.hypervisor", domain=1).inc(3)
        reg.counter("faults.hypervisor", domain=2).inc(4)
        reg.histogram("engine.solver_iterations").observe(8)
        tr.set_time(1.0)
        tr.span("epoch.solve", 0.5, cat="engine", iterations=8)
        tr.instant("store.hit", cat="store", key="k")
    return sess.write_trace(tmp_path / name)


class TestSummary:
    def test_aggregates_events_and_metrics(self, tmp_path, capsys):
        path = _write_trace(tmp_path)
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"engine version {ENGINE_VERSION}" in out
        assert "engine/epoch.solve" in out
        assert "store/store.hit" in out
        # the two same-named counters aggregate to one line, total 7
        assert "faults.hypervisor" in out
        assert "2 cells  total 7" in out
        assert "1 samples" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["summary", str(tmp_path / "nope.json")]) == 1
        assert "does not exist" in capsys.readouterr().err


class TestValidate:
    def test_valid_trace_passes(self, tmp_path, capsys):
        path = _write_trace(tmp_path)
        assert main(["validate", str(path)]) == 0
        assert "valid trace (2 events, 3 metric cells)" in capsys.readouterr().out

    def test_broken_trace_fails_with_problems(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"format": "repro-trace", "version": 99}))
        assert main(["validate", str(path)]) == 1
        assert "invalid:" in capsys.readouterr().err

    def test_unreadable_json_fails(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{")
        assert main(["validate", str(path)]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestExport:
    def test_chrome_export_writes_default_path(self, tmp_path, capsys):
        path = _write_trace(tmp_path)
        assert main(["export", "--format", "chrome", str(path)]) == 0
        out_path = tmp_path / "trace.chrome.json"
        assert "wrote" in capsys.readouterr().out
        chrome = json.loads(out_path.read_text())
        phases = {e["ph"] for e in chrome["traceEvents"]}
        assert {"M", "X", "i"} <= phases

    def test_explicit_output_path(self, tmp_path):
        path = _write_trace(tmp_path)
        target = tmp_path / "out.json"
        assert main(["export", str(path), "-o", str(target)]) == 0
        assert json.loads(target.read_text())["displayTimeUnit"] == "ms"

    def test_invalid_trace_not_exported(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        assert main(["export", str(path)]) == 1
        assert "not a valid trace" in capsys.readouterr().err
        assert not (tmp_path / "bad.chrome.json").exists()
