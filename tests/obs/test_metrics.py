"""Metric cells and the registry roster."""

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import MetricsRegistry


class TestCells:
    def test_counter_counts(self):
        reg = MetricsRegistry()
        cell = reg.counter("c", unit="pages")
        cell.inc()
        cell.inc(41)
        assert cell.value == 42
        assert cell.snapshot() == {
            "name": "c",
            "kind": "counter",
            "labels": {"unit": "pages"},
            "value": 42,
        }

    def test_counter_float_start(self):
        cell = MetricsRegistry().counter("seconds", value=0.0)
        cell.value += 0.5
        assert cell.value == 0.5

    def test_gauge_last_write_wins(self):
        cell = MetricsRegistry().gauge("g")
        cell.set(3)
        cell.set(1)
        assert cell.value == 1
        assert cell.snapshot()["kind"] == "gauge"

    def test_histogram_moments(self):
        cell = MetricsRegistry().histogram("h")
        assert cell.snapshot()["value"] == {
            "count": 0, "total": 0.0, "min": None, "max": None,
        }
        for sample in (3, 1, 2):
            cell.observe(sample)
        assert cell.count == 3
        assert cell.total == 6.0
        assert (cell.min, cell.max) == (1.0, 3.0)
        assert cell.mean == 2.0

    def test_histogram_mean_of_empty_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestRegistry:
    def test_enabled_registry_retains_in_creation_order(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("a")
        reg.gauge("b")
        reg.histogram("c")
        assert len(reg) == 3
        assert [cell["name"] for cell in reg.snapshot()] == ["a", "b", "c"]

    def test_duplicate_names_keep_one_entry_per_cell(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("faults.hypervisor").inc(2)
        reg.counter("faults.hypervisor").inc(3)
        values = [c["value"] for c in reg.snapshot()]
        assert values == [2, 3]

    def test_disabled_registry_cells_still_count(self):
        # The no-op recorder: cells work identically, nothing is kept.
        reg = MetricsRegistry(enabled=False)
        cell = reg.counter("c")
        cell.inc(7)
        assert cell.value == 7
        assert len(reg) == 0
        assert reg.snapshot() == []


class TestSessionAccessors:
    def test_no_session_hands_out_disabled_registry(self):
        assert not obs.enabled()
        assert obs.active() is None
        assert obs.registry().enabled is False
        assert obs.tracer().enabled is False

    def test_session_swaps_in_live_registry_and_tracer(self):
        with obs.session() as sess:
            assert obs.enabled()
            assert obs.active() is sess
            assert obs.registry() is sess.registry
            assert obs.tracer() is sess.tracer
            assert obs.registry().enabled
        assert not obs.enabled()

    def test_nested_sessions_rejected(self):
        with obs.session():
            with pytest.raises(ObsError, match="already active"):
                with obs.session():
                    pass
        # the failed nesting must not have torn down the outer cleanup
        assert not obs.enabled()
