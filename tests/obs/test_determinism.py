"""The observability determinism contract, end to end.

Two executions of the same ``RunRequest`` must emit byte-identical trace
files, and collecting must not perturb the simulation: results with a
session active equal results without one, and the per-result metrics
snapshot agrees with the legacy counter attributes it mirrors.
"""

from repro import obs
from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.runner.exec import execute_request
from repro.sim.engine import run_world
from repro.sim.environment import VmSpec, XenEnvironment
from repro.sim.runspec import RunRequest, VmRequest
from repro.workloads.suite import get_app

from tests.conftest import fast_app


def _request():
    return RunRequest(
        environment="xen",
        vms=(VmRequest(app="streamcluster", policy="first-touch", carrefour=True),),
        features="Xen+",
        config=SimConfig(),
    )


def _trace_of(request):
    with obs.session() as sess:
        results = execute_request(request)
    return results, obs.dump_payload(sess.payload())


class TestByteIdenticalTraces:
    def test_same_request_same_bytes(self, tmp_path):
        request = _request()
        results_a, text_a = _trace_of(request)
        results_b, text_b = _trace_of(request)
        assert results_a == results_b
        assert text_a == text_b
        # and the file write is the same canonical form
        with obs.session() as sess:
            execute_request(request)
        path = sess.write_trace(tmp_path / "t.json")
        assert path.read_text() == text_a

    def test_trace_is_schema_valid_and_nonempty(self):
        with obs.session() as sess:
            execute_request(_request())
            payload = sess.payload()
        assert obs.validate_payload(payload) == []
        cats = {event["cat"] for event in payload["events"]}
        assert {"engine", "hypervisor", "policy"} <= cats
        names = {event["name"] for event in payload["events"]}
        assert {"epoch.solve", "run.commit", "run.result"} <= names
        assert any(m["name"] == "engine.solver_iterations" for m in payload["metrics"])

    def test_timestamps_are_simulated_seconds(self):
        with obs.session() as sess:
            results = execute_request(_request())
            payload = sess.payload()
        horizon = max(r.completion_seconds for r in results)
        ts = [event["ts"] for event in payload["events"]]
        assert ts == sorted(ts)  # the engine's epoch clock only advances
        assert all(0.0 <= t <= horizon + 1.0 for t in ts)


class TestCollectionDoesNotPerturb:
    def test_results_equal_with_and_without_session(self):
        request = _request()
        plain = execute_request(request)
        with obs.session():
            observed = execute_request(request)
        assert observed == plain

    def test_metrics_snapshot_attached_even_without_session(self):
        result = execute_request(_request())[0]
        assert result.metrics["faults.hypervisor"] > 0
        assert result.metrics["queue.flushes"] > 0

    def test_metrics_excluded_from_equality_and_json(self):
        result = execute_request(_request())[0]
        stripped = type(result).from_json(result.to_json())
        assert "metrics" not in result.to_json()
        assert stripped.metrics == {}
        assert stripped == result


class TestLegacyCounterParity:
    def test_snapshot_matches_live_context_counters(self):
        env = XenEnvironment()
        app = fast_app(get_app("streamcluster"))
        policy = PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True)
        with obs.session() as sess:
            # setup inside the session so the components' cells are
            # retained by the live registry
            world = env.setup([VmSpec(app=app, policy=policy)])
            results = run_world(world)
            context = world.runs[0].context
            snap = results[0].metrics
            assert snap["faults.hypervisor"] == float(
                context.hypervisor.fault_handler.stats.hypervisor_faults
            )
            assert snap["p2m.migrations"] == float(context.domain.p2m.migrations)
            assert snap["queue.flushed_events"] == float(
                context.patch.queue.stats.flushed_events
            )
            engine = context.domain.numa_policy.engine
            assert snap["carrefour.iterations"] == float(len(engine.history))
            assert snap["carrefour.applied"] == float(engine.system.total_applied)
            # the registry saw the same cells the views mutate
            by_name = {}
            for metric in sess.registry.snapshot():
                if not isinstance(metric["value"], dict):
                    by_name[metric["name"]] = (
                        by_name.get(metric["name"], 0) + metric["value"]
                    )
            assert by_name["faults.hypervisor"] == snap["faults.hypervisor"]
            assert by_name["carrefour.applied"] == snap["carrefour.applied"]
