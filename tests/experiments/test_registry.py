"""Scenario registry, cross-figure reuse, and the pipeline CLI."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import fig2, fig5, fig6, fig7, fig10, registry
from repro.experiments.__main__ import main
from repro.runner import Runner

SUBSET = ["swaptions", "bodytrack", "ep.D"]


class TestRegistry:
    def test_load_all_registers_every_scenario(self):
        registry.load_all()
        names = registry.scenario_names()
        assert list(names) == list(registry.SCENARIO_MODULES)

    def test_alias_io_resolves_to_io_micro(self):
        assert registry.get_scenario("io").name == "io_micro"

    def test_unknown_scenario_raises(self):
        with pytest.raises(ExperimentError):
            registry.get_scenario("fig99")

    def test_every_scenario_declares_runs_and_assembles(self):
        registry.load_all()
        for scenario in registry.all_scenarios():
            assert callable(scenario.required_runs)
            assert callable(scenario.assemble)
            assert callable(scenario.run)


class TestCrossFigureReuse:
    def test_fig6_includes_every_fig2_run(self):
        fig2_keys = {r.cache_key() for r in fig2.required_runs(SUBSET)}
        fig6_keys = {r.cache_key() for r in fig6.required_runs(SUBSET)}
        assert fig2_keys <= fig6_keys
        assert fig2.SCENARIO.name in fig6.SCENARIO.reuses

    def test_fig10_includes_every_fig7_run(self):
        fig7_keys = {r.cache_key() for r in fig7.required_runs(SUBSET)}
        fig10_keys = {r.cache_key() for r in fig10.required_runs(SUBSET)}
        assert fig7_keys <= fig10_keys
        assert fig7.SCENARIO.name in fig10.SCENARIO.reuses

    def test_shared_runs_execute_once_through_one_runner(self):
        runner = Runner()
        requests = fig2.required_runs(SUBSET) + fig6.required_runs(SUBSET)
        runner.resolve(requests)
        unique = {r.cache_key() for r in requests}
        assert runner.stats.executed == len(unique)
        assert runner.stats.deduplicated == len(requests) - len(unique)


class TestFig5AppRejection:
    def test_run_rejects_app_selection(self):
        with pytest.raises(ExperimentError, match="microbenchmark"):
            fig5.run(apps=["swaptions"], verbose=False)

    def test_required_runs_rejects_app_selection(self):
        with pytest.raises(ExperimentError):
            fig5.SCENARIO.required_runs(["swaptions"])

    def test_none_is_still_accepted(self):
        assert fig5.SCENARIO.required_runs() == []
        assert fig5.run(verbose=False).guest_native_ratio > 1.0


class TestCli:
    def test_list_exits_zero_and_names_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.SCENARIO_MODULES:
            assert name in out
        assert "includes fig2" in out

    def test_run_store_hits_on_second_invocation(self, tmp_path, capsys):
        store = str(tmp_path / "rs")
        argv = [
            "run", "table2",
            "--apps", ",".join(SUBSET),
            "--page-scale", "4096",
            "--quiet", "--store", store,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 hits" in first
        assert f"{len(SUBSET)} misses" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert f"{len(SUBSET)} hits" in second
        assert "0 misses" in second
        assert "0 executed" in second

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["run", "fig99", "--quiet"]) == 1
        assert "fig99" in capsys.readouterr().err

    def test_parallel_run_matches_serial(self):
        serial = fig2.run(apps=SUBSET, verbose=False, runner=Runner(jobs=1))
        parallel = fig2.run(apps=SUBSET, verbose=False, runner=Runner(jobs=2))
        assert serial == parallel
