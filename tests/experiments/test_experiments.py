"""Experiment harness: microbenchmarks fully, figures on app subsets."""

import pytest

from repro.experiments import (
    batching,
    common,
    fig1,
    fig2,
    fig5,
    fig6,
    fig7,
    fig10,
    io_micro,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.__main__ import EXPERIMENTS, main

#: A small, fast subset covering the three imbalance classes.
SUBSET = ["swaptions", "bodytrack", "ep.D"]


@pytest.fixture(autouse=True)
def _fresh_cache():
    common.clear_cache()
    yield
    common.clear_cache()


class TestMicrobenchExperiments:
    def test_table3_exact(self):
        assert table3.run(verbose=False).max_relative_error() < 0.01

    def test_fig5_totals(self):
        result = fig5.run(verbose=False)
        assert result.totals["native"] == pytest.approx(0.9e-6)
        assert result.totals["guest"] == pytest.approx(10.9e-6)

    def test_io_micro_matches(self):
        assert io_micro.run(verbose=False).matches_paper()


class TestSubsetExperiments:
    def test_fig1_subset(self, capsys):
        result = fig1.run(apps=SUBSET)
        assert set(result.overheads) == set(SUBSET)
        out = capsys.readouterr().out
        assert "Figure 1" in out
        for name in SUBSET:
            assert name in out

    def test_fig2_subset(self):
        result = fig2.run(apps=SUBSET, verbose=False)
        assert set(result.improvements) == set(SUBSET)
        for app in SUBSET:
            assert result.spread(app) >= 0.0

    def test_table1_subset(self):
        result = table1.run(apps=SUBSET, verbose=False)
        assert len(result.rows) == 3
        by_app = {r.app: r for r in result.rows}
        # swaptions: both placements stay imbalanced (one dominant page).
        assert by_app["swaptions"].r4k_imbalance > 1.0

    def test_table2_subset(self):
        result = table2.run(apps=SUBSET, verbose=False)
        assert {r.app for r in result.rows} == set(SUBSET)

    def test_table4_subset(self):
        result = table4.run(apps=SUBSET, verbose=False)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row.best_linux
            assert row.best_xen

    def test_fig6_fig10_share_runs(self):
        fig6.run(apps=["swaptions"], verbose=False)
        before = dict(common._CACHE)
        fig10.run(apps=["swaptions"], verbose=False)
        # fig10 reuses fig6's Linux runs (cache only grows by Xen sweeps).
        assert set(before).issubset(set(common._CACHE))

    def test_batching_microbench(self):
        result = batching.run(verbose=False)
        assert result.unbatched_slowdown > 2.0
        assert abs(result.invalidation_share - 0.875) < 0.02


class TestRunnersAndCache:
    def test_linux_run_memoised(self):
        app = common.select_apps(["swaptions"])[0]
        a = common.linux_run(app, "first-touch")
        b = common.linux_run(app, "first-touch")
        assert a is b

    def test_linux_numa_picks_minimum(self):
        app = common.select_apps(["swaptions"])[0]
        best, label = common.linux_numa_run(app)
        for policy, carrefour in common.LINUX_COMBOS:
            other = common.linux_run(app, policy, carrefour)
            assert best.completion_seconds <= other.completion_seconds + 1e-9
        assert label

    def test_xen_numa_includes_round_1g(self):
        app = common.select_apps(["swaptions"])[0]
        best, label = common.xen_numa_run(app)
        assert label in {s.label for s in common.XEN_POLICIES_ALL}

    def test_select_apps_default_is_29(self):
        assert len(common.select_apps(None)) == 29


class TestCli:
    def test_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 1

    def test_known_names_registered(self):
        for name in ("fig1", "table1", "fig7", "batching", "io"):
            assert name in EXPERIMENTS

    def test_cli_runs_subset(self, capsys):
        assert main(["table3"]) == 0
        assert "Table 3" in capsys.readouterr().out
