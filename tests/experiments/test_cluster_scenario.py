"""The cluster_migration scenario: declared runs, assembly, caching."""

import pytest

from repro.config import SimConfig
from repro.errors import ExperimentError
from repro.experiments import cluster_migration, common
from repro.runner import Runner


@pytest.fixture
def coarse():
    with common.configured(SimConfig(page_scale=4096)) as config:
        yield config


class TestRequiredRuns:
    def test_declares_cluster_run_and_baseline(self, coarse):
        requests = cluster_migration.required_runs()
        assert len(requests) == 2
        assert requests[0].environment == "cluster"
        assert requests[1].environment == "xen"
        assert [vm.app for vm in requests[0].vms] == [
            vm.app for vm in requests[1].vms
        ]

    def test_rejects_selections_that_are_not_pairs(self, coarse):
        with pytest.raises(ExperimentError):
            cluster_migration.required_runs(["swaptions"])


class TestAssembly:
    def test_result_compares_cluster_against_colocated(self, coarse):
        runner = Runner()
        result = cluster_migration.run(verbose=False, runner=runner)
        assert set(result.completion) == {"streamcluster", "facesim"}
        for per_app in result.completion.values():
            assert per_app["colocated"] > 0
            assert per_app["evacuated"] > 0
        assert result.migrated_app == "streamcluster"
        assert result.migration["migration.rounds"] >= 1
        # The migrated VM reports the destination host's world.
        assert "@h" in result.worlds["streamcluster"]

    def test_second_run_is_served_from_the_store(self, coarse):
        runner = Runner()
        cluster_migration.run(verbose=False, runner=runner)
        executed = runner.stats.executed
        cluster_migration.run(verbose=False, runner=runner)
        assert runner.stats.executed == executed
