"""Engine edge cases: empty worlds, boundary finishes, determinism."""

import dataclasses

import numpy as np
import pytest

from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_apps, run_world
from repro.sim.environment import LinuxEnvironment, VmSpec, XenEnvironment, World
from repro.workloads.suite import get_app

from tests.conftest import fast_app


class TestEdges:
    def test_empty_world(self, amd48_machine):
        world = World(
            machine=amd48_machine, runs=[], label="empty", epoch_seconds=1.0
        )
        assert run_world(world) == []

    def test_zero_max_epochs_truncates_all(self):
        app = fast_app(get_app("swaptions"))
        env = LinuxEnvironment()
        results = run_apps(env, [app], max_epochs=0)
        assert results[0].stats["truncated"] == 1.0
        assert results[0].epochs == 0

    def test_completion_includes_init(self):
        app = fast_app(get_app("swaptions"))
        result = run_apps(LinuxEnvironment(), [app])[0]
        finish = max(
            r.epoch for r in result.records
        )  # epochs are 1 simulated second each
        assert result.completion_seconds >= result.stats["init_seconds"]
        assert result.stats["init_seconds"] >= 0.0

    def test_different_seeds_differ_with_carrefour(self):
        app = fast_app(get_app("kmeans"), baseline_seconds=4.0)
        a = run_apps(
            LinuxEnvironment(
                policy="round-4k", carrefour=True, config=SimConfig(rng_seed=1)
            ),
            [app],
        )[0]
        b = run_apps(
            LinuxEnvironment(
                policy="round-4k", carrefour=True, config=SimConfig(rng_seed=2)
            ),
            [app],
        )[0]
        # Interleave randomness wiggles the result without changing it much.
        assert a.completion_seconds != b.completion_seconds
        assert a.completion_seconds == pytest.approx(
            b.completion_seconds, rel=0.1
        )

    def test_vm_specs_with_memory_override(self):
        app = fast_app(get_app("swaptions"))
        gib_pages = (1 << 30) // SimConfig().page_bytes
        spec = VmSpec(
            app=app,
            policy=PolicySpec(PolicyName.ROUND_4K),
            memory_pages=3 * gib_pages,
        )
        result = run_apps(XenEnvironment(), [spec])[0]
        assert result.completion_seconds > 0

    def test_heterogeneous_finish_order(self):
        """A short app next to a long one finishes first and its load
        disappears from the machine."""
        short = fast_app(get_app("swaptions"), baseline_seconds=2.0)
        long_ = fast_app(get_app("cg.C"), baseline_seconds=8.0)
        specs = [
            VmSpec(app=short, policy=PolicySpec(PolicyName.ROUND_4K),
                   num_vcpus=24, home_nodes=[0, 1, 2, 3],
                   pin_pcpus=list(range(24))),
            VmSpec(app=long_, policy=PolicySpec(PolicyName.ROUND_4K),
                   num_vcpus=24, home_nodes=[4, 5, 6, 7],
                   pin_pcpus=list(range(24, 48))),
        ]
        results = run_apps(XenEnvironment(), specs)
        assert results[0].completion_seconds < results[1].completion_seconds
