"""Environment wiring: guest sizing, policy selection, io/sync params."""

import dataclasses

import pytest

from repro.core.policies.base import PolicyName, PolicySpec
from repro.hypervisor.xen import XEN, XEN_PLUS
from repro.sim.environment import (
    LinuxEnvironment,
    MCS_APPS,
    VmSpec,
    XenEnvironment,
)
from repro.workloads.suite import get_app

from tests.conftest import fast_app


def xen_world(app, policy, features=XEN_PLUS, **env_kwargs):
    env = XenEnvironment(features=features, **env_kwargs)
    return env.setup([VmSpec(app=app, policy=policy)])


class TestXenSetup:
    def test_policy_selected_through_hypercall(self):
        app = fast_app(get_app("cg.C"))
        world = xen_world(app, PolicySpec(PolicyName.FIRST_TOUCH))
        run = world.runs[0]
        assert run.context.domain.numa_policy.name == "first-touch"
        # The selection went through NUMA_SET_POLICY.
        from repro.hypervisor.hypercalls import Hypercall

        count, _ = run.context.hypervisor.hypercalls.stats[
            Hypercall.NUMA_SET_POLICY
        ]
        assert count == 1
        world.teardown()

    def test_first_touch_free_list_reported(self):
        app = fast_app(get_app("cg.C"))
        world = xen_world(app, PolicySpec(PolicyName.FIRST_TOUCH))
        domain = world.runs[0].context.domain
        # The guest's free pages were invalidated wholesale.
        assert domain.p2m.invalidations > 100
        world.teardown()

    def test_round_4k_keeps_mapping(self):
        app = fast_app(get_app("cg.C"))
        world = xen_world(app, PolicySpec(PolicyName.ROUND_4K))
        domain = world.runs[0].context.domain
        assert domain.p2m.num_valid == domain.memory_pages
        world.teardown()

    def test_vm_has_at_least_8gib_middle(self):
        tiny = fast_app(get_app("swaptions"))
        world = xen_world(tiny, PolicySpec(PolicyName.ROUND_1G))
        domain = world.runs[0].context.domain
        gib_pages = max(1, (1 << 30) // world.machine.config.page_bytes)
        assert domain.memory_pages >= 10 * gib_pages
        world.teardown()

    def test_io_mode_follows_policy(self):
        disk_app = fast_app(get_app("dc.B"))
        w_r4k = xen_world(disk_app, PolicySpec(PolicyName.ROUND_4K))
        w_ft = xen_world(disk_app, PolicySpec(PolicyName.FIRST_TOUCH))
        io_r4k = w_r4k.runs[0].context.io_seconds_per_op
        io_ft = w_ft.runs[0].context.io_seconds_per_op
        # First-touch forces the slow paravirt path.
        assert io_ft > io_r4k > 0
        w_r4k.teardown()
        w_ft.teardown()

    def test_mcs_only_for_the_two_apps_single_vm(self):
        stream = fast_app(get_app("streamcluster"))
        other = fast_app(get_app("ua.C"))
        w1 = xen_world(stream, PolicySpec(PolicyName.ROUND_4K))
        w2 = xen_world(other, PolicySpec(PolicyName.ROUND_4K))
        assert w1.runs[0].context.sync_fraction < 0.1  # MCS spin overhead
        assert w2.runs[0].context.sync_fraction > 0.3  # blocking IPIs
        w1.teardown()
        w2.teardown()

    def test_stock_xen_has_no_mcs(self):
        stream = fast_app(get_app("streamcluster"))
        world = xen_world(stream, PolicySpec(PolicyName.ROUND_4K), features=XEN)
        assert world.runs[0].context.sync_fraction > 0.2
        world.teardown()

    def test_churn_slowdown_modes(self):
        churny = fast_app(get_app("wrmem"))
        batched = xen_world(churny, PolicySpec(PolicyName.ROUND_4K))
        strawman = xen_world(
            churny, PolicySpec(PolicyName.ROUND_4K), unbatched_hypercalls=True
        )
        assert batched.runs[0].context.churn_slowdown < 1.1
        assert strawman.runs[0].context.churn_slowdown > 2.0
        batched.teardown()
        strawman.teardown()

    def test_first_touch_churn_pays_faults(self):
        churny = fast_app(get_app("wrmem"))
        r4k = xen_world(churny, PolicySpec(PolicyName.ROUND_4K))
        ft = xen_world(churny, PolicySpec(PolicyName.FIRST_TOUCH))
        assert (
            ft.runs[0].context.churn_slowdown
            > r4k.runs[0].context.churn_slowdown
        )
        r4k.teardown()
        ft.teardown()


class TestLinuxSetup:
    def test_threads_default_to_machine_cpus(self):
        app = fast_app(get_app("cg.C"))
        world = LinuxEnvironment().setup([app])
        assert len(world.runs[0].threads) == world.machine.num_cpus
        world.teardown()

    def test_thread_count_override(self):
        app = fast_app(get_app("cg.C"))
        world = LinuxEnvironment(num_threads=8).setup([app])
        assert len(world.runs[0].threads) == 8
        world.teardown()

    def test_mcs_apps_constant(self):
        assert MCS_APPS == frozenset({"facesim", "streamcluster"})

    def test_native_io_cheaper_than_pv(self):
        disk_app = fast_app(get_app("dc.B"))
        linux = LinuxEnvironment().setup([disk_app])
        xen = xen_world(disk_app, PolicySpec(PolicyName.FIRST_TOUCH))
        assert (
            linux.runs[0].context.io_seconds_per_op
            < xen.runs[0].context.io_seconds_per_op
        )
        linux.teardown()
        xen.teardown()
