"""RunResult/EpochRecord JSON round-trips must be exact (bit-for-bit)."""

import json

from repro.config import SimConfig
from repro.runner import execute_request
from repro.sim.results import EpochRecord, RunResult
from repro.sim.runspec import RunRequest, VmRequest


def _real_result() -> RunResult:
    request = RunRequest(
        environment="linux",
        vms=(VmRequest(app="swaptions", policy="first-touch"),),
        config=SimConfig(),
    )
    return execute_request(request)[0]


class TestEpochRecordJson:
    def test_round_trip_exact(self):
        record = EpochRecord(
            epoch=3,
            ops_done=1234.5678901234567,
            imbalance=0.1 + 0.2,  # classic non-representable float
            max_link_rho=1e-17,
            local_fraction=0.9999999999999999,
            policy_cost_seconds=3.3333333333333335,
            migrations=17,
        )
        assert EpochRecord.from_json(record.to_json()) == record

    def test_round_trip_through_text(self):
        record = EpochRecord(1, 2.5, 0.25, 0.125, 0.75)
        text = json.dumps(record.to_json())
        assert EpochRecord.from_json(json.loads(text)) == record


class TestRunResultJson:
    def test_real_run_round_trips_exactly(self):
        result = _real_result()
        assert result.records, "engine runs must produce epoch records"
        text = json.dumps(result.to_json())
        again = RunResult.from_json(json.loads(text))
        assert again == result

    def test_round_trip_preserves_derived_metrics(self):
        result = _real_result()
        again = RunResult.from_json(result.to_json())
        assert again.completion_seconds == result.completion_seconds
        assert again.mean_imbalance == result.mean_imbalance
        assert again.mean_max_link_rho == result.mean_max_link_rho
        assert again.total_migrations == result.total_migrations
        assert again.stats == result.stats
