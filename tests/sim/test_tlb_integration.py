"""The optional TLB dimension wired through the engine (section 7)."""

import pytest

from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_app
from repro.sim.environment import VmSpec, XenEnvironment
from repro.workloads.suite import get_app

from tests.conftest import fast_app


def world_for(app, policy, model_tlb):
    env = XenEnvironment(config=SimConfig(model_tlb=model_tlb))
    return env.setup([VmSpec(app=app, policy=policy)])


class TestTlbWiring:
    def test_off_by_default(self):
        app = fast_app(get_app("wc"))
        world = world_for(app, PolicySpec(PolicyName.ROUND_4K), model_tlb=False)
        assert world.runs[0].context.tlb_seconds_per_op == 0.0
        world.teardown()

    def test_fine_grained_policy_pays(self):
        app = fast_app(get_app("wc"))  # 16 GiB footprint
        world = world_for(app, PolicySpec(PolicyName.ROUND_4K), model_tlb=True)
        assert world.runs[0].context.tlb_seconds_per_op > 0.0
        world.teardown()

    def test_round_1g_superpages_nearly_free(self):
        app = fast_app(get_app("wc"))
        fine = world_for(app, PolicySpec(PolicyName.ROUND_4K), model_tlb=True)
        coarse = world_for(app, PolicySpec(PolicyName.ROUND_1G), model_tlb=True)
        assert (
            coarse.runs[0].context.tlb_seconds_per_op
            < fine.runs[0].context.tlb_seconds_per_op
        )
        fine.teardown()
        coarse.teardown()

    def test_small_working_set_unaffected(self):
        app = fast_app(get_app("swaptions"))  # 4 MB: fits any TLB
        world = world_for(app, PolicySpec(PolicyName.ROUND_4K), model_tlb=True)
        assert world.runs[0].context.tlb_seconds_per_op == 0.0
        world.teardown()

    def test_tlb_slows_completion(self):
        app = fast_app(get_app("wc"))
        spec = PolicySpec(PolicyName.ROUND_4K)
        plain = run_app(
            XenEnvironment(config=SimConfig(model_tlb=False)),
            VmSpec(app=app, policy=spec),
        )
        taxed = run_app(
            XenEnvironment(config=SimConfig(model_tlb=True)),
            VmSpec(app=app, policy=spec),
        )
        assert taxed.completion_seconds > plain.completion_seconds
