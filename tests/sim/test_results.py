"""Run result arithmetic: the paper's overhead/improvement definitions."""

import pytest

from repro.sim.results import (
    EpochRecord,
    RunResult,
    relative_improvement,
    relative_overhead,
)


def result(seconds, records=()):
    return RunResult(
        app="x", environment="linux", policy="first-touch",
        completion_seconds=seconds, epochs=len(records), records=list(records),
    )


class TestRatios:
    def test_overhead(self):
        assert relative_overhead(result(150.0), result(100.0)) == pytest.approx(0.5)

    def test_improvement(self):
        assert relative_improvement(result(50.0), result(100.0)) == pytest.approx(1.0)

    def test_equal_runs(self):
        assert relative_overhead(result(100.0), result(100.0)) == 0.0
        assert relative_improvement(result(100.0), result(100.0)) == 0.0

    def test_inverse_relationship(self):
        a, b = result(80.0), result(100.0)
        overhead = relative_overhead(a, b)
        improvement = relative_improvement(a, b)
        assert (1 + overhead) * (1 + improvement) == pytest.approx(1.0 / 1.0, rel=0.3)


class TestAverages:
    def test_mean_metrics(self):
        records = [
            EpochRecord(0, 10.0, imbalance=1.0, max_link_rho=0.2, local_fraction=0.8),
            EpochRecord(1, 10.0, imbalance=3.0, max_link_rho=0.4, local_fraction=0.6),
        ]
        r = result(10.0, records)
        assert r.mean_imbalance == pytest.approx(2.0)
        assert r.mean_max_link_rho == pytest.approx(0.3)
        assert r.mean_local_fraction == pytest.approx(0.7)

    def test_empty_records(self):
        r = result(10.0)
        assert r.mean_imbalance == 0.0
        assert r.mean_local_fraction == 1.0

    def test_migrations_total(self):
        records = [
            EpochRecord(0, 1.0, 0, 0, 1.0, migrations=5),
            EpochRecord(1, 1.0, 0, 0, 1.0, migrations=7),
        ]
        assert result(1.0, records).total_migrations == 12

    def test_summary_contains_key_facts(self):
        text = result(12.5).summary()
        assert "x" in text and "12.50" in text
