"""Placement views and their synchronisation with the p2m table."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.hypervisor.p2m import P2MTable
from repro.sim.placement import PlacementTracker, SegmentPlacement


class TestSegmentPlacement:
    def test_place_and_counts(self):
        p = SegmentPlacement(num_pages=10, num_nodes=4)
        p.place(0, 2)
        p.place(1, 2)
        p.place(2, 3)
        assert p.counts.tolist() == [0, 0, 2, 1]
        assert p.mapped_pages == 3
        assert p.node_of(0) == 2
        assert p.node_of(5) is None

    def test_replace_moves_count(self):
        p = SegmentPlacement(10, 4)
        p.place(0, 1)
        p.place(0, 3)
        assert p.counts.tolist() == [0, 0, 0, 1]

    def test_release(self):
        p = SegmentPlacement(10, 4)
        p.place(0, 1)
        p.release(0)
        assert p.mapped_pages == 0
        p.release(0)  # idempotent
        assert p.mapped_pages == 0

    def test_distribution_uniform(self):
        p = SegmentPlacement(4, 4)
        p.place(0, 0)
        p.place(1, 0)
        p.place(2, 1)
        p.place(3, 2)
        dist = p.distribution()
        assert dist.tolist() == [0.5, 0.25, 0.25, 0.0]

    def test_distribution_with_hot_page(self):
        p = SegmentPlacement(3, 4)
        p.place(0, 2)  # hot page
        p.place(1, 0)
        p.place(2, 1)
        dist = p.distribution(hot_weight=0.7)
        assert dist[2] == pytest.approx(0.7 + 0.3 / 3)
        assert dist.sum() == pytest.approx(1.0)

    def test_empty_distribution(self):
        p = SegmentPlacement(4, 4)
        assert p.distribution().sum() == 0.0

    def test_zero_pages_rejected(self):
        with pytest.raises(ReproError):
            SegmentPlacement(0, 4)


class TestTrackerWithP2M:
    def test_tracker_follows_p2m_lifecycle(self):
        tracker = PlacementTracker(node_of_frame=lambda mfn: mfn // 100)
        p2m = P2MTable(domain_id=1)
        p2m.observer = tracker
        placement = SegmentPlacement(4, 4)
        tracker.track(10, placement, 0)
        tracker.track(11, placement, 1)

        p2m.set_entry(10, 250)  # node 2
        p2m.set_entry(11, 50)  # node 0
        assert placement.node_of(0) == 2
        assert placement.node_of(1) == 0

        p2m.invalidate(10)
        assert placement.node_of(0) is None

        p2m.set_entry(11, 350)  # migrate-like remap to node 3
        assert placement.node_of(1) == 3

    def test_untracked_pages_ignored(self):
        tracker = PlacementTracker(node_of_frame=lambda mfn: 0)
        p2m = P2MTable(domain_id=1)
        p2m.observer = tracker
        p2m.set_entry(99, 1)  # no tracked segment: must not raise

    def test_untrack_stops_updates(self):
        tracker = PlacementTracker(node_of_frame=lambda mfn: 1)
        p2m = P2MTable(domain_id=1)
        p2m.observer = tracker
        placement = SegmentPlacement(4, 4)
        tracker.track(10, placement, 0)
        p2m.set_entry(10, 0)
        tracker.untrack(10)
        p2m.invalidate(10)
        assert placement.node_of(0) == 1  # stale by design after untrack

    def test_migration_remap_updates_view(self):
        tracker = PlacementTracker(node_of_frame=lambda mfn: mfn // 100)
        p2m = P2MTable(domain_id=1)
        p2m.observer = tracker
        placement = SegmentPlacement(4, 4)
        tracker.track(5, placement, 2)
        p2m.set_entry(5, 100)
        p2m.write_protect(5)
        p2m.remap(5, 300)
        assert placement.node_of(2) == 3

    def test_verify_against(self):
        placement = SegmentPlacement(3, 4)
        placement.place(0, 1)
        placement.place(1, 2)
        truth = {0: 1, 1: 2, 2: None}
        assert placement.verify_against(truth.get)
        truth[1] = 3
        assert not placement.verify_against(truth.get)
