"""RunRequest identity: canonical form, cache keys, validation."""

import json

import pytest

from repro.config import SimConfig
from repro.errors import RunSpecError
from repro.sim.runspec import RunRequest, VmRequest


def _linux(**overrides):
    fields = dict(app="swaptions", policy="first-touch")
    fields.update(overrides)
    return RunRequest(environment="linux", vms=(VmRequest(**fields),))


def _xen(**overrides):
    fields = dict(app="cg.C", policy="round-4k")
    fields.update(overrides)
    return RunRequest(environment="xen", vms=(VmRequest(**fields),), features="Xen+")


class TestCacheKeyStability:
    def test_equal_requests_equal_keys(self):
        assert _linux().cache_key() == _linux().cache_key()

    def test_key_survives_json_round_trip(self):
        request = _xen()
        again = RunRequest.from_json(request.to_json())
        assert again == request
        assert again.cache_key() == request.cache_key()

    def test_key_independent_of_payload_field_order(self):
        request = _xen()
        payload = request.to_json()
        # A client that serialized fields in another order must land on
        # the same content hash after a round trip.
        reordered = dict(reversed(list(payload.items())))
        reordered["vms"] = [dict(reversed(list(vm.items()))) for vm in payload["vms"]]
        assert RunRequest.from_json(reordered).cache_key() == request.cache_key()

    def test_defaults_are_serialized_explicitly(self):
        # Adding a field with a default later must not silently change
        # existing keys: every current field appears in the canonical form.
        payload = _linux().to_json()
        assert "unbatched_hypercalls" in payload
        assert "features" in payload
        vm = payload["vms"][0]
        for field in ("carrefour", "mcs_locks", "num_vcpus", "home_nodes"):
            assert field in vm

    def test_result_affecting_config_changes_key(self):
        base = _linux()
        for config in (
            SimConfig(rng_seed=7),
            SimConfig(epoch_seconds=0.5),
            SimConfig(page_scale=1),
        ):
            changed = RunRequest(
                environment="linux", vms=base.vms, config=config
            )
            assert changed.cache_key() != base.cache_key()

    def test_sanitizer_flag_does_not_change_key(self):
        # sanitize_p2m only checks invariants; toggling it must hit the
        # same stored entry.
        checked = RunRequest(
            environment="linux",
            vms=_linux().vms,
            config=SimConfig(sanitize_p2m=True),
        )
        assert checked.cache_key() == _linux().cache_key()

    def test_canonical_is_sorted_and_compact(self):
        canonical = _xen().canonical()
        assert canonical == json.dumps(
            json.loads(canonical), sort_keys=True, separators=(",", ":")
        )


class TestValidation:
    def test_linux_takes_exactly_one_vm(self):
        vms = (VmRequest(app="swaptions"), VmRequest(app="cg.C"))
        with pytest.raises(RunSpecError):
            RunRequest(environment="linux", vms=vms)

    def test_unknown_environment_rejected(self):
        with pytest.raises(RunSpecError):
            RunRequest(environment="kvm", vms=(VmRequest(app="swaptions"),))

    def test_linux_rejects_xen_only_fields(self):
        with pytest.raises(RunSpecError):
            RunRequest(
                environment="linux",
                vms=(VmRequest(app="swaptions"),),
                features="Xen+",
            )
        with pytest.raises(RunSpecError):
            RunRequest(
                environment="linux",
                vms=(VmRequest(app="swaptions", num_vcpus=24),),
            )

    def test_linux_rejects_round_1g(self):
        with pytest.raises(RunSpecError):
            _linux(policy="round-1g")

    def test_xen_rejects_carrefour_on_round_1g(self):
        with pytest.raises(RunSpecError):
            _xen(policy="round-1g", carrefour=True)

    def test_xen_rejects_bad_feature_set(self):
        with pytest.raises(RunSpecError):
            RunRequest(
                environment="xen",
                vms=(VmRequest(app="cg.C"),),
                features="Xen++",
            )

    def test_xen_rejects_per_vm_mcs(self):
        with pytest.raises(RunSpecError):
            _xen(mcs_locks=True)

    def test_cluster_reads_like_xen(self):
        request = RunRequest(
            environment="cluster",
            vms=(VmRequest(app="streamcluster"), VmRequest(app="facesim")),
            features="Xen+",
        )
        assert request.environment == "cluster"
        assert request.cache_key() == RunRequest.from_json(
            request.to_json()
        ).cache_key()

    def test_cluster_validates_policies_like_xen(self):
        with pytest.raises(RunSpecError):
            RunRequest(
                environment="cluster",
                vms=(VmRequest(app="cg.C", policy="numad"),),
                features="Xen+",
            )
        with pytest.raises(RunSpecError):
            RunRequest(
                environment="cluster",
                vms=(VmRequest(app="cg.C"),),
                features="Xen++",
            )

    def test_cluster_rejects_unbatched_hypercalls(self):
        with pytest.raises(RunSpecError):
            RunRequest(
                environment="cluster",
                vms=(VmRequest(app="cg.C"),),
                features="Xen+",
                unbatched_hypercalls=True,
            )


class TestNormalization:
    def test_sequences_become_tuples(self):
        vm = VmRequest(
            app="cg.C",
            num_vcpus=24,
            home_nodes=[0, 1, 2, 3],
            pin_pcpus=list(range(24)),
        )
        assert vm.home_nodes == (0, 1, 2, 3)
        assert vm.pin_pcpus == tuple(range(24))
        # Hashability is what dedup relies on.
        hash(RunRequest(environment="xen", vms=(vm,), features="Xen+"))

    def test_describe_mentions_apps_and_environment(self):
        text = _xen().describe()
        assert text.startswith("Xen+")
        assert "cg.C" in text
        assert _linux().describe().startswith("Linux")
