"""The epoch engine: completion, congestion solving, metrics."""

import dataclasses

import numpy as np
import pytest

from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import CongestionSolver, run_app, run_apps
from repro.sim.environment import LinuxEnvironment, VmSpec, XenEnvironment
from repro.workloads.suite import get_app

from tests.conftest import fast_app


@pytest.fixture
def app():
    return fast_app(get_app("facesim"), baseline_seconds=5.0)


class TestCongestionSolver:
    def test_no_traffic_uncontended(self, amd48_machine):
        solver = CongestionSolver(amd48_machine)
        rho_c, rho_l = solver.congestion(np.zeros((8, 8)), 1.0)
        assert rho_c.sum() == 0.0
        latm = solver.latency_matrix(rho_c, rho_l)
        assert latm[0, 0] == pytest.approx(156.0 / 2.2e9)

    def test_concentrated_traffic_raises_latency(self, amd48_machine):
        solver = CongestionSolver(amd48_machine)
        matrix = np.zeros((8, 8))
        matrix[:, 0] = 3e7  # everyone hammers node 0
        rho_c, rho_l = solver.congestion(matrix, 1.0)
        assert rho_c[0] > 0.5
        latm = solver.latency_matrix(rho_c, rho_l)
        base = solver.latency_matrix(np.zeros(8), np.zeros_like(rho_l))
        assert latm[0, 0] > base[0, 0]
        assert latm[1, 1] == pytest.approx(base[1, 1])

    def test_links_loaded_by_remote_traffic(self, amd48_machine):
        solver = CongestionSolver(amd48_machine)
        matrix = np.zeros((8, 8))
        matrix[1, 0] = 5e7
        _, rho_l = solver.congestion(matrix, 1.0)
        assert rho_l.max() > 0.0


class TestLinuxRun:
    def test_run_completes(self, app):
        result = run_app(LinuxEnvironment(policy="first-touch"), app)
        assert result.completion_seconds > 0
        assert result.epochs > 0
        assert result.stats["truncated"] == 0.0
        assert result.policy == "first-touch"
        assert result.environment == "linux"

    def test_deterministic(self, app):
        a = run_app(LinuxEnvironment(policy="first-touch"), app)
        b = run_app(LinuxEnvironment(policy="first-touch"), app)
        assert a.completion_seconds == pytest.approx(b.completion_seconds)

    def test_measured_imbalance_tracks_table1(self, app):
        ft = run_app(LinuxEnvironment(policy="first-touch"), app)
        r4k = run_app(LinuxEnvironment(policy="round-4k"), app)
        # facesim: 253% under first-touch, 27% under round-4K.
        assert ft.mean_imbalance == pytest.approx(2.53, abs=0.4)
        assert r4k.mean_imbalance < 0.6

    def test_round4k_beats_first_touch_for_master_slave(self, app):
        ft = run_app(LinuxEnvironment(policy="first-touch"), app)
        r4k = run_app(LinuxEnvironment(policy="round-4k"), app)
        assert r4k.completion_seconds < ft.completion_seconds

    def test_local_app_prefers_first_touch(self):
        app = fast_app(get_app("cg.C"), baseline_seconds=5.0)
        ft = run_app(LinuxEnvironment(policy="first-touch"), app)
        r4k = run_app(LinuxEnvironment(policy="round-4k"), app)
        assert ft.completion_seconds < r4k.completion_seconds
        assert ft.mean_local_fraction > 0.9

    def test_max_epochs_truncates(self, app):
        result = run_app(
            LinuxEnvironment(policy="first-touch"), app, max_epochs=2
        )
        assert result.stats["truncated"] == 1.0
        assert result.epochs == 2


class TestXenRun:
    def test_round_1g_run_completes(self, app):
        result = run_app(
            XenEnvironment(),
            VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_1G)),
        )
        assert result.completion_seconds > 0
        assert result.environment == "xen+"
        assert result.policy == "round-1g"

    def test_first_touch_faults_in_pages(self, app):
        result = run_app(
            XenEnvironment(),
            VmSpec(app=app, policy=PolicySpec(PolicyName.FIRST_TOUCH)),
        )
        assert result.stats["init_seconds"] > 0

    def test_two_vm_coupling(self):
        """Two colocated VMs complete and both feel the machine."""
        a = fast_app(get_app("cg.C"), baseline_seconds=4.0)
        b = fast_app(get_app("sp.C"), baseline_seconds=4.0)
        specs = [
            VmSpec(app=a, policy=PolicySpec(PolicyName.ROUND_4K),
                   num_vcpus=24, home_nodes=[0, 1, 2, 3],
                   pin_pcpus=list(range(24))),
            VmSpec(app=b, policy=PolicySpec(PolicyName.ROUND_4K),
                   num_vcpus=24, home_nodes=[4, 5, 6, 7],
                   pin_pcpus=list(range(24, 48))),
        ]
        results = run_apps(XenEnvironment(), specs)
        assert len(results) == 2
        assert all(r.completion_seconds > 0 for r in results)

    def test_consolidated_halves_throughput(self):
        app = fast_app(get_app("swaptions"), baseline_seconds=4.0)
        alone = run_app(
            XenEnvironment(),
            VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K)),
        )
        both = run_apps(
            XenEnvironment(),
            [
                VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K),
                       num_vcpus=48, home_nodes=list(range(8)),
                       pin_pcpus=list(range(48)))
                for _ in range(2)
            ],
        )
        ratio = both[0].completion_seconds / alone.completion_seconds
        assert 1.6 < ratio < 2.6


class TestCarrefourRun:
    def test_carrefour_migrates_and_helps(self):
        app = fast_app(get_app("kmeans"), baseline_seconds=5.0)
        plain = run_app(LinuxEnvironment(policy="first-touch"), app)
        carrefour = run_app(
            LinuxEnvironment(policy="first-touch", carrefour=True), app
        )
        assert carrefour.total_migrations > 0
        assert carrefour.completion_seconds < plain.completion_seconds
