"""Application calibration from the Table 1 interconnect loads."""

import pytest

from repro.sim.calibration import calibrate_app, uncontended_mem_seconds
from repro.workloads.suite import APPLICATIONS, get_app

import numpy as np


class TestCalibration:
    def test_memory_bound_app_has_zero_cpu(self, amd48_machine):
        """cg.C's 46% round-4K link load implies full memory boundness."""
        model = calibrate_app(get_app("cg.C"), amd48_machine)
        assert model.cpu_seconds == 0.0

    def test_light_app_has_compute(self, amd48_machine):
        model = calibrate_app(get_app("swaptions"), amd48_machine)
        assert model.cpu_seconds > 1e-7

    def test_rate_monotone_in_interconnect_load(self, amd48_machine):
        rates = {
            name: calibrate_app(get_app(name), amd48_machine).access_rate_48t
            for name in ("swaptions", "bodytrack", "cg.C")
        }
        assert rates["swaptions"] < rates["bodytrack"] < rates["cg.C"]

    def test_ops_target_positive_for_all_apps(self, amd48_machine):
        for app in APPLICATIONS:
            model = calibrate_app(app, amd48_machine)
            assert model.ops_per_thread > 0
            assert model.access_rate_48t > 0

    def test_io_bytes_per_op(self, amd48_machine):
        dc = get_app("dc.B")
        model = calibrate_app(dc, amd48_machine)
        total_ops = model.ops_per_thread * 48
        total_bytes = model.io_bytes_per_op * total_ops
        assert total_bytes == pytest.approx(
            dc.disk_mb_s * 1e6 * dc.baseline_seconds
        )

    def test_no_disk_no_io(self, amd48_machine):
        model = calibrate_app(get_app("cg.C"), amd48_machine)
        assert model.io_bytes_per_op == 0.0

    def test_min_rate_floor(self, amd48_machine):
        model = calibrate_app(get_app("swaptions"), amd48_machine, min_rate=1e9)
        assert model.access_rate_48t == 1e9


class TestUncontendedMemSeconds:
    def test_local_only(self, amd48_machine):
        dist = np.zeros(8)
        dist[0] = 1.0
        seconds = uncontended_mem_seconds(amd48_machine, dist, src=0)
        expected = 156.0 / 2.2e9
        assert seconds == pytest.approx(expected)

    def test_uniform_exceeds_local(self, amd48_machine):
        uniform = np.full(8, 1 / 8)
        local = np.zeros(8)
        local[0] = 1.0
        assert uncontended_mem_seconds(
            amd48_machine, uniform
        ) > uncontended_mem_seconds(amd48_machine, local)
