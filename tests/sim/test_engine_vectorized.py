"""Vectorized congestion solver: oracle equivalence, early exit, pins.

The reference oracle is the pre-vectorization loop implementation,
committed verbatim in :mod:`repro.perfbench.oracle`.
"""

import numpy as np
import pytest

from repro.hardware.presets import amd48, small_machine
from repro.perfbench.oracle import loop_congestion, loop_latency_matrix
from repro.sim.engine import CongestionSolver, run_world
from repro.sim.environment import LinuxEnvironment
from repro.workloads.suite import get_app

from tests.conftest import fast_app


@pytest.fixture(params=[2, 4, 8], ids=["2-node", "4-node", "8-node"])
def solver(request):
    if request.param == 8:
        machine = amd48()
    else:
        machine = small_machine(num_nodes=request.param, cpus_per_node=2)
    return CongestionSolver(machine)


def _random_matrices(solver, count=25, scale=5e7, seed=1234):
    """Randomized access matrices with exact-zero entries sprinkled in."""
    rng = np.random.default_rng(seed)
    n = solver.num_nodes
    for _ in range(count):
        matrix = rng.uniform(0.0, scale, size=(n, n))
        matrix[rng.random((n, n)) < 0.3] = 0.0
        yield matrix


class TestOracleEquivalence:
    def test_congestion_matches_loop_oracle(self, solver):
        for matrix in _random_matrices(solver):
            rho_c, rho_l = solver.congestion(matrix, 1.0)
            exp_c, exp_l = loop_congestion(solver, matrix, 1.0)
            np.testing.assert_allclose(rho_c, exp_c, rtol=1e-12, atol=1e-18)
            np.testing.assert_allclose(rho_l, exp_l, rtol=1e-12, atol=1e-18)

    def test_latency_matrix_matches_loop_oracle(self, solver):
        for matrix in _random_matrices(solver):
            rho_c, rho_l = solver.congestion(matrix, 1.0)
            got = solver.latency_matrix(rho_c, rho_l)
            expected = loop_latency_matrix(solver, rho_c, rho_l)
            np.testing.assert_allclose(got, expected, rtol=1e-12, atol=0.0)

    def test_saturated_traffic_matches_loop_oracle(self, solver):
        """Past the queueing knee the linear-tail branch must agree too."""
        for matrix in _random_matrices(solver, count=5, scale=5e9, seed=99):
            rho_c, rho_l = solver.congestion(matrix, 1.0)
            assert rho_c.max() > solver.machine.latency.rho_cap
            got = solver.latency_matrix(rho_c, rho_l)
            expected = loop_latency_matrix(solver, rho_c, rho_l)
            np.testing.assert_allclose(got, expected, rtol=1e-12, atol=0.0)

    def test_zero_latency_matrix_is_memoized(self, solver):
        n = solver.num_nodes
        zeros_l = np.zeros(len(solver.link_bw))
        first = solver.latency_matrix(np.zeros(n), zeros_l)
        second = solver.latency_matrix(np.zeros(n), zeros_l)
        assert first is second
        np.testing.assert_array_equal(
            first, loop_latency_matrix(solver, np.zeros(n), zeros_l)
        )

    def test_zero_latency_matrix_is_read_only(self, solver):
        # Regression: the memo used to be handed out writable, so one
        # caller scribbling on it poisoned every later zero-congestion
        # epoch of the same solver.
        n = solver.num_nodes
        zeros_l = np.zeros(len(solver.link_bw))
        latm = solver.latency_matrix(np.zeros(n), zeros_l)
        with pytest.raises(ValueError):
            latm[0, 0] = 123.0
        np.testing.assert_array_equal(
            solver.latency_matrix(np.zeros(n), zeros_l),
            loop_latency_matrix(solver, np.zeros(n), zeros_l),
        )


class TestEarlyExit:
    def test_results_identical_with_and_without_skipping(self):
        """Convergence skipping (the default) is bit-for-bit invisible."""
        app = fast_app(get_app("cg.C"), baseline_seconds=6.0)
        env = LinuxEnvironment(policy="round-4k")
        skipping = run_world(env.setup([app]))[0]
        full = run_world(env.setup([app]), solver_epsilon=None)[0]
        assert skipping.completion_seconds == full.completion_seconds
        assert skipping.epochs == full.epochs
        assert skipping.records == full.records
        assert skipping.stats == full.stats

    def test_early_exit_skips_solver_iterations(self, monkeypatch):
        """On a churn-free steady state the exact fixed point is reached
        and later iterations are actually skipped."""
        calls = {"n": 0}
        original = CongestionSolver.congestion

        def counted(self, matrix, seconds):
            calls["n"] += 1
            return original(self, matrix, seconds)

        monkeypatch.setattr(CongestionSolver, "congestion", counted)
        app = fast_app(get_app("cg.C"), baseline_seconds=6.0)
        env = LinuxEnvironment(policy="round-4k")
        calls["n"] = 0
        run_world(env.setup([app]))
        with_skip = calls["n"]
        calls["n"] = 0
        run_world(env.setup([app]), solver_epsilon=None)
        without_skip = calls["n"]
        assert with_skip < without_skip


class TestRegressionPin:
    """Pin a fixture world's outputs: any solver change that shifts the
    numerics (vectorization refactors, early-exit tweaks) must show up
    here, not in a downstream figure."""

    def test_facesim_first_touch_pinned(self):
        app = fast_app(get_app("facesim"), baseline_seconds=5.0)
        result = run_world(
            LinuxEnvironment(policy="first-touch").setup([app])
        )[0]
        assert result.epochs == 9
        assert result.completion_seconds == pytest.approx(
            8.168240734047197, rel=1e-9
        )
        assert result.mean_imbalance == pytest.approx(
            2.5277440161172926, rel=1e-9
        )
