"""Repeated-run averaging (the paper's 6-run protocol)."""

import pytest

from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.engine import run_app
from repro.sim.environment import VmSpec, XenEnvironment
from repro.sim.results import RunResult
from repro.sim.stats import RepeatedResult, run_repeated
from repro.workloads.suite import get_app

from tests.conftest import fast_app


def fake_run(seconds):
    return RunResult(
        app="x", environment="e", policy="p",
        completion_seconds=seconds, epochs=1,
    )


class TestAggregation:
    def test_mean_and_std(self):
        values = iter([10.0, 20.0, 30.0])
        result = run_repeated(lambda cfg: fake_run(next(values)), repeats=3)
        assert result.mean_seconds == pytest.approx(20.0)
        assert result.std_seconds == pytest.approx(8.1649, rel=1e-3)
        assert result.cv == pytest.approx(0.4082, rel=1e-3)

    def test_seeds_differ_per_repeat(self):
        seeds = []
        run_repeated(
            lambda cfg: (seeds.append(cfg.rng_seed), fake_run(1.0))[1],
            repeats=4,
        )
        assert len(set(seeds)) == 4

    def test_representative_is_closest_to_mean(self):
        values = iter([10.0, 19.0, 40.0])
        result = run_repeated(lambda cfg: fake_run(next(values)), repeats=3)
        assert result.representative.completion_seconds == 19.0

    def test_needs_a_repeat(self):
        with pytest.raises(ValueError):
            run_repeated(lambda cfg: fake_run(1.0), repeats=0)


class TestEndToEnd:
    def test_carrefour_noise_is_small_but_nonzero(self):
        """Seeded repeats wiggle (Carrefour randomness) but stay tight."""
        app = fast_app(get_app("bt.C"), baseline_seconds=4.0)
        spec = VmSpec(
            app=app, policy=PolicySpec(PolicyName.ROUND_4K, carrefour=True)
        )
        result = run_repeated(
            lambda cfg: run_app(XenEnvironment(config=cfg), spec),
            repeats=3,
        )
        assert result.mean_seconds > 0
        assert result.cv < 0.1
