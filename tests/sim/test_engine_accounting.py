"""Per-run engine accounting: truncation identity, congestion scopes,
destination-matrix caching."""

import dataclasses

import numpy as np
import pytest

from repro.sim.engine import CongestionSolver, run_apps, run_world
from repro.sim.environment import LinuxEnvironment
from repro.workloads.suite import get_app

from tests.conftest import fast_app


class TestTruncationIdentity:
    def test_same_named_runs_truncate_independently(self):
        """The paper's 2-VM setups run the same app twice; one run timing
        out must not mark its finished twin truncated. The slow run comes
        *first* so a name-keyed truncation set would poison the second."""
        base = get_app("swaptions")
        slow = dataclasses.replace(base, baseline_seconds=500.0)
        quick = dataclasses.replace(base, baseline_seconds=2.0)
        results = run_apps(
            LinuxEnvironment(policy="round-4k"), [slow, quick], max_epochs=40
        )
        assert results[0].app == results[1].app
        assert results[0].stats["truncated"] == 1.0
        assert results[1].stats["truncated"] == 0.0


class TestCongestionScopes:
    def test_observation_sees_total_record_stores_contribution(self):
        """Policies observe the *world-total* utilisations (what hardware
        counters show: experienced congestion); the run's EpochRecord
        archives only its own link contribution (the Table 1 metric)."""
        a = fast_app(get_app("cg.C"), baseline_seconds=4.0)
        b = fast_app(get_app("sp.C"), baseline_seconds=4.0)
        env = LinuxEnvironment(policy="round-4k")
        world = env.setup([a, b])
        captured = []
        for run in world.runs:
            original = run.build_observation

            def spy(_orig=original, _run=run, **kwargs):
                captured.append((_run, kwargs))
                return _orig(**kwargs)

            run.build_observation = spy
        solver = CongestionSolver(world.machine)
        results = run_world(world, max_epochs=1)

        assert len(captured) == 2
        total = captured[0][1]["access_matrix"] + captured[1][1]["access_matrix"]
        exp_c, exp_l = solver.congestion(total, world.epoch_seconds)
        for (run, kwargs), result in zip(captured, results):
            assert run.app.name == result.app
            # Observation: world totals, identical for both runs.
            np.testing.assert_allclose(
                kwargs["controller_rho"], exp_c, rtol=1e-12
            )
            assert kwargs["max_link_rho"] == pytest.approx(
                float(exp_l.max()), rel=1e-12
            )
            # Record: this run's own contribution only.
            own_l = solver.congestion(
                kwargs["access_matrix"], world.epoch_seconds
            )[1]
            assert result.records[0].max_link_rho == pytest.approx(
                float(own_l.max()), rel=1e-12
            )
            assert (
                result.records[0].max_link_rho
                <= kwargs["max_link_rho"] + 1e-15
            )


class TestDestinationMatrixCache:
    def _initialized_run(self):
        app = fast_app(get_app("swaptions"), baseline_seconds=2.0)
        world = LinuxEnvironment(policy="round-4k").setup([app])
        run = world.runs[0]
        run.initialize()
        return run, world.machine.num_nodes

    def test_cache_reused_while_placement_stable(self):
        run, n = self._initialized_run()
        first = run.destination_matrix(n)
        second = run.destination_matrix(n)
        assert all(x is y for x, y in zip(first, second))

    def test_placement_mutation_invalidates(self):
        run, n = self._initialized_run()
        first = run.destination_matrix(n)
        run.segments[0].placement.place(0, n - 1)
        second = run.destination_matrix(n)
        assert second[0] is not first[0]

    def test_thread_state_change_invalidates(self):
        run, n = self._initialized_run()
        first = run.destination_matrix(n)
        run.threads[0].finish_time = 0.5
        second = run.destination_matrix(n)
        assert second[2] is not first[2]
        assert not second[2][0]


class TestObservationInputsFrozen:
    """Regression: one rho_c array is shared by every run's observation
    in an epoch, and EpochRecord reads observation.imbalance after the
    policy callback — policy code must not be able to mutate either."""

    def test_observation_arrays_read_only(self):
        a = fast_app(get_app("cg.C"), baseline_seconds=4.0)
        b = fast_app(get_app("sp.C"), baseline_seconds=4.0)
        world = LinuxEnvironment(policy="round-4k").setup([a, b])
        captured = []
        for run in world.runs:
            original = run.build_observation

            def spy(_orig=original, **kwargs):
                captured.append(kwargs)
                return _orig(**kwargs)

            run.build_observation = spy
        run_world(world, max_epochs=1)
        assert len(captured) == 2
        # The shared world-total rho_c and each run's own access matrix
        # reach the policy frozen.
        assert captured[0]["controller_rho"] is captured[1]["controller_rho"]
        for kwargs in captured:
            assert not kwargs["controller_rho"].flags.writeable
            assert not kwargs["access_matrix"].flags.writeable
            with pytest.raises(ValueError):
                kwargs["access_matrix"][0, 0] = 1e9


class TestDestinationMatrixFrozen:
    """Regression: the memoized destination arrays are reused across
    epochs; they must be frozen so one epoch's caller cannot skew the
    next epoch's solver input (RPR009)."""

    def _initialized_run(self):
        app = fast_app(get_app("swaptions"), baseline_seconds=2.0)
        world = LinuxEnvironment(policy="round-4k").setup([app])
        run = world.runs[0]
        run.initialize()
        return run, world.machine.num_nodes

    def test_cached_arrays_read_only(self):
        run, n = self._initialized_run()
        D, src, active = run.destination_matrix(n)
        for arr in (D, src, active):
            assert not arr.flags.writeable
        with pytest.raises(ValueError):
            D[0, 0] = 123.0

    def test_recomputed_arrays_also_read_only(self):
        run, n = self._initialized_run()
        run.destination_matrix(n)
        run.segments[0].placement.place(0, n - 1)
        D, _, _ = run.destination_matrix(n)
        assert not D.flags.writeable
