"""AppRun internals: segment weights, destinations, work, sampling."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.environment import VmSpec, XenEnvironment
from repro.sim.instance import (
    HOT_SUBSET_MIN_PAGES,
    RuntimeSegment,
    ThreadCtx,
)
from repro.workloads.app import SegmentDef, build_segments
from repro.workloads.patterns import SegmentSpec
from repro.workloads.suite import get_app

from tests.conftest import fast_app


def shared_segment(num_pages=100, hot_weight=0.2, num_nodes=8):
    spec = SegmentSpec(
        name="shared", fraction=1.0, init="master", access="all",
        weight=1.0, hot_weight=hot_weight,
    )
    return RuntimeSegment(SegmentDef(spec=spec, num_pages=num_pages), num_nodes)


def private_segment(num_pages=10, owner=0, num_nodes=8):
    spec = SegmentSpec(
        name="private", fraction=1.0, init="owner", access="owner", weight=1.0
    )
    return RuntimeSegment(
        SegmentDef(spec=spec, num_pages=num_pages, owner_tid=owner), num_nodes
    )


class TestPageWeights:
    def test_weights_sum_to_one(self):
        seg = shared_segment(num_pages=500, hot_weight=0.3)
        assert seg.page_weights.sum() == pytest.approx(1.0)

    def test_dominant_page_weight(self):
        seg = shared_segment(num_pages=500, hot_weight=0.3)
        assert seg.page_weights[0] == pytest.approx(0.3)

    def test_hot_subset_exists(self):
        seg = shared_segment(num_pages=500, hot_weight=0.0)
        subset = seg.page_weights[1 : 1 + HOT_SUBSET_MIN_PAGES]
        tail = seg.page_weights[1 + HOT_SUBSET_MIN_PAGES :]
        assert subset.min() > tail.max()

    def test_single_page_segment(self):
        seg = shared_segment(num_pages=1, hot_weight=0.5)
        assert seg.page_weights.tolist() == [1.0]

    def test_private_segments_have_no_weights(self):
        assert private_segment().page_weights is None


class TestDistribution:
    def test_uniform_private_distribution(self):
        seg = private_segment(num_pages=4)
        seg.placement.place(0, 1)
        seg.placement.place(1, 1)
        seg.placement.place(2, 2)
        seg.placement.place(3, 3)
        dist = seg.distribution(8)
        assert dist[1] == pytest.approx(0.5)
        assert dist.sum() == pytest.approx(1.0)

    def test_weighted_shared_distribution(self):
        seg = shared_segment(num_pages=100, hot_weight=0.5)
        for idx in range(100):
            seg.placement.place(idx, idx % 8)
        dist = seg.distribution(8)
        # The dominant page sits on node 0: it gets its 0.5 plus a share.
        assert dist[0] > 0.5
        assert dist.sum() == pytest.approx(1.0)

    def test_unmapped_pages_excluded(self):
        seg = shared_segment(num_pages=10, hot_weight=0.4)
        seg.placement.place(5, 3)  # only one cold page mapped
        dist = seg.distribution(8)
        assert dist[3] == pytest.approx(1.0)


class TestAppRunPieces:
    @pytest.fixture
    def run(self):
        app = fast_app(get_app("facesim"))
        env = XenEnvironment()
        world = env.setup([VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K))])
        self.world = world
        world.runs[0].initialize()
        return world.runs[0]

    def test_destination_matrix_shape(self, run):
        D, src, active = run.destination_matrix(8)
        assert D.shape == (48, 8)
        assert active.all()
        np.testing.assert_allclose(D.sum(axis=1), 1.0)
        self.world.teardown()

    def test_commit_work_finishes_threads(self, run):
        target = run.op_model.ops_per_thread
        ops = np.full(48, target * 2)
        done = run.commit_work(ops, epoch_start=10.0, epoch_seconds=1.0)
        assert run.finished
        assert done == pytest.approx(target * 48)
        # Finishing mid-epoch interpolates: half the epoch used.
        assert run.threads[0].finish_time == pytest.approx(10.5)
        self.world.teardown()

    def test_commit_work_partial(self, run):
        target = run.op_model.ops_per_thread
        ops = np.full(48, target / 4)
        run.commit_work(ops, 0.0, 1.0)
        assert not run.finished
        assert run.threads[0].work_done == pytest.approx(target / 4)
        self.world.teardown()

    def test_finished_threads_stop_contributing(self, run):
        target = run.op_model.ops_per_thread
        ops = np.zeros(48)
        ops[0] = target * 2
        run.commit_work(ops, 0.0, 1.0)
        D, src, active = run.destination_matrix(8)
        assert not active[0]
        assert active[1:].all()
        self.world.teardown()

    def test_observation_without_dynamic_policy_has_no_samples(self, run):
        obs = run.build_observation(
            access_matrix=np.zeros((8, 8)),
            controller_rho=np.zeros(8),
            max_link_rho=0.0,
            epoch_seconds=1.0,
            ops_by_node=np.ones(8),
        )
        assert obs.hot_pages == []
        self.world.teardown()


class TestDynamicSampling:
    @pytest.fixture
    def carrefour_run(self):
        app = fast_app(get_app("facesim"))
        env = XenEnvironment()
        world = env.setup(
            [VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K, True))]
        )
        self.world = world
        world.runs[0].initialize()
        return world.runs[0]

    def test_samples_generated_for_dynamic_policy(self, carrefour_run):
        obs = carrefour_run.build_observation(
            access_matrix=np.ones((8, 8)),
            controller_rho=np.zeros(8),
            max_link_rho=0.0,
            epoch_seconds=1.0,
            ops_by_node=np.full(8, 1e6),
        )
        assert len(obs.hot_pages) > 0
        # Samples carry the owning domain and valid page keys.
        domid = carrefour_run.context.domain_id
        assert all(s.domain_id == domid for s in obs.hot_pages)
        assert all(s.page >= 0 for s in obs.hot_pages)
        self.world.teardown()

    def test_hottest_page_sampled_first(self, carrefour_run):
        obs = carrefour_run.build_observation(
            access_matrix=np.ones((8, 8)),
            controller_rho=np.zeros(8),
            max_link_rho=0.0,
            epoch_seconds=1.0,
            ops_by_node=np.full(8, 1e6),
        )
        shared = carrefour_run.shared_segments[0]
        hot_key = int(shared.keys[0])
        sampled_keys = {s.page for s in obs.hot_pages}
        assert hot_key in sampled_keys
        self.world.teardown()


class TestChurn:
    def test_churn_step_releases_and_retouches(self):
        app = fast_app(get_app("wrmem"))
        env = XenEnvironment()
        world = env.setup([VmSpec(app=app, policy=PolicySpec(PolicyName.FIRST_TOUCH))])
        run = world.runs[0]
        run.initialize()
        faults_before = run.context.hypervisor.fault_handler.stats.hypervisor_faults
        run.churn_step()
        faults_after = run.context.hypervisor.fault_handler.stats.hypervisor_faults
        # Under first-touch with flushed queues, some reallocations fault.
        assert faults_after >= faults_before
        assert run.context.patch.queue.stats.events > 0
        world.teardown()

    def test_no_churn_for_quiet_apps(self):
        app = fast_app(get_app("cg.C"))
        env = XenEnvironment()
        world = env.setup([VmSpec(app=app, policy=PolicySpec(PolicyName.ROUND_4K))])
        run = world.runs[0]
        run.initialize()
        events_before = run.context.patch.queue.stats.events
        run.churn_step()
        assert run.context.patch.queue.stats.events == events_before
        world.teardown()
