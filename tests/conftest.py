"""Shared fixtures: machines, hypervisors and fast app variants."""

import dataclasses

import pytest

from repro.config import SimConfig
from repro.hardware.presets import amd48, small_machine
from repro.hypervisor.xen import Hypervisor, XEN, XEN_PLUS
from repro.lint import sanitizer as p2m_sanitizer


@pytest.fixture(scope="session", autouse=True)
def _sanitize_p2m():
    """Run the whole suite with the runtime P2M sanitizer armed.

    Every hypervisor the tests create gets shadow frame-ownership and
    migration-protocol checking; a double map, a map of a freed frame or
    an out-of-order migration fails the test that caused it.
    """
    p2m_sanitizer.enable()
    yield
    p2m_sanitizer.disable()


@pytest.fixture
def fine_config():
    """Page scale 1 (true 4 KiB pages) for unit-level mechanics."""
    return SimConfig(page_scale=1)


@pytest.fixture
def machine():
    """A tiny 2-node machine for unit tests."""
    return small_machine()


@pytest.fixture
def machine4():
    """A 4-node machine for policy tests."""
    return small_machine(num_nodes=4, cpus_per_node=2, frames_per_node=4096)


@pytest.fixture
def amd48_machine():
    """The paper's AMD48 machine."""
    return amd48()


@pytest.fixture
def hypervisor(machine4):
    """A booted hypervisor (stock Xen features) on the 4-node machine."""
    return Hypervisor(machine4, features=XEN)


@pytest.fixture
def hypervisor_plus(machine4):
    """A booted hypervisor with the Xen+ feature set."""
    return Hypervisor(machine4, features=XEN_PLUS)


def fast_app(app, baseline_seconds=8.0, footprint_mb=None):
    """A faster copy of an AppSpec for integration tests."""
    changes = {"baseline_seconds": baseline_seconds}
    if footprint_mb is not None:
        changes["footprint_mb"] = footprint_mb
    return dataclasses.replace(app, **changes)
