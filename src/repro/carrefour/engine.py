"""Carrefour's user/system component split and the iteration loop.

The **system component** (in the kernel — in Xen for the paper's port)
gathers counters and hot-page samples and executes migration commands. The
**user component** (a process — in dom0 for the port) turns the metrics
into per-page decisions. They communicate through a narrow command
interface; in the Xen port that interface is the ``CARREFOUR_CONTROL``
hypercall, trapped by dom0's Linux and forwarded into the hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.carrefour.heuristics import (
    Action,
    PageDecision,
    PlacementFn,
    interleave_candidates,
    interleave_decisions,
    migration_candidates,
    migration_decisions,
    replication_candidates,
    replication_decisions,
    sample_arrays,
)
from repro.carrefour.metrics import CarrefourMetrics, compute_metrics
from repro.core import batch
from repro.core.policies.base import EpochObservation
from repro.hardware.counters import HotPageSample, PerfCounters


@dataclass(frozen=True)
class CarrefourConfig:
    """Thresholds of the decision logic (defaults follow Carrefour).

    Attributes:
        min_access_rate_per_s: below this machine-wide access rate the
            engine stays idle — the workload is not memory bound.
        imbalance_threshold: controller imbalance (relative std-dev)
            enabling the interleave heuristic.
        locality_threshold: local-access fraction *below* which the
            migration heuristic turns on.
        link_rho_threshold: interconnect utilisation considered saturated.
        migration_budget: max pages moved per iteration (migrations cost).
        enable_replication: the paper's port discards replication; the
            ablation benchmark flips this on.
        single_node_share: dominance required by the migration heuristic.
        iteration_overhead_seconds: fixed cost of running one iteration —
            IBS sample processing, hot-page sorting and the dom0 round
            trip. Real Carrefour costs a fraction of a percent to a few
            percent of each interval; this is what makes the plain static
            policy win when there is nothing useful to migrate.
    """

    min_access_rate_per_s: float = 1.0e7
    imbalance_threshold: float = 0.35
    locality_threshold: float = 0.80
    link_rho_threshold: float = 0.30
    migration_budget: int = 4096
    enable_replication: bool = False
    single_node_share: float = 0.90
    iteration_overhead_seconds: float = 6.0e-3


@dataclass
class IterationResult:
    """What one Carrefour iteration did."""

    metrics: CarrefourMetrics
    decisions: List[PageDecision] = field(default_factory=list)
    applied: int = 0
    interleave_enabled: bool = False
    migration_enabled: bool = False
    replication_enabled: bool = False


class UserComponent:
    """Decision logic (the dom0 process in the Xen port)."""

    def __init__(self, config: CarrefourConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng

    def decide(
        self,
        metrics: CarrefourMetrics,
        hot_pages: Sequence[HotPageSample],
        placement: PlacementFn,
        placement_many=None,
    ) -> IterationResult:
        """Choose heuristics from the global metrics, then pick pages."""
        result = IterationResult(metrics=metrics)
        if metrics.access_rate_per_s < self.config.min_access_rate_per_s:
            return result

        result.interleave_enabled = (
            metrics.imbalance > self.config.imbalance_threshold
        )
        congested = (
            metrics.max_link_rho > self.config.link_rho_threshold
            or metrics.local_fraction < self.config.locality_threshold
        )
        result.migration_enabled = congested
        result.replication_enabled = congested and self.config.enable_replication

        if placement_many is not None and batch.vectorized() and hot_pages:
            pages, domains, accesses, write_fraction = sample_arrays(hot_pages)
            nodes = placement_many(pages)
            if nodes is not None:
                self._decide_batch(
                    result, metrics, pages, domains, accesses,
                    write_fraction, np.asarray(nodes),
                )
                return result

        budget = self.config.migration_budget
        decided_pages = set()

        def remaining() -> int:
            return budget - len(result.decisions)

        if result.replication_enabled and remaining() > 0:
            for decision in replication_decisions(
                hot_pages, placement, remaining()
            ):
                result.decisions.append(decision)
                decided_pages.add(decision.page)

        if result.migration_enabled and remaining() > 0:
            for decision in migration_decisions(
                hot_pages,
                placement,
                remaining(),
                self.config.single_node_share,
            ):
                if decision.page not in decided_pages:
                    result.decisions.append(decision)
                    decided_pages.add(decision.page)

        if result.interleave_enabled and remaining() > 0:
            candidates = [s for s in hot_pages if s.page not in decided_pages]
            for decision in interleave_decisions(
                candidates,
                placement,
                metrics.overloaded_nodes,
                metrics.underloaded_nodes,
                remaining(),
                self.rng,
            ):
                result.decisions.append(decision)
                decided_pages.add(decision.page)
        return result

    def _decide_batch(
        self,
        result: IterationResult,
        metrics: CarrefourMetrics,
        pages: np.ndarray,
        domains: np.ndarray,
        accesses: np.ndarray,
        write_fraction: np.ndarray,
        nodes: np.ndarray,
    ) -> None:
        """Mask-based page selection, decision-for-decision identical to
        the scalar loops: same budget consumption (candidates count
        against the budget before cross-heuristic dedup, as in the scalar
        walk), same first-occurrence dedup order, and the interleave RNG
        drawn as one array — ``rng.integers(n, size=k)`` consumes the
        stream exactly like ``k`` sequential scalar draws.
        """
        budget = self.config.migration_budget
        decisions = result.decisions
        decided: set = set()

        def decided_mask(candidate_pages: np.ndarray) -> np.ndarray:
            return np.isin(
                candidate_pages,
                np.fromiter(decided, dtype=np.int64, count=len(decided)),
            )

        if result.replication_enabled and budget > len(decisions):
            mask = replication_candidates(accesses, write_fraction, nodes)
            for pos in np.nonzero(mask)[0][: budget - len(decisions)].tolist():
                page = int(pages[pos])
                decisions.append(
                    PageDecision(
                        page, int(domains[pos]), Action.REPLICATE, int(nodes[pos])
                    )
                )
                decided.add(page)

        if result.migration_enabled and budget > len(decisions):
            mask, dominant = migration_candidates(
                accesses, nodes, self.config.single_node_share
            )
            positions = np.nonzero(mask)[0][: budget - len(decisions)]
            cand_pages = pages[positions]
            keep = np.zeros(positions.size, dtype=bool)
            keep[np.unique(cand_pages, return_index=True)[1]] = True
            if decided:
                keep &= ~decided_mask(cand_pages)
            for pos in positions[keep].tolist():
                page = int(pages[pos])
                decisions.append(
                    PageDecision(
                        page, int(domains[pos]), Action.MIGRATE, int(dominant[pos])
                    )
                )
                decided.add(page)

        if (
            result.interleave_enabled
            and budget > len(decisions)
            and metrics.overloaded_nodes
            and metrics.underloaded_nodes
        ):
            targets = np.asarray(list(metrics.underloaded_nodes), dtype=np.int64)
            mask = interleave_candidates(nodes, metrics.overloaded_nodes)
            if decided:
                mask &= ~decided_mask(pages)
            positions = np.nonzero(mask)[0][: budget - len(decisions)]
            if positions.size:
                dsts = targets[self.rng.integers(len(targets), size=positions.size)]
                for pos, dst in zip(positions.tolist(), dsts.tolist()):
                    decisions.append(
                        PageDecision(
                            int(pages[pos]), int(domains[pos]),
                            Action.INTERLEAVE, int(dst),
                        )
                    )


class SystemComponent:
    """Counter access and migration execution (inside Xen in the port).

    Args:
        counters: the machine's performance counters; the component claims
            them exclusively — this is why the paper's Table 1 could not
            measure its metrics while Carrefour ran.
        placement: resolves a page to its current node.
        apply_fn: executes one decision (a p2m migration in the Xen port,
            a direct page move in Linux mode); returns True when the page
            actually moved.
        placement_many: optional batch form of ``placement`` — takes a
            page array, returns per-page nodes with -1 for unmapped (or
            None when batch resolution is unavailable, falling back to
            the scalar walk).
    """

    OWNER = "carrefour"

    def __init__(
        self,
        counters: PerfCounters,
        placement: PlacementFn,
        apply_fn: Callable[[PageDecision], bool],
        placement_many=None,
    ):
        self.counters = counters
        self.placement = placement
        self.apply_fn = apply_fn
        self.placement_many = placement_many
        reg = obs.registry()
        self._total_applied = reg.counter("carrefour.applied")
        self._total_commands = reg.counter("carrefour.commands")
        counters.claim(self.OWNER)

    @property
    def total_applied(self) -> int:
        """Decisions that actually moved a page."""
        return self._total_applied.value

    @total_applied.setter
    def total_applied(self, value: int) -> None:
        self._total_applied.value = value

    @property
    def total_commands(self) -> int:
        """Decisions received from the user component."""
        return self._total_commands.value

    @total_commands.setter
    def total_commands(self, value: int) -> None:
        self._total_commands.value = value

    def apply(self, decisions: Sequence[PageDecision]) -> int:
        """Execute a command batch from the user component."""
        applied = 0
        for decision in decisions:
            self.total_commands += 1
            if self.apply_fn(decision):
                applied += 1
        self.total_applied += applied
        return applied

    def shutdown(self) -> None:
        """Release the performance counters."""
        self.counters.release(self.OWNER)


class CarrefourEngine:
    """One Carrefour instance: user + system components wired together.

    Args:
        system: the in-kernel/in-hypervisor half.
        config: thresholds.
        rng: deterministic random source for the interleave heuristic.
        command_channel: optional callable carrying command batches from
            the user to the system component — the Xen port routes this
            through the ``CARREFOUR_CONTROL`` hypercall. Defaults to a
            direct call.
    """

    def __init__(
        self,
        system: SystemComponent,
        config: CarrefourConfig = CarrefourConfig(),
        rng: Optional[np.random.Generator] = None,
        command_channel: Optional[Callable[[Sequence[PageDecision]], int]] = None,
    ):
        self.system = system
        self.config = config
        self.user = UserComponent(config, rng or np.random.default_rng(0))
        self.command_channel = command_channel or system.apply
        self.history: List[IterationResult] = []
        self._iterations = obs.registry().counter("carrefour.iterations")

    def run_iteration(self, observation: EpochObservation) -> IterationResult:
        """One sampling/decision/apply cycle."""
        metrics = compute_metrics(observation)
        result = self.user.decide(
            metrics,
            observation.hot_pages,
            self.system.placement,
            self.system.placement_many,
        )
        if result.decisions:
            result.applied = self.command_channel(result.decisions)
        self.history.append(result)
        self._iterations.inc()
        tr = obs.tracer()
        if tr.enabled:
            tr.instant(
                "carrefour.iteration",
                cat="policy",
                decisions=len(result.decisions),
                applied=result.applied,
            )
        return result

    def iteration_cost_seconds(self, result: IterationResult) -> float:
        """Fixed engine overhead (migration copy time is accounted by the
        internal interface / Linux backend, not here)."""
        if result.metrics.access_rate_per_s < self.config.min_access_rate_per_s:
            return 0.0
        return self.config.iteration_overhead_seconds

    def shutdown(self) -> None:
        """Stop the engine and release the counters."""
        self.system.shutdown()
