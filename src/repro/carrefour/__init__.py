"""The Carrefour memory-traffic management engine, ported to the hypervisor.

Carrefour (Dashti et al., ASPLOS 2013) dynamically migrates hot pages to
balance memory controllers and improve locality. The original splits into:

* a **system component** in the kernel: reads hardware counters, attaches
  metrics to hot pages, migrates pages on request;
* a **user component** in user space: decides which pages move where.

The paper's port (section 4.3) keeps the split: the system component runs
*inside Xen* and observes vCPUs instead of threads; the user component runs
as a dom0 process and talks to it through a forwarded hypercall.
"""

from repro.carrefour.metrics import CarrefourMetrics, compute_metrics
from repro.carrefour.heuristics import (
    Action,
    PageDecision,
    interleave_decisions,
    migration_decisions,
    replication_decisions,
)
from repro.carrefour.engine import (
    CarrefourConfig,
    CarrefourEngine,
    SystemComponent,
    UserComponent,
)

__all__ = [
    "CarrefourMetrics",
    "compute_metrics",
    "Action",
    "PageDecision",
    "interleave_decisions",
    "migration_decisions",
    "replication_decisions",
    "CarrefourConfig",
    "CarrefourEngine",
    "SystemComponent",
    "UserComponent",
]
