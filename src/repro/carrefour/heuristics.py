"""Carrefour's three per-page heuristics (paper section 3.4).

* **interleave**: when memory controllers are overloaded, randomly migrate
  hot pages from overloaded nodes to underloaded nodes;
* **migration**: when the interconnect saturates, migrate hot pages that
  are remotely accessed by a *single* node to that node;
* **replication**: replicate hot read-only pages accessed by several
  nodes. The paper implements but *discards* this heuristic in the Xen
  port (marginal gains, deep memory-manager changes), so our engine ships
  it disabled by default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.hardware.counters import HotPageSample


class Action(enum.Enum):
    """What to do with one hot page."""

    MIGRATE = "migrate"
    INTERLEAVE = "interleave"
    REPLICATE = "replicate"


@dataclass(frozen=True)
class PageDecision:
    """One decision of the user component.

    Attributes:
        page: the page (gpfn in hypervisor mode, vpfn in Linux mode).
        domain_id: owning domain.
        action: which heuristic fired.
        dst_node: target node (meaningless for REPLICATE).
    """

    page: int
    domain_id: int
    action: Action
    dst_node: int


#: Returns the node currently backing a page (None if unmapped).
PlacementFn = Callable[[int], Optional[int]]


def sample_arrays(hot_pages: Sequence[HotPageSample]):
    """Columnar arrays over a hot-page sample list.

    The vectorized decide path works on these instead of per-sample
    attribute access: returns ``(pages, domains, accesses, write_fraction)``
    where ``accesses`` is the (num_samples, num_nodes) count matrix.
    """
    n = len(hot_pages)
    pages = np.fromiter((s.page for s in hot_pages), dtype=np.int64, count=n)
    domains = np.fromiter(
        (s.domain_id for s in hot_pages), dtype=np.int64, count=n
    )
    accesses = np.array([s.node_accesses for s in hot_pages], dtype=np.int64)
    write_fraction = np.fromiter(
        (s.write_fraction for s in hot_pages), dtype=np.float64, count=n
    )
    return pages, domains, accesses, write_fraction


def migration_candidates(
    accesses: np.ndarray, nodes: np.ndarray, single_node_share: float
):
    """Mask form of :func:`migration_decisions`'s per-sample filter.

    Returns ``(mask, dominant)``: which samples a scalar walk would pick
    (dominant node holds at least ``single_node_share`` of the accesses
    and the page lives elsewhere), and each sample's dominant node.
    """
    totals = accesses.sum(axis=1)
    dominant = np.argmax(accesses, axis=1)
    dom_counts = accesses[np.arange(accesses.shape[0]), dominant]
    mask = (
        (totals > 0)
        & (dom_counts >= single_node_share * totals)
        & (nodes >= 0)
        & (nodes != dominant)
    )
    return mask, dominant


def interleave_candidates(
    nodes: np.ndarray, overloaded: Sequence[int]
) -> np.ndarray:
    """Mask form of :func:`interleave_decisions`'s per-sample filter."""
    return (nodes >= 0) & np.isin(
        nodes, np.asarray(list(overloaded), dtype=np.int64)
    )


def replication_candidates(
    accesses: np.ndarray,
    write_fraction: np.ndarray,
    nodes: np.ndarray,
    max_write_fraction: float = 0.05,
    min_sharer_nodes: int = 2,
) -> np.ndarray:
    """Mask form of :func:`replication_decisions`'s per-sample filter."""
    sharers = (accesses > 0).sum(axis=1)
    return (
        (write_fraction <= max_write_fraction)
        & (sharers >= min_sharer_nodes)
        & (nodes >= 0)
    )


def migration_decisions(
    hot_pages: Sequence[HotPageSample],
    placement: PlacementFn,
    budget: int,
    single_node_share: float = 0.9,
) -> List[PageDecision]:
    """Migrate pages remotely accessed by (essentially) a single node.

    A page qualifies when one node performs at least ``single_node_share``
    of its accesses and the page does not already live there.
    """
    decisions: List[PageDecision] = []
    for sample in hot_pages:
        if len(decisions) >= budget:
            break
        total = sample.total
        if total == 0:
            continue
        dominant = sample.dominant_node
        if sample.node_accesses[dominant] < single_node_share * total:
            continue
        current = placement(sample.page)
        if current is None or current == dominant:
            continue
        decisions.append(
            PageDecision(sample.page, sample.domain_id, Action.MIGRATE, dominant)
        )
    return decisions


def interleave_decisions(
    hot_pages: Sequence[HotPageSample],
    placement: PlacementFn,
    overloaded: Sequence[int],
    underloaded: Sequence[int],
    budget: int,
    rng: np.random.Generator,
) -> List[PageDecision]:
    """Randomly spread hot pages from overloaded to underloaded nodes."""
    if not overloaded or not underloaded:
        return []
    overloaded_set = set(overloaded)
    targets = list(underloaded)
    decisions: List[PageDecision] = []
    for sample in hot_pages:
        if len(decisions) >= budget:
            break
        current = placement(sample.page)
        if current is None or current not in overloaded_set:
            continue
        dst = int(targets[rng.integers(len(targets))])
        decisions.append(
            PageDecision(sample.page, sample.domain_id, Action.INTERLEAVE, dst)
        )
    return decisions


def replication_decisions(
    hot_pages: Sequence[HotPageSample],
    placement: PlacementFn,
    budget: int,
    max_write_fraction: float = 0.05,
    min_sharer_nodes: int = 2,
) -> List[PageDecision]:
    """Replicate hot, (almost) read-only pages shared by several nodes.

    Kept for completeness and for the ablation benchmark; the engine
    disables it by default, like the paper's Xen port.
    """
    decisions: List[PageDecision] = []
    for sample in hot_pages:
        if len(decisions) >= budget:
            break
        if sample.write_fraction > max_write_fraction:
            continue
        sharer_nodes = sum(1 for c in sample.node_accesses if c > 0)
        if sharer_nodes < min_sharer_nodes:
            continue
        current = placement(sample.page)
        if current is None:
            continue
        decisions.append(
            PageDecision(sample.page, sample.domain_id, Action.REPLICATE, current)
        )
    return decisions
