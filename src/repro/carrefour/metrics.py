"""Global metrics driving Carrefour's heuristic selection.

Each iteration, Carrefour first looks at machine-wide counters to decide
*which* heuristics to enable (paper section 3.4):

* if overall memory traffic is low, do nothing (migrations would only
  cost);
* if the memory controllers are imbalanced, enable the **interleave**
  heuristic;
* if the interconnect is loaded / locality is poor, enable the
  **migration** (and, in the original, **replication**) heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.policies.base import EpochObservation


@dataclass(frozen=True)
class CarrefourMetrics:
    """Machine-wide view of one epoch, as Carrefour's user component sees it.

    Attributes:
        access_rate_per_s: memory accesses per second, all nodes.
        imbalance: relative std-dev of per-node access counts.
        local_fraction: fraction of node-local accesses.
        max_link_rho: utilisation of the busiest interconnect link.
        node_loads: per-node access counts this epoch.
        overloaded_nodes: nodes above (1 + spread) * mean load.
        underloaded_nodes: nodes below (1 - spread) * mean load.
    """

    access_rate_per_s: float
    imbalance: float
    local_fraction: float
    max_link_rho: float
    node_loads: Tuple[float, ...]
    overloaded_nodes: Tuple[int, ...]
    underloaded_nodes: Tuple[int, ...]


def compute_metrics(
    observation: EpochObservation, load_spread: float = 0.25
) -> CarrefourMetrics:
    """Digest an epoch observation into Carrefour's global metrics.

    Args:
        observation: counters for the last epoch.
        load_spread: relative distance from the mean load beyond which a
            node counts as over/underloaded.
    """
    loads = observation.access_matrix.sum(axis=0)
    mean = float(loads.mean())
    overloaded: List[int] = []
    underloaded: List[int] = []
    if mean > 0:
        for node, load in enumerate(loads):
            if load > mean * (1.0 + load_spread):
                overloaded.append(node)
            elif load < mean * (1.0 - load_spread):
                underloaded.append(node)
    rate = (
        observation.total_accesses / observation.epoch_seconds
        if observation.epoch_seconds > 0
        else 0.0
    )
    return CarrefourMetrics(
        access_rate_per_s=rate,
        imbalance=observation.imbalance,
        local_fraction=observation.local_fraction,
        max_link_rho=observation.max_link_rho,
        node_loads=tuple(float(l) for l in loads),
        overloaded_nodes=tuple(overloaded),
        underloaded_nodes=tuple(underloaded),
    )
