"""``python -m repro.perfbench`` — run the perf suite, write BENCH JSON.

Examples::

    python -m repro.perfbench --label pr
    python -m repro.perfbench --label pr --baseline benchmarks/perf/baseline.json
    python -m repro.perfbench --label quick --worlds small --repeat 2

To refresh the committed reference::

    python -m repro.perfbench --label baseline --output-dir benchmarks/perf
    mv benchmarks/perf/BENCH_baseline.json benchmarks/perf/baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import ExitStack
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.config import SimConfig
from repro.perfbench.bench import (
    DEFAULT_MULTI_RUN_REPEAT,
    DEFAULT_PAGE_PATH_REPEAT,
    DEFAULT_REPEAT,
    DEFAULT_SOLVER_ITERATIONS,
    run_benchmarks,
)
from repro.perfbench.worlds import WORLD_PRESETS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perfbench",
        description="Benchmark run_world and the congestion-solver hot path.",
    )
    parser.add_argument(
        "--label",
        default="local",
        help="suffix of the output file BENCH_<label>.json (default: local)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=DEFAULT_REPEAT,
        help=f"timeit repetitions per preset (default: {DEFAULT_REPEAT})",
    )
    parser.add_argument(
        "--worlds",
        nargs="+",
        choices=sorted(WORLD_PRESETS),
        default=None,
        help="world presets to time (default: all)",
    )
    parser.add_argument(
        "--solver-iterations",
        type=int,
        default=DEFAULT_SOLVER_ITERATIONS,
        help="solver passes per microbench sample "
        f"(default: {DEFAULT_SOLVER_ITERATIONS})",
    )
    parser.add_argument(
        "--no-page-path",
        action="store_true",
        help="skip the page-path (array vs dict/loop p2m) comparison",
    )
    parser.add_argument(
        "--no-migration",
        action="store_true",
        help="skip the migration (batched vs scalar dirty-round copy) "
        "comparison",
    )
    parser.add_argument(
        "--no-multi-run",
        action="store_true",
        help="skip the multi-run (batched engine vs serial sweep) comparison",
    )
    parser.add_argument(
        "--multi-run-repeat",
        type=int,
        default=DEFAULT_MULTI_RUN_REPEAT,
        help="timeit repetitions of the multi-run comparison "
        f"(default: {DEFAULT_MULTI_RUN_REPEAT})",
    )
    parser.add_argument(
        "--page-path-repeat",
        type=int,
        default=DEFAULT_PAGE_PATH_REPEAT,
        help="timeit repetitions of the page-path comparison "
        f"(default: {DEFAULT_PAGE_PATH_REPEAT})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=SimConfig().rng_seed,
        help="rng seed for the benchmark worlds (default: SimConfig default)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory receiving BENCH_<label>.json (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline BENCH json to print a delta against",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a deterministic trace + metrics file for the bench runs",
    )
    return parser


def _print_report(payload: dict, out) -> None:
    print(f"perfbench [{payload['label']}] seed={payload['seed']}", file=out)
    for preset, stats in payload["worlds"].items():
        print(
            f"  {preset:>7s}: median {stats['median_seconds']:.3f}s "
            f"(IQR {stats['iqr_seconds']:.3f}s), "
            f"{stats['epochs']:.0f} epochs, "
            f"{stats['epochs_per_second']:.1f} epochs/s",
            file=out,
        )
    micro = payload["solver_microbench"]
    print(
        f"  solver : vectorized {micro['vectorized_seconds']:.4f}s vs "
        f"loop {micro['loop_seconds']:.4f}s over "
        f"{micro['iterations']:.0f} iterations -> "
        f"{micro['speedup']:.1f}x",
        file=out,
    )
    page_path = payload.get("page_path")
    if page_path:
        match = "ok" if page_path["results_match"] else "MISMATCH"
        print(
            f"  page_path [{page_path['preset']}]: vectorized "
            f"{page_path['vectorized_median_seconds']:.3f}s vs scalar oracle "
            f"{page_path['scalar_median_seconds']:.3f}s -> "
            f"{page_path['speedup']:.1f}x (epochs {match})",
            file=out,
        )
    migration = payload.get("migration")
    if migration:
        match = "ok" if migration["results_match"] else "MISMATCH"
        print(
            f"  migration: batched {migration['batched_seconds']:.4f}s vs "
            f"scalar {migration['scalar_seconds']:.4f}s over "
            f"{migration['pages_per_transfer']:.0f} page copies -> "
            f"{migration['speedup']:.1f}x (images {match})",
            file=out,
        )
    multi_run = payload.get("multi_run")
    if multi_run:
        match = "ok" if multi_run["results_match"] else "MISMATCH"
        print(
            f"  multi_run: batched {multi_run['batched_median_seconds']:.3f}s "
            f"vs serial {multi_run['serial_median_seconds']:.3f}s over "
            f"{multi_run['num_worlds']:.0f} worlds x "
            f"{multi_run['vms_per_world']:.0f} VMs -> "
            f"{multi_run['speedup']:.1f}x (reports {match})",
            file=out,
        )


def _print_delta(payload: dict, baseline: dict, out) -> None:
    print(f"delta vs baseline [{baseline.get('label', '?')}]:", file=out)
    base_worlds = baseline.get("worlds", {})
    for preset, stats in payload["worlds"].items():
        ref = base_worlds.get(preset)
        if not ref:
            print(f"  {preset:>7s}: (not in baseline)", file=out)
            continue
        ratio = stats["median_seconds"] / ref["median_seconds"]
        print(
            f"  {preset:>7s}: {ratio:6.2f}x baseline median "
            f"({stats['median_seconds']:.3f}s vs {ref['median_seconds']:.3f}s)",
            file=out,
        )
    ref_micro = baseline.get("solver_microbench")
    if ref_micro:
        micro = payload["solver_microbench"]
        print(
            f"  solver : speedup {micro['speedup']:.1f}x "
            f"(baseline {ref_micro['speedup']:.1f}x)",
            file=out,
        )
    ref_migration = baseline.get("migration")
    migration = payload.get("migration")
    if ref_migration and migration:
        print(
            f"  migration: speedup {migration['speedup']:.1f}x "
            f"(baseline {ref_migration['speedup']:.1f}x)",
            file=out,
        )
    ref_multi = baseline.get("multi_run")
    multi_run = payload.get("multi_run")
    if ref_multi and multi_run:
        print(
            f"  multi_run: speedup {multi_run['speedup']:.1f}x "
            f"(baseline {ref_multi['speedup']:.1f}x)",
            file=out,
        )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    config = SimConfig(rng_seed=args.seed)
    obs_session = None
    with ExitStack() as stack:
        if args.trace is not None:
            obs_session = stack.enter_context(obs.session())
        payload = run_benchmarks(
            label=args.label,
            config=config,
            repeat=args.repeat,
            worlds=args.worlds,
            solver_iterations=args.solver_iterations,
            page_path=not args.no_page_path,
            page_path_repeat=args.page_path_repeat,
            migration=not args.no_migration,
            multi_run=not args.no_multi_run,
            multi_run_repeat=args.multi_run_repeat,
        )
    if obs_session is not None:
        obs_session.write_trace(args.trace)
        print(f"trace written to {args.trace}", file=sys.stdout)
    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{args.label}.json"
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _print_report(payload, sys.stdout)
    print(f"wrote {out_path}", file=sys.stdout)
    if args.baseline:
        baseline_path = Path(args.baseline)
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
            _print_delta(payload, baseline, sys.stdout)
        else:
            print(f"baseline {baseline_path} not found; skipping delta")
    return 0
