"""Performance-benchmark harness for the simulation engine.

``python -m repro.perfbench --label pr`` times :func:`repro.sim.engine.
run_world` on three world presets (2/4/8 nodes, 1-2 VMs), microbenchmarks
the vectorized congestion solver against the committed loop oracle, and
writes ``BENCH_<label>.json`` (median, IQR, epochs/s per world). The JSON
is the bench trajectory every perf PR is judged against; the committed
reference lives at ``benchmarks/perf/baseline.json``.

Timing goes through the stdlib :mod:`timeit` module; every stochastic
input is seeded from :class:`repro.config.SimConfig` (RPR002: no wall
clock, no unseeded randomness).
"""

from repro.perfbench.bench import (
    bench_solver,
    bench_world,
    run_benchmarks,
)
from repro.perfbench.worlds import WORLD_PRESETS, build_world

__all__ = [
    "WORLD_PRESETS",
    "bench_solver",
    "bench_world",
    "build_world",
    "run_benchmarks",
]
