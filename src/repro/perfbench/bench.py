"""Timeit-based measurement of the engine and the solver hot path.

Every measurement here is wall-clock-free in *our* code: timing is
delegated to :class:`timeit.Timer`, worlds are rebuilt from a seeded
config for every sample, and the microbenchmark's access matrix comes
from a generator seeded by ``SimConfig.rng_seed``.
"""

from __future__ import annotations

import json
import timeit
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.config import SimConfig
from repro.core.multirun import run_worlds, scalar_multirun
from repro.hardware.presets import amd48
from repro.hypervisor.domain import Domain
from repro.perfbench import oracle
from repro.perfbench.worlds import WORLD_PRESETS, build_world
from repro.runner import build_world as build_request_world
from repro.sim.engine import CongestionSolver, run_world
from repro.sim.runspec import RunRequest, VmRequest

#: timeit repetitions per world preset.
DEFAULT_REPEAT = 5
#: timeit repetitions of the page-path comparison (each sample simulates
#: a full page-heavy world twice, so this stays smaller than the world
#: benchmarks' repeat).
DEFAULT_PAGE_PATH_REPEAT = 3
#: World preset used for the page-path comparison.
PAGE_PATH_PRESET = "xlarge"
#: Solver (congestion + latency_matrix) invocations per microbench sample.
DEFAULT_SOLVER_ITERATIONS = 200
#: Mean access-matrix entry of the microbenchmark (accesses per epoch
#: between one node pair — enough to load controllers and links).
MICROBENCH_TRAFFIC = 3e7
#: Worlds per multi-run sweep sample (the issue's acceptance bar is
#: phrased over a 16-world sweep).
MULTI_RUN_WORLDS = 16
#: timeit repetitions of the multi-run comparison (each sample simulates
#: the full sweep twice — serial then batched — so this stays small).
DEFAULT_MULTI_RUN_REPEAT = 3
#: Four-VM consolidation mixes cycled across the sweep's worlds: the
#: paper's Table 2 shape (several VMs sharing one host), and the shape
#: where per-run python dispatch costs the serial driver the most.
MULTI_RUN_APP_MIXES = (
    ("cg.C", "sp.C", "swaptions", "streamcluster"),
    ("ep.D", "ft.C", "lu.C", "cg.C"),
    ("swaptions", "ep.D", "sp.C", "ft.C"),
    ("lu.C", "streamcluster", "cg.C", "swaptions"),
)
#: Placement policies cycled across the sweep's worlds.
MULTI_RUN_POLICIES = ("round-4k", "first-touch", "round-1g")
#: Epoch length of the sweep's worlds — short epochs mean many epochs,
#: which is what a fixed-machine parameter sweep looks like.
MULTI_RUN_EPOCH_SECONDS = 0.25
#: Page scale of the sweep's worlds (coarse pages keep world build cheap;
#: build time is untimed either way).
MULTI_RUN_PAGE_SCALE = 4096
#: vCPUs per VM — four 6-vCPU domains fill half the AMD48's pCPUs.
MULTI_RUN_VCPUS = 6
#: Resident pages of the migration microbench's source domain.
DEFAULT_MIGRATION_PAGES = 4096
#: Pre-copy rounds per migration sample (round 1 + dirty rounds).
DEFAULT_MIGRATION_ROUNDS = 8
#: Dirty pages re-copied in every round after the first.
DEFAULT_MIGRATION_DIRTY_PAGES = 512


def _spread(samples: List[float]) -> Dict[str, float]:
    return {
        "median_seconds": float(np.median(samples)),
        "iqr_seconds": float(
            np.percentile(samples, 75) - np.percentile(samples, 25)
        ),
        "min_seconds": float(np.min(samples)),
    }


def bench_world(
    preset: str, config: SimConfig, repeat: int = DEFAULT_REPEAT
) -> Dict[str, float]:
    """Time ``run_world`` on a preset; returns median/IQR/epochs-per-s.

    A fresh world is built (untimed) for every sample so each timing
    covers exactly one full simulation of identical work.
    """
    samples: List[float] = []
    epochs = 0
    for _ in range(max(1, repeat)):
        world = build_world(preset, config)
        holder: Dict[str, object] = {}

        def timed() -> None:
            holder["results"] = run_world(world)

        samples.append(timeit.Timer(timed).timeit(number=1))
        epochs = max(r.epochs for r in holder["results"])
    stats = _spread(samples)
    stats["epochs"] = float(epochs)
    stats["epochs_per_second"] = epochs / stats["median_seconds"]
    return stats


def bench_solver(
    config: SimConfig,
    repeat: int = DEFAULT_REPEAT,
    iterations: int = DEFAULT_SOLVER_ITERATIONS,
) -> Dict[str, float]:
    """Microbenchmark the 8-node solve loop against the loop oracle.

    One iteration is one ``congestion()`` + ``latency_matrix()`` pass over
    a seeded random access matrix on the AMD48 machine — the exact work
    the engine performs per fixed-point round.
    """
    machine = amd48(config=config)
    solver = CongestionSolver(machine)
    rng = np.random.default_rng(config.rng_seed)
    n = machine.num_nodes
    matrix = rng.uniform(0.0, MICROBENCH_TRAFFIC, size=(n, n))

    def vectorized() -> None:
        rho_c, rho_l = solver.congestion(matrix, 1.0)
        solver.latency_matrix(rho_c, rho_l)

    def loop() -> None:
        rho_c, rho_l = oracle.loop_congestion(solver, matrix, 1.0)
        oracle.loop_latency_matrix(solver, rho_c, rho_l)

    vec_s = min(
        timeit.Timer(vectorized).repeat(repeat=max(1, repeat), number=iterations)
    )
    loop_s = min(
        timeit.Timer(loop).repeat(repeat=max(1, repeat), number=iterations)
    )
    return {
        "iterations": float(iterations),
        "vectorized_seconds": vec_s,
        "loop_seconds": loop_s,
        "speedup": loop_s / vec_s if vec_s else float("inf"),
    }


def bench_page_path(
    config: SimConfig,
    repeat: int = DEFAULT_PAGE_PATH_REPEAT,
    preset: str = PAGE_PATH_PRESET,
) -> Dict[str, float]:
    """Array-backed page path vs the dict/loop oracle on a page-heavy world.

    Times ``run_world`` (which includes guest init — the fault storm the
    page scale multiplies) on the same preset twice: once with the
    vectorized backend and once under :func:`oracle.scalar_page_path`,
    which swaps in the dict-backed P2M and forces every batch entry point
    through its scalar loop. The world is built *inside* the oracle
    context so domain creation itself uses the dict table. Both runs must
    produce identical epoch counts — the speedup is only meaningful if
    the two backends did the same work.
    """

    def sample(scalar: bool) -> float:
        world = build_world(preset, config)
        holder: Dict[str, object] = {}

        def timed() -> None:
            holder["results"] = run_world(world)

        seconds = timeit.Timer(timed).timeit(number=1)
        epochs_seen.add(max(r.epochs for r in holder["results"]))
        return seconds

    epochs_seen: set = set()
    vec_samples = [sample(scalar=False) for _ in range(max(1, repeat))]
    scalar_samples = []
    with oracle.scalar_page_path():
        for _ in range(max(1, repeat)):
            scalar_samples.append(sample(scalar=True))
    vec_s = float(np.median(vec_samples))
    scalar_s = float(np.median(scalar_samples))
    return {
        "preset": preset,
        "repeat": float(max(1, repeat)),
        "epochs": float(max(epochs_seen)),
        "results_match": float(len(epochs_seen) == 1),
        "vectorized_median_seconds": vec_s,
        "scalar_median_seconds": scalar_s,
        "vectorized_min_seconds": float(np.min(vec_samples)),
        "scalar_min_seconds": float(np.min(scalar_samples)),
        "speedup": scalar_s / vec_s if vec_s else float("inf"),
    }


def _multi_run_requests(config: SimConfig, num_worlds: int) -> List[RunRequest]:
    """The sweep's requests: seeded, group-compatible, all distinct."""
    return [
        RunRequest(
            environment="xen",
            features="Xen",
            vms=tuple(
                VmRequest(
                    app=MULTI_RUN_APP_MIXES[i % len(MULTI_RUN_APP_MIXES)][v],
                    policy=MULTI_RUN_POLICIES[i % len(MULTI_RUN_POLICIES)],
                    num_vcpus=MULTI_RUN_VCPUS,
                )
                for v in range(len(MULTI_RUN_APP_MIXES[0]))
            ),
            config=SimConfig(
                rng_seed=config.rng_seed + i,
                epoch_seconds=MULTI_RUN_EPOCH_SECONDS,
                page_scale=MULTI_RUN_PAGE_SCALE,
            ),
        )
        for i in range(num_worlds)
    ]


def bench_multi_run(
    config: SimConfig,
    repeat: int = DEFAULT_MULTI_RUN_REPEAT,
    num_worlds: int = MULTI_RUN_WORLDS,
) -> Dict[str, float]:
    """Batched multi-run engine vs per-run serial execution of one sweep.

    One sample simulates a ``num_worlds``-world consolidation sweep
    (four 6-vCPU VMs per world, app mixes and policies cycling, one
    seed per world) twice over fresh worlds: once through
    :func:`repro.core.multirun.run_worlds` and once world-by-world
    under :func:`~repro.core.multirun.scalar_multirun` — the committed
    scalar oracle, i.e. exactly what a sweep driver without the batched
    engine would execute. World building is untimed in both legs.
    ``results_match`` checks the full report output of every sample is
    byte-identical between the legs (sorted-key JSON of every
    ``RunResult``).
    """
    batched_samples: List[float] = []
    serial_samples: List[float] = []
    matches = True
    for _ in range(max(1, repeat)):
        requests = _multi_run_requests(config, num_worlds)
        worlds = [build_request_world(r) for r in requests]
        holder: Dict[str, object] = {}

        def batched() -> None:
            holder["batched"] = run_worlds(worlds)

        batched_samples.append(timeit.Timer(batched).timeit(number=1))
        serial_worlds = [build_request_world(r) for r in requests]

        def serial() -> None:
            with scalar_multirun():
                holder["serial"] = [run_world(w) for w in serial_worlds]

        serial_samples.append(timeit.Timer(serial).timeit(number=1))
        matches = matches and json.dumps(
            [[r.to_json() for r in group] for group in holder["batched"]],
            sort_keys=True,
        ) == json.dumps(
            [[r.to_json() for r in group] for group in holder["serial"]],
            sort_keys=True,
        )
    batched_min = float(np.min(batched_samples))
    serial_min = float(np.min(serial_samples))
    return {
        "num_worlds": float(num_worlds),
        "vms_per_world": float(len(MULTI_RUN_APP_MIXES[0])),
        "repeat": float(max(1, repeat)),
        "batched_median_seconds": float(np.median(batched_samples)),
        "serial_median_seconds": float(np.median(serial_samples)),
        "batched_min_seconds": batched_min,
        "serial_min_seconds": serial_min,
        # Fastest-over-fastest, like the solver and migration sections:
        # timeit's standard defense against scheduler noise (the slower
        # samples measure the host, not the code).
        "speedup": serial_min / batched_min if batched_min else float("inf"),
        "results_match": float(matches),
    }


def bench_migration(
    config: SimConfig,
    repeat: int = DEFAULT_REPEAT,
    pages: int = DEFAULT_MIGRATION_PAGES,
    rounds: int = DEFAULT_MIGRATION_ROUNDS,
    dirty_pages: int = DEFAULT_MIGRATION_DIRTY_PAGES,
) -> Dict[str, float]:
    """Batched vs scalar dirty-round copy (the live-migration data mover).

    One sample replays a full pre-copy transfer: round 1 protects and
    copies every resident page, each later round re-copies a seeded
    dirty set, and every round releases its protections afterwards —
    the ``write_protect_many`` / ``copy_stamps_from`` /
    ``unprotect_many`` sequence :class:`repro.cluster.LiveMigration`
    issues per epoch. The scalar variant spells identical rounds as
    per-page protect / one-page stamp copy / unprotect loops. Each
    variant transfers into its own destination domain and the two
    images must come out identical. Domains are built bare (no
    hypervisor, no sanitizer) so the batch entry points stay on their
    vectorized paths.
    """

    def build_domain(domain_id: int, name: str) -> Domain:
        return Domain(
            domain_id=domain_id,
            name=name,
            num_vcpus=1,
            memory_pages=pages,
            home_nodes=(0,),
        )

    source = build_domain(1, "bench-migration-src")
    gpfns = np.arange(pages, dtype=np.int64)
    source.p2m.set_entries(gpfns, gpfns)
    for gpfn in gpfns.tolist():
        source.write_stamp(gpfn, gpfn + 1)
    rng = np.random.default_rng(config.rng_seed)
    dirty = min(dirty_pages, pages)
    round_sets: List[np.ndarray] = [gpfns] + [
        np.sort(rng.choice(pages, size=dirty, replace=False)).astype(np.int64)
        for _ in range(max(0, rounds - 1))
    ]
    dest_batched = build_domain(2, "bench-migration-dst-batched")
    dest_scalar = build_domain(3, "bench-migration-dst-scalar")
    p2m = source.p2m

    def batched() -> None:
        for pending in round_sets:
            p2m.write_protect_many(pending)
            dest_batched.copy_stamps_from(source, pending)
            p2m.unprotect_many(pending)

    def scalar() -> None:
        for pending in round_sets:
            for gpfn in pending.tolist():
                p2m.write_protect(gpfn)
                dest_scalar.write_stamp(
                    gpfn, int(source.read_stamps([gpfn])[0])
                )
                p2m.unprotect(gpfn)

    batched_s = min(
        timeit.Timer(batched).repeat(repeat=max(1, repeat), number=1)
    )
    scalar_s = min(
        timeit.Timer(scalar).repeat(repeat=max(1, repeat), number=1)
    )
    return {
        "pages": float(pages),
        "rounds": float(len(round_sets)),
        "dirty_pages": float(dirty),
        "pages_per_transfer": float(sum(s.size for s in round_sets)),
        "batched_seconds": batched_s,
        "scalar_seconds": scalar_s,
        "speedup": scalar_s / batched_s if batched_s else float("inf"),
        "results_match": float(
            np.array_equal(
                dest_batched.image_snapshot(), dest_scalar.image_snapshot()
            )
        ),
    }


def run_benchmarks(
    label: str,
    config: Optional[SimConfig] = None,
    repeat: int = DEFAULT_REPEAT,
    worlds: Optional[Iterable[str]] = None,
    solver_iterations: int = DEFAULT_SOLVER_ITERATIONS,
    page_path: bool = True,
    page_path_repeat: int = DEFAULT_PAGE_PATH_REPEAT,
    migration: bool = True,
    multi_run: bool = True,
    multi_run_repeat: int = DEFAULT_MULTI_RUN_REPEAT,
) -> Dict[str, object]:
    """Run the full suite; returns the ``BENCH_<label>.json`` payload."""
    config = config or SimConfig()
    selected = list(worlds) if worlds is not None else sorted(WORLD_PRESETS)
    payload: Dict[str, object] = {
        "label": label,
        "seed": config.rng_seed,
        "repeat": repeat,
        "worlds": {
            preset: bench_world(preset, config, repeat=repeat)
            for preset in selected
        },
        "solver_microbench": bench_solver(
            config, repeat=repeat, iterations=solver_iterations
        ),
    }
    if page_path:
        payload["page_path"] = bench_page_path(config, repeat=page_path_repeat)
    if migration:
        payload["migration"] = bench_migration(config, repeat=repeat)
    if multi_run:
        payload["multi_run"] = bench_multi_run(config, repeat=multi_run_repeat)
    return payload
