"""Benchmark world presets: small / medium / large Xen worlds.

Each preset builds a fresh, fully deterministic world (seeded from the
given :class:`~repro.config.SimConfig`) so repeated timings measure the
same work. Sizes follow the paper's setups: single-VM worlds on cut-down
machines for *small*/*medium*, and the AMD48 machine with two colocated
VMs — the consolidated configuration — for *large*.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.config import SimConfig
from repro.core.policies.base import PolicyName, PolicySpec
from repro.hardware.machine import Machine
from repro.hardware.presets import amd48, small_machine
from repro.sim.environment import VmSpec, World, XenEnvironment
from repro.workloads.app import AppSpec
from repro.workloads.suite import get_app

#: Simulated frames per node for the cut-down machines: 16 GiB per node
#: at the default page scale, enough for a realistically sized guest.
BENCH_FRAMES_PER_NODE = 16384

#: Page scale of the page-heavy preset: 8 real pages per simulated page
#: (32 KiB), i.e. 32x the page count of the default scale (256). This is
#: the world that exercises the array-backed page path — init faults,
#: event queues and placement updates all scale with the page count.
XLARGE_PAGE_SCALE = 8


def _bench_app(name: str, baseline_seconds: float) -> AppSpec:
    """A shortened copy of a suite application for repeatable timing."""
    return dataclasses.replace(
        get_app(name), baseline_seconds=baseline_seconds
    )


def _small_factory(config: SimConfig, num_nodes: int, cpus_per_node: int):
    def factory() -> Machine:
        return small_machine(
            num_nodes=num_nodes,
            cpus_per_node=cpus_per_node,
            frames_per_node=BENCH_FRAMES_PER_NODE,
            config=config,
        )

    return factory


def _build_small(config: SimConfig) -> World:
    """2 nodes, 1 VM, 4 vCPUs."""
    env = XenEnvironment(
        config=config, machine_factory=_small_factory(config, 2, 2)
    )
    spec = VmSpec(
        app=_bench_app("swaptions", 8.0),
        policy=PolicySpec(PolicyName.ROUND_4K),
    )
    return env.setup([spec])


def _build_medium(config: SimConfig) -> World:
    """4 nodes, 1 VM, 16 vCPUs."""
    env = XenEnvironment(
        config=config, machine_factory=_small_factory(config, 4, 4)
    )
    spec = VmSpec(
        app=_bench_app("facesim", 8.0),
        policy=PolicySpec(PolicyName.ROUND_4K),
    )
    return env.setup([spec])


def _build_large(config: SimConfig) -> World:
    """8 nodes (AMD48), 2 VMs pinned to machine halves."""
    env = XenEnvironment(
        config=config, machine_factory=lambda: amd48(config=config)
    )
    specs: List[VmSpec] = [
        VmSpec(
            app=_bench_app("cg.C", 8.0),
            policy=PolicySpec(PolicyName.ROUND_4K),
            num_vcpus=24,
            home_nodes=[0, 1, 2, 3],
            pin_pcpus=list(range(24)),
        ),
        VmSpec(
            app=_bench_app("sp.C", 8.0),
            policy=PolicySpec(PolicyName.ROUND_4K),
            num_vcpus=24,
            home_nodes=[4, 5, 6, 7],
            pin_pcpus=list(range(24, 48)),
        ),
    ]
    return env.setup(specs)


def _build_xlarge(config: SimConfig) -> World:
    """The large topology at page scale 8 — the page-heavy world."""
    return _build_large(
        dataclasses.replace(config, page_scale=XLARGE_PAGE_SCALE)
    )


WORLD_PRESETS: Dict[str, object] = {
    "small": _build_small,
    "medium": _build_medium,
    "large": _build_large,
    "xlarge": _build_xlarge,
}


def build_world(preset: str, config: SimConfig) -> World:
    """Build a fresh world for ``preset`` ("small", "medium", "large")."""
    try:
        builder = WORLD_PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown bench preset {preset!r}; "
            f"choose from {sorted(WORLD_PRESETS)}"
        ) from None
    return builder(config)
