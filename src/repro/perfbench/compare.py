"""``python -m repro.perfbench.compare`` — non-gating perf regression diff.

CI runs this after a fresh benchmark: it compares each world's median
against the committed baseline and prints one GitHub Actions
``::warning::`` annotation per world that regressed beyond the threshold.
It never fails the build — timing noise on shared runners would make a
hard gate flaky — so the exit code is 0 whenever both files parse.

Example::

    python -m repro.perfbench.compare BENCH_pr.json \
        benchmarks/perf/baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

#: A world is flagged when its median is more than this fraction slower
#: than the baseline median (0.20 = 20% regression).
DEFAULT_THRESHOLD = 0.20


def compare_worlds(
    payload: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> List[Dict[str, object]]:
    """Per-world comparison rows, slowest-regression first.

    Each row has ``world``, ``ratio`` (current median / baseline median),
    ``current_seconds``, ``baseline_seconds`` and ``regressed`` (True when
    the ratio exceeds ``1 + threshold``). Worlds missing from either file
    are skipped — a freshly added preset has nothing to regress against.
    """
    rows: List[Dict[str, object]] = []
    base_worlds = baseline.get("worlds", {})
    for world, stats in sorted(payload.get("worlds", {}).items()):
        ref = base_worlds.get(world)
        if not ref:
            continue
        current = float(stats["median_seconds"])
        reference = float(ref["median_seconds"])
        if reference <= 0.0:
            continue
        ratio = current / reference
        rows.append(
            {
                "world": world,
                "ratio": ratio,
                "current_seconds": current,
                "baseline_seconds": reference,
                "regressed": ratio > 1.0 + threshold,
            }
        )
    rows.sort(key=lambda row: -row["ratio"])
    return rows


def render_annotations(
    rows: List[Dict[str, object]], threshold: float = DEFAULT_THRESHOLD
) -> List[str]:
    """GitHub ``::warning::`` lines for the regressed rows."""
    lines = []
    for row in rows:
        if not row["regressed"]:
            continue
        lines.append(
            "::warning title=perf regression::world '{world}' is "
            "{pct:.0f}% slower than baseline ({cur:.3f}s vs {ref:.3f}s "
            "median; threshold {thr:.0f}%)".format(
                world=row["world"],
                pct=(row["ratio"] - 1.0) * 100.0,
                cur=row["current_seconds"],
                ref=row["baseline_seconds"],
                thr=threshold * 100.0,
            )
        )
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perfbench.compare",
        description="Diff a fresh BENCH json against the committed baseline "
        "(warnings only, never fails).",
    )
    parser.add_argument("bench", help="fresh BENCH_<label>.json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"regression fraction to flag (default: {DEFAULT_THRESHOLD})",
    )
    args = parser.parse_args(argv)

    try:
        payload = json.loads(Path(args.bench).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, ValueError) as exc:
        # Missing or malformed inputs should not fail the (non-gating)
        # perf job either; surface the problem as an annotation.
        print(f"::warning title=perf compare::cannot compare: {exc}")
        return 0

    rows = compare_worlds(payload, baseline, threshold=args.threshold)
    for row in rows:
        print(
            "  {world:>7s}: {ratio:6.2f}x baseline median "
            "({cur:.3f}s vs {ref:.3f}s){flag}".format(
                world=row["world"],
                ratio=row["ratio"],
                cur=row["current_seconds"],
                ref=row["baseline_seconds"],
                flag=" <-- REGRESSED" if row["regressed"] else "",
            )
        )
    for line in render_annotations(rows, threshold=args.threshold):
        print(line)
    if not rows:
        print("no overlapping worlds between bench and baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
