"""The pre-vectorization scalar implementations, kept as the oracle.

Two generations of fast path are anchored here:

* the original O(n^2) per-(src, dst) congestion-solver loops that
  :class:`repro.sim.engine.CongestionSolver` replaced with matrix
  products (PR 2);
* the original dict-of-:class:`P2MEntry` page table
  (:class:`DictP2MTable`) and the :func:`scalar_page_path` context
  manager that routes whole worlds through the scalar per-page loops
  the array-backed page path replaced (PR 4).

They are committed verbatim for two consumers: the perf microbenchmarks
(the ``>= 3x`` speedup every perf PR demonstrates is measured against
them) and the equivalence property tests. Do not optimise them — their
value is being slow and obviously correct.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import batch
from repro.errors import P2MError
from repro.hardware.counters import CACHE_LINE_BYTES
from repro.hypervisor.p2m import P2MEntry
from repro.sim.engine import CongestionSolver


def loop_congestion(
    solver: CongestionSolver, matrix: np.ndarray, seconds: float
) -> Tuple[np.ndarray, np.ndarray]:
    """:meth:`CongestionSolver.congestion` as the original Python loop."""
    col_bytes = matrix.sum(axis=0) * CACHE_LINE_BYTES
    rho_c = col_bytes / (solver.controller_bw * seconds)
    link_bytes = np.zeros(len(solver.link_bw))
    for s in range(solver.num_nodes):
        for d in range(solver.num_nodes):
            if s == d:
                continue
            traffic = matrix[s, d] * CACHE_LINE_BYTES
            if traffic == 0:
                continue
            for li in solver.route_links[(s, d)]:
                link_bytes[li] += traffic
    rho_l = link_bytes / (solver.link_bw * seconds)
    return rho_c, rho_l


def loop_latency_matrix(
    solver: CongestionSolver, rho_c: np.ndarray, rho_l: np.ndarray
) -> np.ndarray:
    """:meth:`CongestionSolver.latency_matrix` as the original loop."""
    model = solver.machine.latency
    burst = solver.machine.config.traffic_burstiness
    n = solver.num_nodes
    out = np.zeros((n, n))
    for s in range(n):
        for d in range(n):
            route = solver.route_links[(s, d)]
            link_rho = max((rho_l[li] for li in route), default=0.0)
            cycles = model.memory_latency_cycles(
                int(solver.hops[s, d]),
                float(rho_c[d]) * burst,
                float(link_rho) * burst,
            )
            out[s, d] = model.cycles_to_seconds(cycles)
    return out


# ----------------------------------------------------------------------
# The scalar page path (pre-PR 4)

_GpfnArray = Union[Sequence[int], np.ndarray]


class DictP2MTable:
    """The original dict-of-objects p2m, kept as the page-path oracle.

    Method-for-method the implementation the array-backed
    :class:`repro.hypervisor.p2m.P2MTable` replaced, plus loop-based
    ``set_entries``/``invalidate_many``/``translate_many`` that *define*
    the semantics the vectorized versions must reproduce.
    """

    def __init__(self, domain_id: int, capacity: int = 1024):
        self.domain_id = domain_id
        del capacity  # the dict backend has no arrays to pre-size
        self._entries: Dict[int, P2MEntry] = {}
        self.faults_taken = 0
        self.invalidations = 0
        self.migrations = 0
        self.observer: Optional[object] = None
        self.sanitizer: Optional[object] = None
        self.frames_per_node: Optional[int] = None

    # ------------------------------------------------------------- scalar

    def set_entry(self, gpfn: int, mfn: int, writable: bool = True) -> None:
        if gpfn < 0 or mfn < 0:
            raise P2MError("frame numbers must be non-negative")
        if self.sanitizer is not None:
            self.sanitizer.entry_set(self.domain_id, gpfn, mfn)
        self._entries[gpfn] = P2MEntry(mfn=mfn, valid=True, writable=writable)
        if self.observer is not None:
            self.observer.entry_set(gpfn, mfn)

    def invalidate(self, gpfn: int) -> Optional[int]:
        entry = self._entries.get(gpfn)
        if entry is None or not entry.valid:
            return None
        entry.valid = False
        self.invalidations += 1
        mfn, entry.mfn = entry.mfn, -1
        if self.sanitizer is not None:
            self.sanitizer.entry_invalidated(self.domain_id, gpfn)
        if self.observer is not None:
            self.observer.entry_invalidated(gpfn)
        return mfn

    def remove(self, gpfn: int) -> Optional[int]:
        entry = self._entries.pop(gpfn, None)
        if entry is None or not entry.valid:
            return None
        if self.sanitizer is not None:
            self.sanitizer.entry_invalidated(self.domain_id, gpfn)
        if self.observer is not None:
            self.observer.entry_invalidated(gpfn)
        return entry.mfn

    def lookup(self, gpfn: int) -> Optional[P2MEntry]:
        return self._entries.get(gpfn)

    def translate(self, gpfn: int) -> int:
        entry = self._entries.get(gpfn)
        if entry is None or not entry.valid:
            raise P2MError(f"invalid p2m entry for gpfn {gpfn:#x}")
        return entry.mfn

    def mfn_if_valid(self, gpfn: int) -> int:
        entry = self._entries.get(gpfn)
        if entry is None or not entry.valid:
            return -1
        return entry.mfn

    def is_valid(self, gpfn: int) -> bool:
        entry = self._entries.get(gpfn)
        return entry is not None and entry.valid

    def write_protect(self, gpfn: int) -> None:
        entry = self._require_valid(gpfn)
        if self.sanitizer is not None:
            self.sanitizer.entry_write_protected(self.domain_id, gpfn)
        entry.writable = False

    def remap(self, gpfn: int, new_mfn: int) -> int:
        entry = self._require_valid(gpfn)
        if entry.writable:
            raise P2MError("remap requires a write-protected entry")
        if self.sanitizer is not None:
            self.sanitizer.entry_remapped(self.domain_id, gpfn, entry.mfn, new_mfn)
        old = entry.mfn
        entry.mfn = new_mfn
        entry.writable = True
        self.migrations += 1
        if self.observer is not None:
            self.observer.entry_set(gpfn, new_mfn)
        return old

    def unprotect(self, gpfn: int) -> None:
        entry = self._require_valid(gpfn)
        if self.sanitizer is not None:
            self.sanitizer.entry_unprotected(self.domain_id, gpfn)
        entry.writable = True

    def valid_entries(self) -> Iterator[Tuple[int, P2MEntry]]:
        return ((g, e) for g, e in self._entries.items() if e.valid)

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def num_valid(self) -> int:
        return sum(1 for e in self._entries.values() if e.valid)

    def _require_valid(self, gpfn: int) -> P2MEntry:
        entry = self._entries.get(gpfn)
        if entry is None or not entry.valid:
            raise P2MError(f"gpfn {gpfn:#x} has no valid entry")
        return entry

    # ------------------------------------------------------------- batch
    # Loop definitions of the batch API: what the vectorized versions
    # must be observationally equal to.

    def set_entries(
        self, gpfns: _GpfnArray, mfns: _GpfnArray, writable: bool = True
    ) -> None:
        gpfns = np.asarray(gpfns, dtype=np.int64)
        mfns = np.asarray(mfns, dtype=np.int64)
        if gpfns.shape != mfns.shape:
            raise P2MError("set_entries needs matching gpfn/mfn arrays")
        for gpfn, mfn in zip(gpfns.tolist(), mfns.tolist()):
            self.set_entry(gpfn, mfn, writable)

    def invalidate_many(
        self, gpfns: _GpfnArray
    ) -> Tuple[np.ndarray, np.ndarray]:
        hit_gpfns, hit_mfns = [], []
        for gpfn in np.asarray(gpfns, dtype=np.int64).tolist():
            mfn = self.invalidate(gpfn)
            if mfn is not None:
                hit_gpfns.append(gpfn)
                hit_mfns.append(mfn)
        return (
            np.asarray(hit_gpfns, dtype=np.int64),
            np.asarray(hit_mfns, dtype=np.int64),
        )

    def translate_many(self, gpfns: _GpfnArray) -> np.ndarray:
        gpfns = np.asarray(gpfns, dtype=np.int64)
        return np.asarray(
            [self.translate(g) for g in gpfns.tolist()], dtype=np.int64
        )

    def remove_many(self, gpfns: _GpfnArray) -> np.ndarray:
        mfns = [
            mfn
            for mfn in (
                self.remove(g)
                for g in np.asarray(gpfns, dtype=np.int64).tolist()
            )
            if mfn is not None
        ]
        return np.asarray(mfns, dtype=np.int64)

    def mfns_if_valid(self, gpfns: _GpfnArray) -> np.ndarray:
        return np.asarray(
            [
                self.mfn_if_valid(g)
                for g in np.asarray(gpfns, dtype=np.int64).tolist()
            ],
            dtype=np.int64,
        )

    def nodes_of(self, gpfns: _GpfnArray) -> np.ndarray:
        if self.frames_per_node is None:
            raise P2MError("nodes_of requires frames_per_node to be set")
        nodes = []
        for gpfn in np.asarray(gpfns, dtype=np.int64).tolist():
            mfn = self.mfn_if_valid(gpfn)
            nodes.append(-1 if mfn < 0 else mfn // self.frames_per_node)
        return np.asarray(nodes, dtype=np.int32)


@contextmanager
def scalar_page_path() -> Iterator[None]:
    """Run a block on the pre-vectorization page path.

    Newly built domains get a :class:`DictP2MTable` and every batch entry
    point (touch loops, queue replay, Carrefour decision filtering, heap
    population) falls back to its scalar per-page loop. The page-path
    microbenchmark times the same world inside and outside this context.
    """
    from repro.hypervisor import domain as domain_module

    original = domain_module.P2MTable
    domain_module.P2MTable = DictP2MTable  # type: ignore[misc,assignment]
    try:
        with batch.scalar_mode():
            yield
    finally:
        domain_module.P2MTable = original  # type: ignore[misc]
