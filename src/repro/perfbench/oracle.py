"""The pre-vectorization congestion-solver loops, kept as the oracle.

These are the original O(n^2) per-(src, dst) Python loops that
:class:`repro.sim.engine.CongestionSolver` replaced with matrix products.
They are committed verbatim for two consumers: the solver microbenchmark
(the ``>= 3x`` speedup every perf PR demonstrates is measured against
them) and the equivalence property tests in ``tests/sim``. Do not
optimise them — their value is being slow and obviously correct.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.hardware.counters import CACHE_LINE_BYTES
from repro.sim.engine import CongestionSolver


def loop_congestion(
    solver: CongestionSolver, matrix: np.ndarray, seconds: float
) -> Tuple[np.ndarray, np.ndarray]:
    """:meth:`CongestionSolver.congestion` as the original Python loop."""
    col_bytes = matrix.sum(axis=0) * CACHE_LINE_BYTES
    rho_c = col_bytes / (solver.controller_bw * seconds)
    link_bytes = np.zeros(len(solver.link_bw))
    for s in range(solver.num_nodes):
        for d in range(solver.num_nodes):
            if s == d:
                continue
            traffic = matrix[s, d] * CACHE_LINE_BYTES
            if traffic == 0:
                continue
            for li in solver.route_links[(s, d)]:
                link_bytes[li] += traffic
    rho_l = link_bytes / (solver.link_bw * seconds)
    return rho_c, rho_l


def loop_latency_matrix(
    solver: CongestionSolver, rho_c: np.ndarray, rho_l: np.ndarray
) -> np.ndarray:
    """:meth:`CongestionSolver.latency_matrix` as the original loop."""
    model = solver.machine.latency
    burst = solver.machine.config.traffic_burstiness
    n = solver.num_nodes
    out = np.zeros((n, n))
    for s in range(n):
        for d in range(n):
            route = solver.route_links[(s, d)]
            link_rho = max((rho_l[li] for li in route), default=0.0)
            cycles = model.memory_latency_cycles(
                int(solver.hops[s, d]),
                float(rho_c[d]) * burst,
                float(link_rho) * burst,
            )
            out[s, d] = model.cycles_to_seconds(cycles)
    return out
