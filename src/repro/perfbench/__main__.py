"""Entry point for ``python -m repro.perfbench``."""

import sys

from repro.perfbench.cli import main

if __name__ == "__main__":
    sys.exit(main())
