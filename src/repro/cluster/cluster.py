"""A cluster: N hosts advancing in lockstep on one simulated clock.

Each host is a :class:`~repro.sim.host.Host` (its own machine, heap,
hypervisor, sanitizer) carrying one :class:`~repro.sim.environment.World`
advanced by its own :class:`~repro.sim.engine.EpochStepper`. The cluster
steps every host for epoch *e* before any host sees epoch *e+1*, so
cross-host protocols (live migration) observe a coherent wall of
simulated time; hosts with nothing to run idle-step to keep their epoch
counters aligned.

VM placement goes through the :class:`PlacementScheduler` (multi-NUMA
free space + projected congestion, seeded tie-breaks); migrations are
scheduled by epoch and executed by :class:`LiveMigration`. At cutover
the migrated run *moves between worlds*: its remaining epochs are
simulated by the destination host's stepper against the destination
machine, and its result reports the destination world's label.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.cluster.migration import LiveMigration, MigrationPlan
from repro.cluster.placement import PlacementScheduler
from repro.errors import ExperimentError
from repro.sim.engine import DEFAULT_MAX_EPOCHS, EpochStepper
from repro.sim.environment import VmSpec, World, XenEnvironment
from repro.sim.host import Host
from repro.sim.results import RunResult
from repro.util import stable_hash


class Cluster:
    """N hosts, a placement scheduler, and in-flight migrations.

    Args:
        environment: the Xen environment template every host boots from
            (same features, same machine factory, same config).
        num_hosts: hosts to boot.
    """

    def __init__(self, environment: XenEnvironment, num_hosts: int):
        if num_hosts < 1:
            raise ExperimentError("a cluster needs at least one host")
        self.environment = environment
        self.config = environment.config
        self.hosts: List[Host] = [
            environment.build_host(host_id) for host_id in range(num_hosts)
        ]
        seed = self.config.rng_seed
        self.scheduler = PlacementScheduler(
            np.random.default_rng(
                seed + stable_hash("cluster.placement") % 10000
            )
        )
        self.worlds: Dict[int, World] = {}
        self.steppers: Dict[int, EpochStepper] = {}
        self.migrations: List[LiveMigration] = []
        self._plans: List[MigrationPlan] = []
        self.epoch = 0
        self.now = 0.0

    # ------------------------------------------------------------------
    # Placement and deployment

    def deploy(self, vms: Sequence[VmSpec]) -> None:
        """Place each VM on its best host and build every host's world.

        Every host gets a world — empty ones included — so an evacuated
        or initially idle host can still receive migrations.
        """
        if self.worlds:
            raise ExperimentError("cluster already deployed")
        assignment: Dict[int, List[VmSpec]] = {
            host.host_id: [] for host in self.hosts
        }
        reserved: Dict[int, int] = {host.host_id: 0 for host in self.hosts}
        for spec in vms:
            num_cpus = self.hosts[0].machine.num_cpus
            pages = self.environment.vm_memory_pages(spec, num_cpus)
            host = self.scheduler.choose_host(
                self.hosts,
                spec.num_vcpus or num_cpus,
                pages,
                reserved=reserved,
            )
            assignment[host.host_id].append(spec)
            reserved[host.host_id] += pages
        for host in self.hosts:
            label = f"{self.environment.label}@h{host.host_id}"
            self.worlds[host.host_id] = self.environment.setup_on(
                host, assignment[host.host_id], label=label
            )

    def world_of_run(self, run) -> World:
        for world in self.worlds.values():
            if run in world.runs:
                return world
        raise ExperimentError(f"run {run.app.name} is on no host")

    def find_run(self, app_name: str):
        """The (unique) run of ``app_name`` across all hosts."""
        matches = [
            run
            for host in self.hosts
            for run in self.worlds[host.host_id].runs
            if run.app.name == app_name
        ]
        if len(matches) != 1:
            raise ExperimentError(
                f"{len(matches)} runs named {app_name!r}; migration "
                f"scheduling needs a unique app name"
            )
        return matches[0]

    # ------------------------------------------------------------------
    # Migration scheduling

    def migrate_at(
        self,
        epoch: int,
        app_name: str,
        dest_host_id: Optional[int] = None,
        **knobs,
    ) -> None:
        """Schedule ``app_name`` to start migrating at ``epoch``.

        ``dest_host_id`` of None lets the placement scheduler pick the
        best non-source host when the migration launches (scores reflect
        cluster state *at that epoch*, not at scheduling time).
        """
        self._plans.append(
            MigrationPlan(
                epoch=epoch,
                app_name=app_name,
                dest_host_id=dest_host_id,
                knobs=knobs,
            )
        )

    def _launch(self, plan: MigrationPlan) -> None:
        run = self.find_run(plan.app_name)
        source_world = self.world_of_run(run)
        source_host = source_world.host
        if plan.dest_host_id is not None:
            dest_host = self.hosts[plan.dest_host_id]
        else:
            domain = run.context.domain
            dest_host = self.scheduler.choose_host(
                self.hosts,
                domain.num_vcpus,
                domain.memory_pages,
                exclude=(source_host.host_id,),
            )
        if dest_host.host_id == source_host.host_id:
            raise ExperimentError(
                f"migration of {plan.app_name!r} targets its own host"
            )
        rng = np.random.default_rng(
            self.config.rng_seed
            + stable_hash(("migration", plan.app_name, plan.epoch)) % 10000
        )
        migration = LiveMigration(
            self.environment,
            run,
            source_host,
            dest_host,
            rng,
            **plan.knobs,
        )
        migration.begin()
        self.migrations.append(migration)

    def _transfer_run(self, migration: LiveMigration) -> None:
        """Move the migrated run between the two hosts' worlds."""
        source_world = self.worlds[migration.source_host.host_id]
        dest_world = self.worlds[migration.dest_host.host_id]
        source_world.runs.remove(migration.run)
        dest_world.runs.append(migration.run)

    # ------------------------------------------------------------------
    # The lockstep engine loop

    def simulate(self, max_epochs: int = DEFAULT_MAX_EPOCHS) -> List[RunResult]:
        """Simulate every host to completion; one result per app run.

        Results are grouped by host (ascending host id), each carrying
        the label of the world the run *finished* on — a migrated run
        reports its destination.
        """
        if not self.worlds:
            raise ExperimentError("deploy() the cluster before simulate()")
        order = sorted(self.worlds)
        for host_id in order:
            stepper = EpochStepper(self.worlds[host_id])
            stepper.initialize()
            self.steppers[host_id] = stepper
        while self.epoch < max_epochs:
            for plan in self._plans:
                if plan.epoch == self.epoch:
                    self._launch(plan)
            stepped = False
            for host_id in order:
                if self.steppers[host_id].step(self.now):
                    stepped = True
                else:
                    self.steppers[host_id].idle_step(self.now)
            for migration in self.migrations:
                if migration.phase != "precopy":
                    continue
                if migration.run.finished:
                    # The run beat the protocol to the finish line; there
                    # is nothing left worth moving.
                    migration.abort()
                    continue
                migration.on_epoch(self.epoch, self.config.epoch_seconds)
                if migration.phase == "complete":
                    self._transfer_run(migration)
            if not stepped and not any(m.active for m in self.migrations):
                break
            self.epoch += 1
            self.now += self.config.epoch_seconds
        # A run can complete before its migration does — tear the
        # half-built destination down so the heaps stay consistent.
        for migration in self.migrations:
            migration.abort()
        results: List[RunResult] = []
        migration_of_run = {
            id(m.run): m for m in self.migrations if m.phase == "complete"
        }
        tracer = obs.tracer()
        for host_id in order:
            stepper = self.steppers[host_id]
            world = self.worlds[host_id]
            runs = list(world.runs)
            host_results = stepper.finish(self.now)
            for run, result in zip(runs, host_results):
                migration = migration_of_run.get(id(run))
                if migration is not None:
                    result.stats.update(migration.stats.as_metrics())
            results.extend(host_results)
        if tracer.enabled:
            tracer.instant(
                "cluster.done",
                cat="cluster",
                epochs=self.epoch,
                hosts=len(self.hosts),
                migrations=len(self.migrations),
            )
        return results
