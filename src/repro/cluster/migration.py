"""Pre-copy live VM migration between two hosts.

The classic Xen protocol (Clark et al., adapted to this simulation),
built entirely on machinery the repo already has:

1. **Round 1** — the destination domain is created (its boot policy
   re-runs NUMA placement on the destination, Mitosis-style), the
   source's resident pages are write-protected in bulk
   (``write_protect_many``) and their contents copied.
2. **Dirty rounds** — the guest keeps writing; a write to a protected
   page traps through the PR 5-hardened ``on_write_protected`` path into
   this module's dirty logger, which records the page and unprotects it.
   Each epoch the previous round's dirty set is re-protected and
   re-copied.
3. **Stop-and-copy** — once the dirty set converges below the threshold
   (or the round budget expires) the source domain is paused, the final
   dirty pages copied, leftover protections dropped
   (``unprotect_many``), and the run re-homed onto the destination
   (:meth:`XenEnvironment.complete_migration`), which re-runs the active
   NUMA policy there and destroys the source domain.

The runtime sanitizer polices every protocol step (a copy of an
unprotected page cannot fault-dirty; double protects raise), and the
RPR005 lint knows both the scalar and the ``_many`` spellings. All
randomness — which pages the guest writes, on which vCPU — comes from
the seeded generator handed in, so two identical runs produce
byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

import numpy as np

from repro import obs
from repro.sim.host import Host
from repro.sim.instance import AppRun

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import XenEnvironment

#: Seconds to transfer one simulated page over the migration link.
PAGE_COPY_SECONDS = 2.0e-6
#: Fixed cutover downtime (pause, final sync, activation hand-off).
CUTOVER_SECONDS = 20e-3
#: Dirty-set size at or below which the protocol cuts over.
DEFAULT_DIRTY_THRESHOLD = 64
#: Maximum pre-copy rounds before a forced cutover.
DEFAULT_ROUND_BUDGET = 8
#: Guest write operations simulated per epoch while migrating.
DEFAULT_WRITES_PER_EPOCH = 256


@dataclass
class MigrationStats:
    """Outcome of one live migration.

    Attributes:
        rounds: pre-copy rounds executed (round 1 included).
        pages_copied: total page copies over all rounds + cutover.
        dirty_faults: write-protection faults taken by the guest.
        cutover_pages: pages copied inside the stop-and-copy window.
        converged: True when the dirty set shrank below the threshold
            (False = the round budget forced the cutover).
        downtime_seconds: simulated stop-and-copy cost charged.
    """

    rounds: int = 0
    pages_copied: int = 0
    dirty_faults: int = 0
    cutover_pages: int = 0
    converged: bool = False
    downtime_seconds: float = 0.0

    def as_metrics(self) -> dict:
        """Flat float dict merged into the run's result stats."""
        return {
            "migration.rounds": float(self.rounds),
            "migration.pages_copied": float(self.pages_copied),
            "migration.dirty_faults": float(self.dirty_faults),
            "migration.cutover_pages": float(self.cutover_pages),
            "migration.converged": 1.0 if self.converged else 0.0,
            "migration.downtime_seconds": float(self.downtime_seconds),
        }


@dataclass
class MigrationPlan:
    """A migration scheduled for a future epoch (cluster bookkeeping)."""

    epoch: int
    app_name: str
    dest_host_id: Optional[int] = None
    knobs: dict = field(default_factory=dict)


class LiveMigration:
    """One in-flight pre-copy migration of ``run`` between two hosts.

    Args:
        environment: the :class:`XenEnvironment` that built the run (it
            owns domain cloning and the post-cutover re-homing).
        run: the application run being moved.
        source_host / dest_host: where from, where to.
        rng: seeded generator for the simulated guest write stream.
        round_budget: max pre-copy rounds before forcing cutover.
        dirty_threshold: dirty-set size that triggers cutover.
        writes_per_epoch: guest writes simulated per migrating epoch.
    """

    def __init__(
        self,
        environment: "XenEnvironment",
        run: AppRun,
        source_host: Host,
        dest_host: Host,
        rng: np.random.Generator,
        round_budget: int = DEFAULT_ROUND_BUDGET,
        dirty_threshold: int = DEFAULT_DIRTY_THRESHOLD,
        writes_per_epoch: int = DEFAULT_WRITES_PER_EPOCH,
    ):
        self.environment = environment
        self.run = run
        self.source_host = source_host
        self.dest_host = dest_host
        self.rng = rng
        self.round_budget = max(1, round_budget)
        self.dirty_threshold = max(0, dirty_threshold)
        self.writes_per_epoch = writes_per_epoch
        self.phase = "pending"
        self.stats = MigrationStats()
        self.dest_domain = None
        self._resident: Optional[np.ndarray] = None
        self._pending: Optional[np.ndarray] = None
        self._dirty: List[int] = []
        self._next_stamp = 1
        reg = obs.registry()
        labels = {"app": run.app.name, "dest": dest_host.host_id}
        self._copied_cell = reg.counter("migration.pages_copied", **labels)
        self._dirty_cell = reg.counter("migration.dirty_faults", **labels)

    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.phase in ("pending", "precopy")

    @property
    def source_domain(self):
        return self.run.context.domain

    def begin(self) -> None:
        """Clone the destination domain and arm dirty logging."""
        assert self.phase == "pending"
        self.dest_domain = self.environment.clone_domain_on(
            self.dest_host, self.run
        )
        source = self.source_domain
        self._resident = source.p2m.valid_gpfns()
        self._pending = self._resident
        self.source_host.hypervisor.set_write_fault_handler(
            source, self._on_dirty
        )
        self.phase = "precopy"
        tracer = obs.tracer()
        if tracer.enabled:
            tracer.instant(
                "migration.begin",
                cat="cluster",
                app=self.run.app.name,
                source=self.source_host.host_id,
                dest=self.dest_host.host_id,
                resident_pages=int(self._resident.size),
            )

    def on_epoch(self, epoch: int, epoch_seconds: float) -> None:
        """Run one pre-copy round (or the cutover) for this epoch."""
        if self.phase != "precopy":
            return
        source = self.source_domain
        p2m = source.p2m
        # Entries churned away since the last round no longer exist to
        # protect; their content is gone with them.
        pending = self._pending
        pending = pending[p2m.mfns_if_valid(pending) >= 0]
        p2m.write_protect_many(pending)
        self.dest_domain.copy_stamps_from(source, pending)
        copied = int(pending.size)
        self.stats.pages_copied += copied
        self.stats.rounds += 1
        self._copied_cell.value += copied
        self.run.pending_policy_cost += copied * PAGE_COPY_SECONDS

        # The guest's write stream during the copy: writes landing on a
        # protected page trap into _on_dirty, which logs and unprotects.
        self._dirty = []
        self._write_traffic()
        dirty = np.asarray(self._dirty, dtype=np.int64)

        tracer = obs.tracer()
        if tracer.enabled:
            tracer.span(
                "migration.round",
                epoch_seconds,
                cat="cluster",
                app=self.run.app.name,
                round=self.stats.rounds,
                copied_pages=copied,
                dirty_pages=int(dirty.size),
            )
        if (
            dirty.size <= self.dirty_threshold
            or self.stats.rounds >= self.round_budget
        ):
            self.stats.converged = dirty.size <= self.dirty_threshold
            self._cutover(dirty, epoch_seconds)
        else:
            self._pending = dirty

    def abort(self) -> None:
        """Abandon the migration, restoring the source untouched.

        Called when the run completes before the protocol does: leftover
        protections are dropped, dirty logging disarmed, and the
        half-built destination domain destroyed.
        """
        if not self.active:
            return
        if self.phase == "precopy":
            source = self.source_domain
            self._release_protections(source.p2m)
            self.source_host.hypervisor.clear_write_fault_handler(source)
        if self.dest_domain is not None:
            self.dest_host.hypervisor.destroy_domain(self.dest_domain)
            self.dest_domain = None
        self.phase = "aborted"

    # ------------------------------------------------------------------

    def _on_dirty(self, gpfn: int) -> None:
        """Write-protection fault handler: log the page, let the write in."""
        self._dirty.append(int(gpfn))
        self.stats.dirty_faults += 1
        self._dirty_cell.inc()
        self.source_domain.p2m.unprotect(gpfn)

    def _write_traffic(self) -> None:
        """Simulate the guest's writes for one migrating epoch.

        Pages are drawn (seeded) from the run's currently touched keys,
        so every write targets a valid p2m entry — the only faults this
        can take are the write-protection faults the protocol is there
        to catch.
        """
        run = self.run
        touched = [
            segment.keys[segment.keys >= 0] for segment in run.segments
        ]
        keys = (
            np.concatenate(touched) if touched else np.empty(0, np.int64)
        )
        if keys.size == 0:
            return
        hypervisor = self.source_host.hypervisor
        domain = self.source_domain
        num_vcpus = domain.num_vcpus
        picks = self.rng.integers(0, keys.size, size=self.writes_per_epoch)
        vcpus = self.rng.integers(0, num_vcpus, size=self.writes_per_epoch)
        for key_idx, vcpu_id in zip(picks.tolist(), vcpus.tolist()):
            hypervisor.guest_write(
                domain, int(vcpu_id), int(keys[key_idx]), self._next_stamp
            )
            self._next_stamp += 1

    def _release_protections(self, p2m) -> None:
        """Unprotect every still-protected page of the resident set."""
        resident = self._resident
        if resident is None or resident.size == 0:
            return
        still_valid = p2m.mfns_if_valid(resident) >= 0
        protected = still_valid & ~p2m.writable_mask(resident)
        p2m.unprotect_many(resident[protected])

    def _cutover(self, dirty: np.ndarray, epoch_seconds: float) -> None:
        """Stop-and-copy: pause, final copy, re-home, destroy source."""
        source = self.source_domain
        source_hv = self.source_host.hypervisor
        source_hv.pause_domain(source)
        self.dest_domain.copy_stamps_from(source, dirty)
        self.stats.cutover_pages = int(dirty.size)
        self.stats.pages_copied += int(dirty.size)
        self._copied_cell.value += int(dirty.size)
        self._release_protections(source.p2m)
        source_hv.clear_write_fault_handler(source)
        downtime = dirty.size * PAGE_COPY_SECONDS + CUTOVER_SECONDS
        self.stats.downtime_seconds = downtime
        self.run.pending_policy_cost += downtime
        # Re-home the run: rebinds context/patch/tracker, re-runs the
        # policy selection on the destination, re-pins threads, resyncs
        # placements, destroys the source domain (freeing its frames).
        self.environment.complete_migration(
            self.run, self.dest_host, self.dest_domain
        )
        self.phase = "complete"
        tracer = obs.tracer()
        if tracer.enabled:
            tracer.span(
                "migration.cutover",
                downtime,
                cat="cluster",
                app=self.run.app.name,
                source=self.source_host.host_id,
                dest=self.dest_host.host_id,
                cutover_pages=int(dirty.size),
                rounds=self.stats.rounds,
                converged=self.stats.converged,
            )
