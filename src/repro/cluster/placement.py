"""Cluster placement: score hosts by available multi-NUMA space.

Which host should admit the next VM? Following Gudkov et al.'s
multi-NUMA available-space argument (PAPERS.md), a host's capacity for a
VM is not its total free memory but the free memory of the *node set*
the VM would actually occupy — a 48-core VM on a 8-node host needs all
eight nodes roomy, a 6-vCPU VM needs one. The scheduler therefore scores
each host by the free frames of the top-k nodes the VM needs, discounted
by the memory congestion the host's existing tenants already project
(computed with the engine's own :class:`CongestionSolver` so the
estimate and the simulation agree about the hardware).

Tie-breaks draw from the seeded stream passed in — never from unseeded
randomness — so placement is reproducible run to run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import OutOfMemoryError
from repro.sim.engine import CongestionSolver
from repro.sim.host import Host

#: Projected accesses per second a busy physical CPU contributes to its
#: local memory controller when estimating a host's standing congestion.
#: Deliberately coarse — the score only needs ordering, not accuracy.
PROJECTED_ACCESSES_PER_CPU = 2e7


@dataclass(frozen=True)
class HostScore:
    """One host's placement score for one VM request.

    Attributes:
        host_id: the scored host.
        admissible: whether the top-k node set can hold the VM at all.
        nodes_needed: size of the node set the VM would occupy.
        space_pages: free frames summed over the top-k nodes.
        congestion_factor: 1 + mean projected controller utilisation.
        score: ``space_pages / congestion_factor`` (``-inf`` when not
            admissible) — more multi-NUMA headroom is better, a loaded
            memory system is worse.
    """

    host_id: int
    admissible: bool
    nodes_needed: int
    space_pages: int
    congestion_factor: float
    score: float


class PlacementScheduler:
    """Scores candidate hosts and picks where a VM (or migration) lands.

    Args:
        rng: seeded generator used *only* for tie-breaks between hosts
            with equal scores (e.g. two identical empty hosts).
    """

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self._solvers: Dict[int, CongestionSolver] = {}

    # ------------------------------------------------------------------

    def score_host(
        self,
        host: Host,
        num_vcpus: int,
        memory_pages: int,
        reserved_pages: int = 0,
    ) -> HostScore:
        """Score one host for a VM of ``num_vcpus`` / ``memory_pages``.

        ``reserved_pages`` discounts placements already decided but not
        yet materialised (the deploy loop scores VMs one at a time).
        """
        machine = host.machine
        topo = machine.topology
        free = np.asarray(host.free_frames_by_node(), dtype=np.int64)
        if reserved_pages > 0:
            # Spread the reservation like the allocator would: evenly
            # over the roomiest nodes.
            free = free - reserved_pages // max(1, machine.num_nodes)
            free = np.maximum(free, 0)
        vcpus = num_vcpus if num_vcpus else machine.num_cpus
        nodes_needed = max(1, math.ceil(vcpus / topo.cpus_per_node))
        top = np.sort(free)[::-1]
        # Grow the node set past the vCPU-driven minimum until the
        # memory fits (a small VM with a huge footprint still needs
        # several nodes' frames).
        while (
            nodes_needed < machine.num_nodes
            and int(top[:nodes_needed].sum()) < memory_pages
        ):
            nodes_needed += 1
        space = int(top[:nodes_needed].sum())
        admissible = space >= memory_pages
        congestion = self._projected_congestion(host)
        score = space / congestion if admissible else float("-inf")
        return HostScore(
            host_id=host.host_id,
            admissible=admissible,
            nodes_needed=nodes_needed,
            space_pages=space,
            congestion_factor=congestion,
            score=score,
        )

    def choose_host(
        self,
        hosts: Sequence[Host],
        num_vcpus: int,
        memory_pages: int,
        reserved: Optional[Dict[int, int]] = None,
        exclude: Sequence[int] = (),
    ) -> Host:
        """The best host for the VM; seeded tie-break between equals.

        Raises :class:`OutOfMemoryError` when no candidate can admit it.
        """
        reserved = reserved or {}
        excluded = set(exclude)
        scores: List[HostScore] = []
        candidates: List[Host] = []
        for host in hosts:
            if host.host_id in excluded:
                continue
            candidates.append(host)
            scores.append(
                self.score_host(
                    host,
                    num_vcpus,
                    memory_pages,
                    reserved_pages=reserved.get(host.host_id, 0),
                )
            )
        best = max((s.score for s in scores), default=float("-inf"))
        if best == float("-inf"):
            raise OutOfMemoryError(
                f"no host can admit a VM of {memory_pages} pages "
                f"({len(candidates)} candidates)"
            )
        tied = [
            host
            for host, s in zip(candidates, scores)
            if s.score == best
        ]
        if len(tied) == 1:
            return tied[0]
        return tied[int(self.rng.integers(len(tied)))]

    # ------------------------------------------------------------------

    def _projected_congestion(self, host: Host) -> float:
        """1 + mean controller utilisation the current tenants project.

        Each occupied pCPU is assumed to stream a nominal access rate at
        its local node; the engine's solver turns that into controller
        utilisations exactly as the simulation would.
        """
        machine = host.machine
        solver = self._solvers.get(host.host_id)
        if solver is None or solver.machine is not machine:
            solver = CongestionSolver(machine)
            self._solvers[host.host_id] = solver
        n = machine.num_nodes
        busy = np.zeros(n)
        for pcpu in host.hypervisor.scheduler.occupied_pcpus():
            busy[machine.topology.node_of_cpu(pcpu)] += 1.0
        matrix = np.diag(busy * PROJECTED_ACCESSES_PER_CPU)
        rho_c, _ = solver.congestion(matrix, 1.0)
        return 1.0 + float(rho_c.mean())
