"""Multi-host cluster scheduling and pre-copy live VM migration.

Built on the Host abstraction (:mod:`repro.sim.host`): a
:class:`Cluster` advances N hosts in lockstep on one simulated clock, a
:class:`PlacementScheduler` scores hosts by available multi-NUMA space,
and :class:`LiveMigration` moves a running VM between hosts with the
paper's write-protect → copy → remap machinery.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.migration import (
    LiveMigration,
    MigrationPlan,
    MigrationStats,
)
from repro.cluster.placement import HostScore, PlacementScheduler

__all__ = [
    "Cluster",
    "HostScore",
    "LiveMigration",
    "MigrationPlan",
    "MigrationStats",
    "PlacementScheduler",
]
