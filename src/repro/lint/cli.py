"""``python -m repro.lint`` — the analyzer's command line.

Modes:

* default — the per-file architectural rules (RPR001-RPR005), exactly
  as before;
* ``--strict`` — additionally runs the project-wide dataflow rules
  (RPR006-RPR010: shared state, purity, p2m typestate, array aliasing)
  and subtracts the committed baseline; any residual finding fails;
* ``--baseline-update`` — reruns the strict rule set and regenerates
  the baseline file deterministically (sorted, stable keys).

Exit codes are honest: 0 clean, 1 findings reported, 2 the analysis
itself failed (usage error, unreadable path, unparsable file, crash) —
a CI gate must be able to tell "violations" from "the linter broke".
"""

from __future__ import annotations

import argparse
import os
import sys
import textwrap
from typing import List, Optional

from repro.errors import ReproError
from repro.lint.analyzer import Analyzer
from repro.lint.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    save_baseline,
)
from repro.lint.registry import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analyzer enforcing the reproduction's architectural "
            "invariants (interface encapsulation, hypercall validation, "
            "migration protocol ordering, typed errors, determinism) and, "
            "in --strict mode, the project-wide dataflow rules (shared "
            "mutable state, purity of the execute_request closure, p2m "
            "typestate, ndarray aliasing)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only this rule (id or name); repeatable",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip this rule (id or name); repeatable",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "run the project-wide dataflow rules too and fail on any "
            "finding not in the baseline"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=DEFAULT_BASELINE,
        help=(
            f"baseline file for --strict / --baseline-update "
            f"(default: {DEFAULT_BASELINE})"
        ),
    )
    parser.add_argument(
        "--baseline-update",
        action="store_true",
        help=(
            "regenerate the baseline from the current strict findings "
            "(deterministic: sorted, stable keys) and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    blocks = []
    for cls in all_rules():
        body = textwrap.fill(
            cls.description, width=76, initial_indent="    ",
            subsequent_indent="    ",
        )
        blocks.append(f"{cls.rule_id} [{cls.name}]\n{body}")
    return "\n\n".join(blocks)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Exit codes: 0 clean, 1 findings reported, 2 usage error or the
    analysis itself failed.
    """
    args = _build_parser().parse_args(argv)
    try:
        if args.list_rules:
            print(_list_rules())
            return 0
        baseline = None
        if args.strict and not args.baseline_update:
            if os.path.exists(args.baseline):
                try:
                    baseline = load_baseline(args.baseline)
                except ReproError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
            elif args.baseline != DEFAULT_BASELINE:
                print(
                    f"error: baseline {args.baseline} does not exist",
                    file=sys.stderr,
                )
                return 2
            # else: no committed baseline yet — strict mode runs bare.
        try:
            analyzer = Analyzer(
                select=args.select,
                ignore=args.ignore,
                project=args.strict or args.baseline_update,
                baseline=baseline,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = analyzer.run(args.paths)
        if args.baseline_update:
            if report.errors:
                for err in report.errors:
                    print(f"error: {err}", file=sys.stderr)
                return 2
            save_baseline(args.baseline, report.findings)
            print(
                f"baseline {args.baseline} updated: "
                f"{len(report.findings)} finding(s) recorded"
            )
            return 0
        if args.format == "json":
            print(report.render_json())
        else:
            print(report.render_text())
        if report.errors:
            return 2
        return 0 if not report.findings else 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0
    except Exception as exc:  # repro-lint: ignore[RPR003] - honest crash exit
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
