"""``python -m repro.lint`` — the analyzer's command line."""

from __future__ import annotations

import argparse
import sys
import textwrap
from typing import List, Optional

from repro.errors import ReproError
from repro.lint.analyzer import Analyzer
from repro.lint.registry import all_rules


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analyzer enforcing the reproduction's architectural "
            "invariants (interface encapsulation, hypercall validation, "
            "migration protocol ordering, typed errors, determinism)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only this rule (id or name); repeatable",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip this rule (id or name); repeatable",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    blocks = []
    for cls in all_rules():
        body = textwrap.fill(
            cls.description, width=76, initial_indent="    ",
            subsequent_indent="    ",
        )
        blocks.append(f"{cls.rule_id} [{cls.name}]\n{body}")
    return "\n\n".join(blocks)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Exit codes: 0 clean, 1 findings reported, 2 usage/internal error.
    """
    args = _build_parser().parse_args(argv)
    try:
        if args.list_rules:
            print(_list_rules())
            return 0
        try:
            analyzer = Analyzer(select=args.select, ignore=args.ignore)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = analyzer.run(args.paths)
        if args.format == "json":
            print(report.render_json())
        else:
            print(report.render_text())
        return 0 if report.ok else 1
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
