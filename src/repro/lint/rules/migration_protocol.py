"""RPR005 migration-protocol.

Paper section 4.1: migrating a page is write-protect → copy → remap →
free the old frame. Remapping (or copying) a page that was never
write-protected races with guest writes — the guest can dirty the old
frame after the copy and the write is lost. This rule tracks, per
function, which p2m objects have had ``write_protect`` called and flags
``remap``/``copy_page``/``copy_frame`` calls on an object with no
preceding (still-active) write-protect in the same function.
"""

from __future__ import annotations

import ast
from typing import Set, Union

from repro.lint.registry import register
from repro.lint.visitor import FileContext, Rule

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Calls that start the protocol (scalar and batch spellings).
PROTECT_CALLS = frozenset({"write_protect", "write_protect_many"})

#: Calls that end write-protection (scalar and batch spellings).
UNPROTECT_CALLS = frozenset({"unprotect", "unprotect_many"})

#: Calls that must only run while the page is write-protected.
GUARDED_CALLS = frozenset({"remap", "copy_page", "copy_frame"})


def _receiver(func: ast.Attribute) -> str:
    """Stable spelling of the object a method is called on."""
    return ast.unparse(func.value)


@register
class MigrationProtocolRule(Rule):
    rule_id = "RPR005"
    name = "migration-protocol"
    description = (
        "Within a function, remap/copy_page/copy_frame on a p2m object "
        "must be preceded by write_protect on the same object (the "
        "paper's write-protect -> copy -> remap migration ordering)."
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext):
        yield from self._check_function(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ):
        yield from self._check_function(node, ctx)

    # ------------------------------------------------------------------

    def _check_function(self, node: FuncDef, ctx: FileContext):
        calls = [
            n
            for n in ast.walk(node)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and ctx.enclosing_function(n) is node
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        protected: Set[str] = set()
        for call in calls:
            func = call.func
            assert isinstance(func, ast.Attribute)
            base = _receiver(func)
            if func.attr in PROTECT_CALLS:
                protected.add(base)
            elif func.attr in UNPROTECT_CALLS:
                protected.discard(base)
            elif func.attr in GUARDED_CALLS and base not in protected:
                yield self.finding(
                    ctx,
                    call,
                    f"{base}.{func.attr}() without a preceding "
                    f"write_protect on {base}; migration must "
                    f"write-protect before copy/remap",
                )
