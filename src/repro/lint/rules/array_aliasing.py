"""RPR009/RPR010 array-aliasing.

PR 5 fixed a memoized latency matrix that was returned writable: one
caller scribbling on the shared memo would have corrupted every later
epoch's solver start state. These two rules make that class of bug
mechanical:

* **RPR009 array-aliasing-return** — a method returning an
  attribute-held or memoized ndarray hands out a live alias of internal
  state; the sanctioned patterns are ``return self._arr.copy()`` or
  freezing the stored array with ``setflags(write=False)`` before it
  escapes. The same rule catches the *archive alias*: a numpy-built
  local both appended to a ``self`` container (a history, a log) and
  returned — the caller's array IS the archived entry, and writing
  through it rewrites history.
* **RPR010 array-aliasing-param** — a function mutating an ndarray
  parameter in place (``p[...] = x``, ``p.fill(...)``,
  ``np.copyto(p, ...)``) changes caller-visible state; that is only a
  contract when the parameter is named ``out``/``out_*`` (numpy's own
  convention) or the docstring names the parameter and says it is
  mutated/overwritten/filled in place.

Both rules are heuristic by design: they track attributes assigned from
numpy constructors (``np.zeros`` and friends) or annotated ``ndarray``,
and treat ``setflags(write=False)`` — applied to the attribute or to a
local that is then stored into it — as the freeze that silences RPR009.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.project import FuncDef, ProjectContext, ProjectRule
from repro.lint.registry import register
from repro.lint.visitor import dotted_name

#: numpy array constructors (with and without the canonical aliases).
_NUMPY_CTORS = frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "zeros",
        "ones",
        "full",
        "empty",
        "arange",
        "linspace",
        "zeros_like",
        "ones_like",
        "full_like",
        "empty_like",
        "eye",
        "identity",
    }
)

#: Attribute names that mark a memoization slot.
_MEMO_RE = re.compile(r"cache|memo", re.IGNORECASE)

#: ndarray methods that mutate the receiver in place.
_INPLACE_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "itemset", "byteswap", "setflags"}
)

#: numpy functions whose first argument is written in place.
_INPLACE_FIRST_ARG = frozenset(
    {"np.copyto", "numpy.copyto", "np.put", "numpy.put", "np.place", "numpy.place"}
)

#: Docstring words that document an in-place contract.
_CONTRACT_RE = re.compile(
    r"in[- ]place|mutat|overwrit|filled|written into", re.IGNORECASE
)


def _is_numpy_ctor(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    name = dotted_name(expr.func)
    if name is None:
        return False
    parts = name.split(".")
    return parts[-1] in _NUMPY_CTORS and (
        len(parts) == 1 or parts[0] in ("np", "numpy")
    )


def _annotation_is_ndarray(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    try:
        text = ast.unparse(annotation)
    except ValueError:  # pragma: no cover - malformed annotation
        return False
    return "ndarray" in text


class _ClassArrays:
    """Which attributes of one class hold ndarrays, and which are frozen."""

    def __init__(self, cls: ast.ClassDef):
        self.ndarray_attrs: Set[str] = set()
        self.readonly_attrs: Set[str] = set()
        for func in (n for n in cls.body if isinstance(n, FuncDef)):
            frozen_locals = _setflags_frozen_locals(func)
            for node in ast.walk(func):
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is None:
                            continue
                        if node.value is not None and _is_numpy_ctor(node.value):
                            self.ndarray_attrs.add(attr)
                        if isinstance(node, ast.AnnAssign) and (
                            _annotation_is_ndarray(node.annotation)
                        ):
                            self.ndarray_attrs.add(attr)
                        # ``self.x = frozen_local`` freezes the attribute.
                        if (
                            isinstance(node.value, ast.Name)
                            and node.value.id in frozen_locals
                        ):
                            self.readonly_attrs.add(attr)
                elif isinstance(node, ast.Call):
                    # ``self.x.setflags(write=False)``
                    frozen = _setflags_target(node)
                    if frozen is not None:
                        attr = _self_attr(frozen)
                        if attr is not None:
                            self.readonly_attrs.add(attr)


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _setflags_target(call: ast.Call) -> Optional[ast.expr]:
    """The receiver of a ``setflags(write=False)`` call, if this is one."""
    if not (
        isinstance(call.func, ast.Attribute) and call.func.attr == "setflags"
    ):
        return None
    for kw in call.keywords:
        if kw.arg == "write" and isinstance(kw.value, ast.Constant):
            if kw.value.value is False:
                return call.func.value
    return None


def _setflags_frozen_locals(func: ast.AST) -> Set[str]:
    """Local names frozen with ``name.setflags(write=False)`` in ``func``."""
    frozen: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = _setflags_target(node)
            if isinstance(target, ast.Name):
                frozen.add(target.id)
    return frozen


@register
class ArrayAliasReturnRule(ProjectRule):
    rule_id = "RPR009"
    name = "array-aliasing-return"
    description = (
        "Methods returning attribute-held, memoized, or self-archived "
        "ndarrays without .copy() or setflags(write=False) hand out "
        "writable aliases of internal state (the PR 5 latency-matrix "
        "bug); freeze the stored array or return a copy."
    )

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        for mod, ctx in project.iter_contexts():
            for cls in (
                n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
            ):
                arrays = _ClassArrays(cls)
                for func in (n for n in cls.body if isinstance(n, FuncDef)):
                    findings.extend(
                        self._check_method(func, cls, arrays, ctx.path)
                    )
        return findings

    # ------------------------------------------------------------------

    def _check_method(
        self,
        func: ast.AST,
        cls: ast.ClassDef,
        arrays: _ClassArrays,
        path: str,
    ) -> List[Finding]:
        findings: List[Finding] = []
        archived = self._archived_numpy_locals(func, arrays)
        frozen = _setflags_frozen_locals(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            # return local  (numpy local also archived into a self
            # container: the caller's array IS the history entry)
            if (
                isinstance(value, ast.Name)
                and value.id in archived
                and value.id not in frozen
            ):
                findings.append(
                    self.project_finding(
                        path,
                        node,
                        f"{cls.name}.{func.name} returns ndarray "
                        f"{value.id!r} that it also archives into "
                        f"self.{archived[value.id]} — the caller holds a "
                        f"writable alias of the archived entry; freeze it "
                        f"with setflags(write=False) or archive a copy",
                    )
                )
                continue
            # return self._arr  (tracked ndarray attribute, not frozen)
            attr = _self_attr(value)
            if attr is not None:
                if (
                    attr in arrays.ndarray_attrs
                    and attr not in arrays.readonly_attrs
                ):
                    findings.append(
                        self.project_finding(
                            path,
                            node,
                            f"{cls.name}.{func.name} returns attribute-held "
                            f"ndarray self.{attr} writable; return a .copy() "
                            f"or freeze it with setflags(write=False)",
                        )
                    )
                continue
            # return self._cache[...]  (memoized values)
            if isinstance(value, ast.Subscript):
                attr = _self_attr(value.value)
                if attr is None or not _MEMO_RE.search(attr):
                    continue
                leaky = self._memo_store_leaks(cls, attr)
                if leaky:
                    findings.append(
                        self.project_finding(
                            path,
                            node,
                            f"{cls.name}.{func.name} returns memoized "
                            f"ndarray(s) from self.{attr} writable "
                            f"({', '.join(sorted(leaky))} stored without "
                            f"setflags(write=False)); freeze them before "
                            f"caching or return copies",
                        )
                    )
        return findings

    def _archived_numpy_locals(
        self, func: ast.AST, arrays: _ClassArrays
    ) -> Dict[str, str]:
        """Numpy-built locals stored into a ``self`` container in ``func``.

        A local counts as numpy-built when assigned from a numpy
        constructor or from ``.copy()`` on a tracked ndarray attribute.
        Returns {local name: container attribute} for locals passed to
        ``self.<attr>.append/add/insert`` or subscript-stored into a
        ``self`` attribute.
        """
        numpy_locals: Set[str] = set()
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if _is_numpy_ctor(value):
                numpy_locals.add(target.id)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "copy"
                and _self_attr(value.func.value) in arrays.ndarray_attrs
            ):
                numpy_locals.add(target.id)
        archived: Dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in ("append", "add", "insert"):
                    attr = _self_attr(node.func.value)
                    if attr is not None:
                        for arg in node.args:
                            if (
                                isinstance(arg, ast.Name)
                                and arg.id in numpy_locals
                            ):
                                archived[arg.id] = attr
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    base = target.value
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    attr = _self_attr(base)
                    if (
                        attr is not None
                        and isinstance(node.value, ast.Name)
                        and node.value.id in numpy_locals
                    ):
                        archived[node.value.id] = attr
        return archived

    def _memo_store_leaks(self, cls: ast.ClassDef, attr: str) -> Set[str]:
        """ndarray-ish locals stored into ``self.<attr>`` and not frozen.

        Scans the whole class: wherever ``self.<attr>`` (or an item of
        it) is assigned, collect the Name leaves of the stored value
        that were built by numpy constructors in the same function, and
        keep those never frozen there.
        """
        leaky: Set[str] = set()
        for func in (n for n in cls.body if isinstance(n, FuncDef)):
            numpy_locals = {
                t.id
                for node in ast.walk(func)
                if isinstance(node, ast.Assign) and _is_numpy_ctor(node.value)
                for t in node.targets
                if isinstance(t, ast.Name)
            }
            if not numpy_locals:
                continue
            frozen = _setflags_frozen_locals(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                stores_attr = False
                for target in node.targets:
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if _self_attr(base) == attr:
                        stores_attr = True
                if not stores_attr:
                    continue
                for leaf in ast.walk(node.value):
                    if (
                        isinstance(leaf, ast.Name)
                        and leaf.id in numpy_locals
                        and leaf.id not in frozen
                    ):
                        leaky.add(leaf.id)
        return leaky


@register
class ArrayAliasParamRule(ProjectRule):
    rule_id = "RPR010"
    name = "array-aliasing-param"
    description = (
        "Functions mutating an ndarray parameter in place (subscript "
        "stores, .fill()/.sort(), np.copyto) change caller-visible "
        "state; name the parameter out/out_* or document the in-place "
        "contract in the docstring."
    )

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        for mod, ctx in project.iter_contexts():
            for func in (
                n for n in ast.walk(ctx.tree) if isinstance(n, FuncDef)
            ):
                findings.extend(self._check_function(func, ctx))
        return findings

    # ------------------------------------------------------------------

    def _params(self, func: ast.AST) -> Dict[str, ast.arg]:
        args = func.args
        params = {}
        for arg in list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        ):
            if arg.arg in ("self", "cls"):
                continue
            params[arg.arg] = arg
        return params

    def _documented(self, func: ast.AST, param: str) -> bool:
        if param == "out" or param.startswith("out_") or param.endswith("_out"):
            return True
        doc = ast.get_docstring(func)
        if not doc:
            return False
        names_param = re.search(rf"\b{re.escape(param)}\b", doc) is not None
        return names_param and bool(_CONTRACT_RE.search(doc))

    def _check_function(self, func: ast.AST, ctx) -> List[Finding]:
        params = self._params(func)
        if not params:
            return []
        # A parameter rebound locally no longer aliases the caller's
        # array; drop rebound names to avoid false positives.
        rebound = {
            t.id
            for node in ast.walk(func)
            if isinstance(node, ast.Assign)
            for t in node.targets
            if isinstance(t, ast.Name)
        }
        findings: List[Finding] = []
        reported: Set[str] = set()

        def flag(name: str, node: ast.AST, how: str) -> None:
            if name in reported or name in rebound:
                return
            if self._documented(func, name):
                return
            reported.add(name)
            findings.append(
                self.project_finding(
                    ctx.path,
                    node,
                    f"{func.name} mutates parameter {name!r} in place "
                    f"({how}) without an out=-style contract; rename it "
                    f"out/out_* or document the mutation in the docstring",
                )
            )

        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        name = target.value.id
                        if name in params:
                            flag(name, node, "subscript store")
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _INPLACE_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in params
                ):
                    flag(
                        node.func.value.id,
                        node,
                        f".{node.func.attr}()",
                    )
                    continue
                dotted = dotted_name(node.func)
                if (
                    dotted in _INPLACE_FIRST_ARG
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in params
                ):
                    flag(node.args[0].id, node, f"{dotted}()")
        return findings
