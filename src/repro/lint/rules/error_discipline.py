"""RPR003 error-discipline.

Two checks:

* everywhere: no bare ``except:`` and no ``except Exception`` /
  ``except BaseException`` — swallowing arbitrary errors hides exactly
  the protocol violations the sanitizer exists to surface;
* in the hypervisor and policy layers (path segments ``core`` or
  ``hypervisor``): ``raise`` statements must raise the typed errors of
  :mod:`repro.errors` (checked against this module's
  ``from repro.errors import ...`` names), so callers can catch precise
  failures. Allowed exceptions: re-raises, raising a bound variable,
  ``NotImplementedError``, and ``AttributeError`` inside ``__getattr__``
  (the lazy-import protocol requires it).
"""

from __future__ import annotations

import ast
from typing import Set

from repro.lint.registry import register
from repro.lint.visitor import FileContext, Rule

#: Path segments whose raise statements must use repro.errors types.
TYPED_SEGMENTS = frozenset({"core", "hypervisor"})

#: Builtins that stay legal in typed-raise scope.
ALWAYS_ALLOWED = frozenset({"NotImplementedError"})

#: Functions in which raising AttributeError is part of a protocol.
ATTR_PROTOCOL_FUNCS = frozenset({"__getattr__", "__getattribute__"})

BROAD_NAMES = frozenset({"Exception", "BaseException"})


@register
class ErrorDisciplineRule(Rule):
    rule_id = "RPR003"
    name = "error-discipline"
    description = (
        "No bare/broad excepts anywhere; core/ and hypervisor/ modules "
        "may only raise the typed errors imported from repro.errors "
        "(plus NotImplementedError and protocol AttributeErrors)."
    )

    def start_file(self, ctx: FileContext) -> None:
        self._typed_scope = any(seg in TYPED_SEGMENTS for seg in ctx.parts)
        self._allowed: Set[str] = set(ALWAYS_ALLOWED)
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "repro.errors"
            ):
                for alias in node.names:
                    self._allowed.add(alias.asname or alias.name)

    # ------------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: FileContext):
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare except swallows every error including sanitizer "
                "traps; catch the specific repro.errors type",
            )
            return
        types = (
            node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for exc in types:
            if isinstance(exc, ast.Name) and exc.id in BROAD_NAMES:
                yield self.finding(
                    ctx,
                    node,
                    f"except {exc.id} is too broad; catch the specific "
                    f"repro.errors type",
                )

    def visit_Raise(self, node: ast.Raise, ctx: FileContext):
        if not self._typed_scope or node.exc is None:
            return
        exc = node.exc
        if isinstance(exc, ast.Call):
            target = exc.func
        else:
            target = exc
        if isinstance(target, ast.Attribute):
            raised = target.attr
        elif isinstance(target, ast.Name):
            if not isinstance(exc, ast.Call):
                return  # re-raising a bound variable: cannot type statically
            raised = target.id
        else:
            return
        if raised in self._allowed:
            return
        if raised == "AttributeError":
            func = ctx.enclosing_function(node)
            if (
                func is not None
                and getattr(func, "name", "") in ATTR_PROTOCOL_FUNCS
            ):
                return
        yield self.finding(
            ctx,
            node,
            f"raise {raised} in hypervisor/policy code; raise a typed "
            f"error from repro.errors so callers can catch precisely",
        )
