"""RPR001 interface-encapsulation.

Paper sections 2.1 and 4.1: the hypervisor page table (p2m) and the Xen
heap are hypervisor-private; a NUMA policy manipulates memory exclusively
through the two functions of the internal interface (map a physical page
to a node, migrate a physical page). This rule freezes that boundary:
modules in the policy layer (path segments ``policies`` or ``carrefour``)
may not import hypervisor memory internals nor poke ``.p2m`` /
``.allocator`` attributes or frame-mutation methods directly.
"""

from __future__ import annotations

import ast

from repro.lint.registry import register
from repro.lint.visitor import FileContext, Rule

#: Path segments that mark a file as policy-layer code.
POLICY_SEGMENTS = frozenset({"policies", "carrefour"})

#: Hypervisor-internal modules the policy layer may not import.
FORBIDDEN_MODULES = (
    "repro.hypervisor.p2m",
    "repro.hypervisor.allocator",
    "repro.hardware.memory",
)

#: Names whose import reveals hypervisor memory internals.
FORBIDDEN_IMPORT_NAMES = frozenset(
    {"P2MTable", "P2MEntry", "XenHeapAllocator", "MachineMemory"}
)

#: Attribute accesses that reach through the interface.
FORBIDDEN_ATTRS = frozenset({"p2m", "allocator"})

#: Frame/p2m mutators a policy must never call directly — the sanctioned
#: spellings are InternalInterface.map_page / migrate_page /
#: invalidate_page / populate_*.
FORBIDDEN_CALLS = frozenset(
    {
        "set_entry",
        "remap",
        "write_protect",
        "unprotect",
        "invalidate",
        "alloc_page_on",
        "free_page",
        "alloc_frames",
        "free_frames",
    }
)


@register
class InterfaceEncapsulationRule(Rule):
    rule_id = "RPR001"
    name = "interface-encapsulation"
    description = (
        "Policy-layer modules (core/policies, carrefour) may only reach "
        "the hypervisor through the internal interface (map_page, "
        "migrate_page, invalidate_page, populate_*); importing p2m or "
        "allocator internals, or touching .p2m/.allocator attributes and "
        "frame mutators, breaks the paper's section 4.1 isolation."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return any(seg in POLICY_SEGMENTS for seg in ctx.parts)

    # ------------------------------------------------------------------

    def visit_Import(self, node: ast.Import, ctx: FileContext):
        if ctx.in_type_checking(node):
            return
        for alias in node.names:
            if alias.name.startswith(FORBIDDEN_MODULES):
                yield self.finding(
                    ctx,
                    node,
                    f"policy layer imports hypervisor internals "
                    f"({alias.name}); go through "
                    f"repro.core.interface.InternalInterface instead",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext):
        if ctx.in_type_checking(node):
            return
        module = node.module or ""
        if module.startswith(FORBIDDEN_MODULES):
            yield self.finding(
                ctx,
                node,
                f"policy layer imports hypervisor internals ({module}); "
                f"go through repro.core.interface.InternalInterface instead",
            )
            return
        for alias in node.names:
            if alias.name in FORBIDDEN_IMPORT_NAMES:
                yield self.finding(
                    ctx,
                    node,
                    f"policy layer imports {alias.name}; hypervisor memory "
                    f"state is private to the internal interface",
                )

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext):
        if node.attr in FORBIDDEN_ATTRS:
            yield self.finding(
                ctx,
                node,
                f"policy layer reaches hypervisor state via .{node.attr}; "
                f"use the internal interface (map_page/migrate_page/"
                f"invalidate_page/populate_*) instead",
            )

    def visit_Call(self, node: ast.Call, ctx: FileContext):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in FORBIDDEN_CALLS:
            yield self.finding(
                ctx,
                node,
                f"policy layer calls frame mutator .{func.attr}(); only "
                f"the internal interface may touch p2m entries and frames",
            )
