"""RPR007 purity.

``runner.execute_request`` is the process-pool worker target: PR 3's
parallel runner and the planned serving layer both assume that a request
executed in *any* process yields bit-for-bit the parent's serial result,
and the content-addressed store assumes the result is a function of the
request alone (cache-key soundness). Both break the moment anything in
``execute_request``'s call closure reads the wall clock, the process
environment, an unseeded RNG stream, the filesystem (outside the run
store, whose job is I/O), or writes module-level state.

The project pass computes each function's *direct* effects (see
:mod:`repro.lint.project`), walks the call graph from every function
named ``execute_request``, and flags each impure operation reachable
from a root — anchored at the offending line, with the shortest call
chain in the message so the report explains *why* the function is in
the pure zone.
"""

from __future__ import annotations

from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import register

#: The purity roots: every project function with this bare name.
ROOT_NAME = "execute_request"

#: Modules whose *job* is filesystem I/O: the run store keeps its fs
#: effects (they are the sanctioned persistence layer, not hidden state).
FS_SANCTIONED_PREFIXES = ("repro.runstore",)

_KIND_LABEL = {
    "time": "wall-clock read",
    "env": "environment read",
    "rng": "unseeded randomness",
    "fs": "filesystem access",
    "state": "module-state write",
}


def _chain_text(chain) -> str:
    parts = [q.split(".")[-1] for q in chain]
    if len(parts) > 5:
        parts = parts[:2] + ["..."] + parts[-2:]
    return " -> ".join(parts)


@register
class PurityRule(ProjectRule):
    rule_id = "RPR007"
    name = "purity"
    description = (
        "Everything reachable from runner execute_request must be pure: "
        "no wall-clock or environment reads, no unseeded randomness, no "
        "filesystem access outside the run store, no module-state "
        "writes. Impurity there breaks parallel-runner bit-identity and "
        "content-addressed cache-key soundness."
    )

    def check_project(self, project: ProjectContext) -> List[Finding]:
        roots = project.roots_named(ROOT_NAME)
        if not roots:
            return []
        chains = project.reachable_from(roots)
        findings: List[Finding] = []
        for qname in sorted(chains):
            fn = project.functions.get(qname)
            if fn is None:
                continue
            chain = chains[qname]
            sanctioned_fs = fn.module.name.startswith(FS_SANCTIONED_PREFIXES)
            for effect in fn.effects:
                if effect.kind == "fs" and sanctioned_fs:
                    continue
                findings.append(
                    self.project_finding(
                        fn.module.path,
                        effect.node,
                        f"impure {_KIND_LABEL[effect.kind]} in the pure "
                        f"zone: {effect.detail} (reachable via "
                        f"{_chain_text(chain)})",
                    )
                )
            for write in fn.state_writes:
                findings.append(
                    self.project_finding(
                        fn.module.path,
                        write.node,
                        f"impure {_KIND_LABEL['state']} in the pure zone: "
                        f"{fn.short_name} writes module-level "
                        f"{write.target!r} of {write.module_name} "
                        f"(reachable via {_chain_text(chain)})",
                    )
                )
        return findings
