"""RPR002 determinism.

Every stochastic component in the reproduction draws from a seeded
``np.random.Generator`` handed down from ``SimConfig.rng_seed`` (the
pattern of :mod:`repro.hardware.counters`). Unseeded or process-global
randomness — the ``random`` module, ``np.random.*`` module-level
functions, ``np.random.default_rng()`` without a seed — and wall-clock
reads silently break run reproducibility; so does the builtin
:func:`hash` on strings, whose value changes with ``PYTHONHASHSEED``
(use :func:`repro.util.stable_hash` to derive seeds).
"""

from __future__ import annotations

import ast

from repro.lint.registry import register
from repro.lint.visitor import FileContext, Rule, call_name

#: Wall-clock reads (module.function dotted names).
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.today",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that are fine to touch: seeded-generator
#: construction, not the module-level global stream.
NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)

_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


@register
class DeterminismRule(Rule):
    rule_id = "RPR002"
    name = "determinism"
    description = (
        "Forbids unseeded/global randomness (the random module, "
        "np.random module-level functions, np.random.default_rng() with "
        "no seed), wall-clock reads (time.time, datetime.now) and the "
        "PYTHONHASHSEED-dependent builtin hash(); stochastic code must "
        "take a seeded np.random.Generator parameter."
    )

    # ------------------------------------------------------------------

    def visit_Import(self, node: ast.Import, ctx: FileContext):
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    "the random module is process-global, unseeded state; "
                    "take a seeded np.random.Generator parameter instead",
                )

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext):
        if node.module == "random" or (node.module or "").startswith("random."):
            yield self.finding(
                ctx,
                node,
                "the random module is process-global, unseeded state; "
                "take a seeded np.random.Generator parameter instead",
            )
            return
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in NP_RANDOM_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"from numpy.random import {alias.name} binds "
                        f"numpy's global random stream; draw from a seeded "
                        f"np.random.Generator instead",
                    )

    def visit_Call(self, node: ast.Call, ctx: FileContext):
        name = call_name(node)
        if name is None:
            return
        if name in CLOCK_CALLS:
            yield self.finding(
                ctx,
                node,
                f"{name}() reads the wall clock; simulated time must come "
                f"from the engine, not the host",
            )
            return
        if name == "hash":
            yield self.finding(
                ctx,
                node,
                "builtin hash() is randomised per process via "
                "PYTHONHASHSEED; use repro.util.stable_hash for seeds",
            )
            return
        if name.split(".")[-1] == "default_rng" and not node.args:
            yield self.finding(
                ctx,
                node,
                "np.random.default_rng() without a seed is "
                "nondeterministic; seed it from SimConfig.rng_seed",
            )
            return
        if name.startswith(_NP_RANDOM_PREFIXES):
            attr = name.split(".")[2]
            if attr not in NP_RANDOM_ALLOWED:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses numpy's global random stream; draw "
                    f"from a seeded np.random.Generator instead",
                )
