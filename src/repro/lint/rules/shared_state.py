"""RPR006 shared-mutable-state.

A module-level dict/list/set written from a function body is per-process
shared state: ``--jobs N`` worker processes each mutate their own copy
(silently diverging from the parent), and the planned batched
multi-world engines would cross-contaminate runs through it. PR 3's
``experiments.common._CACHE`` was exactly this shape; the sanctioned
patterns are objects owned by an instance (a store, a registry object, a
session) handed down explicitly, or import-time-only population.

This rule uses the project symbol table to find every module-level
mutable binding, then reports each write reaching it from any function
body in any analyzed module — same-module bare-name mutations,
``global``-declared rebinds, and cross-module ``mod.STATE[...] = x``
pokes alike. Deliberate globals (the vectorization switch, the rule
registry, the observability session) belong in the committed baseline
or under a ``# repro-lint: ignore[RPR006]`` with a justification.
"""

from __future__ import annotations

from typing import List

from repro.lint.findings import Finding
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import register


@register
class SharedMutableStateRule(ProjectRule):
    rule_id = "RPR006"
    name = "shared-mutable-state"
    description = (
        "Module-level mutable objects (dicts, lists, sets) written from "
        "function bodies anywhere in the project are per-process shared "
        "state that poisons --jobs N workers and batched multi-world "
        "engines; own the state in an object handed down explicitly, or "
        "baseline the write with a justification."
    )

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            for write in fn.state_writes:
                owner = write.module_name
                where = (
                    "module-level"
                    if owner == fn.module.name
                    else f"{owner}'s module-level"
                )
                if write.kind == "rebind":
                    message = (
                        f"function {fn.short_name} rebinds {where} name "
                        f"{write.target!r} via 'global'; module globals "
                        f"written at runtime do not survive --jobs N "
                        f"worker boundaries — pass the state in explicitly"
                    )
                else:
                    message = (
                        f"function {fn.short_name} mutates {where} "
                        f"mutable {write.target!r}; shared module state "
                        f"diverges across --jobs N workers — own it in "
                        f"an object handed down explicitly"
                    )
                findings.append(
                    self.project_finding(fn.module.path, write.node, message)
                )
        return findings
