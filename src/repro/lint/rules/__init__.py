"""The shipped lint rules; importing this package registers them all."""

from repro.lint.rules.array_aliasing import (
    ArrayAliasParamRule,
    ArrayAliasReturnRule,
)
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.encapsulation import InterfaceEncapsulationRule
from repro.lint.rules.error_discipline import ErrorDisciplineRule
from repro.lint.rules.hypercall_validation import HypercallValidationRule
from repro.lint.rules.migration_protocol import MigrationProtocolRule
from repro.lint.rules.p2m_typestate import P2MTypestateRule
from repro.lint.rules.purity import PurityRule
from repro.lint.rules.shared_state import SharedMutableStateRule

__all__ = [
    "InterfaceEncapsulationRule",
    "DeterminismRule",
    "ErrorDisciplineRule",
    "HypercallValidationRule",
    "MigrationProtocolRule",
    "SharedMutableStateRule",
    "PurityRule",
    "P2MTypestateRule",
    "ArrayAliasReturnRule",
    "ArrayAliasParamRule",
]
