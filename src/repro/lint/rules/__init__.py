"""The shipped lint rules; importing this package registers them all."""

from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.encapsulation import InterfaceEncapsulationRule
from repro.lint.rules.error_discipline import ErrorDisciplineRule
from repro.lint.rules.hypercall_validation import HypercallValidationRule
from repro.lint.rules.migration_protocol import MigrationProtocolRule

__all__ = [
    "InterfaceEncapsulationRule",
    "DeterminismRule",
    "ErrorDisciplineRule",
    "HypercallValidationRule",
    "MigrationProtocolRule",
]
