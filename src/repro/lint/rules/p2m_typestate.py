"""RPR008 p2m-typestate.

The paper's migration protocol (section 4.1) is a lifecycle: an entry is
populated, may be write-protected to freeze its content, is remapped (or
unprotected) to finish the migration, may be invalidated to arm the
first-touch trap, and is removed at teardown. The runtime sanitizer
traps violating *executions*; this pass flags violating *call
sequences* statically, per function, in the hypervisor and policy
layers — the complementary check that does not need the sequence to run.

The automaton (states: unknown, mapped, invalid, write-protected,
freed):

* ``set_entry``/``map_page`` (re)populate from any state;
* ``invalidate``/``invalidate_page`` need a mapped entry — invalidating
  a write-protected page abandons an in-flight migration;
* ``write_protect`` needs a mapped, unprotected entry (double-protect
  and protecting invalid/freed entries raise at runtime);
* ``remap``/``unprotect`` need a write-protected entry;
* ``remove`` frees mapped or invalid entries — freeing mid-migration or
  double-freeing is a violation;
* ``migrate_page`` needs a mapped entry.

Tracking keys on the receiver *and* the page argument text, so
``p2m.write_protect(a); p2m.remap(b, m)`` does not satisfy ``b``'s
protocol with ``a``'s protect. Branches fork the state set (if/else,
try/except union; loop bodies run twice to reach their fixpoint), and a
sequence is flagged only when **every** possible state at the call is a
violating one — a may-analysis that stays quiet on code that is correct
on any path. After a finding the key resets to unknown to avoid
cascades.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.project import FuncDef, ProjectContext, ProjectRule
from repro.lint.registry import register
from repro.lint.visitor import FileContext

#: Path segments that scope this rule (hypervisor + policy layers).
SCOPE_SEGMENTS = frozenset({"hypervisor", "policies"})

UNKNOWN = "unknown"
MAPPED = "mapped"
INVALID = "invalid"
PROTECTED = "write-protected"
FREED = "freed"

VIOLATION = None  # sentinel transition result

#: op -> {state -> next state (None = violation)}; UNKNOWN entries give
#: the state assumed when the op is the first we see for a key.
TRANSITIONS: Dict[str, Dict[str, Optional[str]]] = {
    "set_entry": {
        UNKNOWN: MAPPED,
        MAPPED: MAPPED,
        INVALID: MAPPED,
        PROTECTED: MAPPED,
        FREED: MAPPED,
    },
    "map_page": {
        UNKNOWN: MAPPED,
        MAPPED: MAPPED,
        INVALID: MAPPED,
        PROTECTED: MAPPED,
        FREED: MAPPED,
    },
    "invalidate": {
        UNKNOWN: INVALID,
        MAPPED: INVALID,
        INVALID: INVALID,
        PROTECTED: VIOLATION,
        FREED: FREED,
    },
    "invalidate_page": {
        UNKNOWN: INVALID,
        MAPPED: INVALID,
        INVALID: INVALID,
        PROTECTED: VIOLATION,
        FREED: FREED,
    },
    "write_protect": {
        UNKNOWN: PROTECTED,
        MAPPED: PROTECTED,
        INVALID: VIOLATION,
        PROTECTED: VIOLATION,
        FREED: VIOLATION,
    },
    "remap": {
        UNKNOWN: MAPPED,
        MAPPED: VIOLATION,
        INVALID: VIOLATION,
        PROTECTED: MAPPED,
        FREED: VIOLATION,
    },
    "unprotect": {
        UNKNOWN: MAPPED,
        MAPPED: VIOLATION,
        INVALID: VIOLATION,
        PROTECTED: MAPPED,
        FREED: VIOLATION,
    },
    "remove": {
        UNKNOWN: FREED,
        MAPPED: FREED,
        INVALID: FREED,
        PROTECTED: VIOLATION,
        FREED: VIOLATION,
    },
    "migrate_page": {
        UNKNOWN: MAPPED,
        MAPPED: MAPPED,
        INVALID: VIOLATION,
        PROTECTED: VIOLATION,
        FREED: VIOLATION,
    },
}

#: Violation explanations, per (op, state).
_WHY = {
    ("invalidate", PROTECTED): (
        "invalidating a write-protected entry abandons an in-flight "
        "migration (remap or unprotect it first)"
    ),
    ("invalidate_page", PROTECTED): (
        "invalidating a write-protected entry abandons an in-flight "
        "migration (remap or unprotect it first)"
    ),
    ("write_protect", INVALID): (
        "write-protecting an invalid entry raises at runtime (populate "
        "it first)"
    ),
    ("write_protect", PROTECTED): "the entry is already write-protected",
    ("write_protect", FREED): "the entry was removed",
    ("remap", MAPPED): (
        "remap requires a write-protected entry (the write-protect -> "
        "copy -> remap ordering)"
    ),
    ("remap", INVALID): "remapping an invalid entry raises at runtime",
    ("remap", FREED): "the entry was removed",
    ("unprotect", MAPPED): "the entry is not write-protected",
    ("unprotect", INVALID): "unprotecting an invalid entry raises at runtime",
    ("unprotect", FREED): "the entry was removed",
    ("remove", PROTECTED): (
        "freeing a write-protected entry mid-migration loses the frame "
        "the protocol still copies from"
    ),
    ("remove", FREED): "double free: the entry was already removed",
    ("migrate_page", INVALID): "migrating an invalid page raises at runtime",
    ("migrate_page", PROTECTED): (
        "the page is already mid-migration (write-protected)"
    ),
    ("migrate_page", FREED): "the entry was removed",
}

StateSet = Set[str]
Env = Dict[str, StateSet]


def _merge(a: Env, b: Env) -> Env:
    out: Env = {}
    for key in set(a) | set(b):
        # A key unseen on one branch may hold any state there: widen
        # with UNKNOWN instead of pretending the other branch's states.
        left = a.get(key, {UNKNOWN})
        right = b.get(key, {UNKNOWN})
        out[key] = set(left) | set(right)
    return out


def _copy(env: Env) -> Env:
    return {k: set(v) for k, v in env.items()}


@register
class P2MTypestateRule(ProjectRule):
    rule_id = "RPR008"
    name = "p2m-typestate"
    description = (
        "Models the p2m entry lifecycle (populate, write-protect, "
        "remap/unprotect, invalidate, remove) as a typestate automaton "
        "and flags call sequences in hypervisor/ and core/policies/ "
        "that violate the migration protocol on every path — the static "
        "complement of the runtime P2M sanitizer."
    )

    def check_project(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        for mod, ctx in project.iter_contexts():
            if not any(seg in SCOPE_SEGMENTS for seg in ctx.parts):
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, FuncDef):
                    findings.extend(self._check_function(node, ctx))
        return findings

    # ------------------------------------------------------------------

    def _check_function(
        self, func: ast.AST, ctx: FileContext
    ) -> List[Finding]:
        findings: List[Finding] = []
        env: Env = {}
        self._exec_block(func.body, env, func, ctx, findings)
        return findings

    def _exec_block(
        self,
        stmts: Iterable[ast.stmt],
        env: Env,
        func: ast.AST,
        ctx: FileContext,
        findings: List[Finding],
    ) -> Env:
        for stmt in stmts:
            env = self._exec_stmt(stmt, env, func, ctx, findings)
        return env

    def _exec_stmt(
        self,
        stmt: ast.stmt,
        env: Env,
        func: ast.AST,
        ctx: FileContext,
        findings: List[Finding],
    ) -> Env:
        if isinstance(stmt, ast.If):
            self._apply_calls(stmt.test, env, func, ctx, findings)
            then_env = self._exec_block(
                stmt.body, _copy(env), func, ctx, findings
            )
            else_env = self._exec_block(
                stmt.orelse, _copy(env), func, ctx, findings
            )
            return _merge(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            head = stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor)) else stmt.test
            self._apply_calls(head, env, func, ctx, findings)
            # Zero iterations keep env; run the body twice (quiet pass
            # first so loop-carried states don't double-report) and
            # merge to reach the two-iteration fixpoint.
            once = self._exec_block(
                stmt.body, _copy(env), func, ctx, findings
            )
            merged = _merge(env, once)
            twice = self._exec_block(stmt.body, _copy(merged), func, ctx, [])
            merged = _merge(merged, twice)
            return self._exec_block(stmt.orelse, merged, func, ctx, findings)
        if isinstance(stmt, ast.Try):
            body_env = self._exec_block(
                stmt.body, _copy(env), func, ctx, findings
            )
            body_env = self._exec_block(
                stmt.orelse, body_env, func, ctx, findings
            )
            merged = body_env
            for handler in stmt.handlers:
                # An exception may fire anywhere in the body: the handler
                # sees either the pre-body or the post-body states.
                handler_env = self._exec_block(
                    handler.body,
                    _merge(_copy(env), body_env),
                    func,
                    ctx,
                    findings,
                )
                merged = _merge(merged, handler_env)
            return self._exec_block(
                stmt.finalbody, merged, func, ctx, findings
            )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._apply_calls(item.context_expr, env, func, ctx, findings)
            return self._exec_block(stmt.body, env, func, ctx, findings)
        if isinstance(stmt, FuncDef) or isinstance(stmt, ast.ClassDef):
            return env  # nested definitions are separate sequences
        self._apply_calls(stmt, env, func, ctx, findings)
        return env

    # ------------------------------------------------------------------

    def _apply_calls(
        self,
        node: Optional[ast.AST],
        env: Env,
        func: ast.AST,
        ctx: FileContext,
        findings: List[Finding],
    ) -> None:
        if node is None:
            return
        calls = [
            n
            for n in ast.walk(node)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr in TRANSITIONS
            and ctx.enclosing_function(n) is func
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        for call in calls:
            self._apply_call(call, env, findings, ctx)

    def _key(self, call: ast.Call) -> str:
        assert isinstance(call.func, ast.Attribute)
        receiver = ast.unparse(call.func.value)
        page = ast.unparse(call.args[0]) if call.args else ""
        return f"{receiver}|{page}"

    def _apply_call(
        self,
        call: ast.Call,
        env: Env,
        findings: List[Finding],
        ctx: FileContext,
    ) -> None:
        """Step the automaton over one call; ``env`` is mutated in place."""
        assert isinstance(call.func, ast.Attribute)
        op = call.func.attr
        table = TRANSITIONS[op]
        key = self._key(call)
        states = env.get(key, {UNKNOWN})
        nexts = {table[s] for s in states}
        if VIOLATION in nexts and len(nexts) == 1:
            # Every possible state violates: report, then reset.
            why = sorted(
                {
                    _WHY.get((op, s), "protocol-violating transition")
                    for s in states
                }
            )
            receiver = ast.unparse(call.func.value)
            state_text = "/".join(sorted(states))
            findings.append(
                self.project_finding(
                    ctx.path,
                    call,
                    f"{receiver}.{op}() on a {state_text} entry: "
                    f"{'; '.join(why)}",
                )
            )
            env[key] = {UNKNOWN}
            return
        env[key] = {s for s in nexts if s is not VIOLATION} or {UNKNOWN}
