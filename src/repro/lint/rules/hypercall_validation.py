"""RPR004 hypercall-validation.

The external interface (paper section 4.2) is the guest-facing attack
surface: ``NUMA_SET_POLICY``, ``NUMA_PAGE_EVENTS``, ``CARREFOUR_CONTROL``
arrive with guest-controlled argument dicts. Every handler (by
convention a ``_hc_*`` method) must validate its arguments — raise
``HypercallError`` or call a ``validate_*``/``require_*`` helper —
before it reads or mutates domain state. This rule walks each handler's
statements in order and flags the first state touch that precedes any
validation.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lint.registry import register
from repro.lint.visitor import FileContext, Rule

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Handler naming convention for external-interface hypercalls.
HANDLER_PREFIX = "_hc_"

#: Call names (last dotted part) that count as argument validation.
VALIDATOR_PREFIXES = ("validate_", "require_", "check_")

#: The typed error a handler raises on malformed guest arguments.
VALIDATION_ERRORS = frozenset({"HypercallError"})


def _is_validator(stmt: ast.stmt) -> bool:
    """True if this statement performs (or can perform) arg validation."""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Raise):
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = getattr(target, "id", getattr(target, "attr", None))
            if name in VALIDATION_ERRORS:
                return True
        elif isinstance(node, ast.Call):
            func = node.func
            name = getattr(func, "attr", None) or getattr(func, "id", None)
            if name and name.startswith(VALIDATOR_PREFIXES):
                return True
    return False


def _state_touches(stmt: ast.stmt, self_name: str) -> Iterator[ast.AST]:
    """Yield nodes in *stmt* that read/mutate domain state.

    State touches are calls through ``self.<attr>...`` (reaching the
    policy manager's domains, hypervisor, interface) — anything beyond
    pure argument inspection.
    """
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # self.method(...) or self.attr.method(...)
        base = func
        while isinstance(base, ast.Attribute):
            base = base.value
        if isinstance(base, ast.Name) and base.id == self_name:
            if isinstance(func, ast.Attribute) and func.attr.startswith(
                VALIDATOR_PREFIXES
            ):
                continue
            yield node


@register
class HypercallValidationRule(Rule):
    rule_id = "RPR004"
    name = "hypercall-validation"
    description = (
        "External-interface handlers (_hc_* methods) must validate "
        "guest-supplied arguments (raise HypercallError or call a "
        "validate_*/require_* helper) before touching domain state."
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext):
        yield from self._check_handler(node, ctx)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ):
        yield from self._check_handler(node, ctx)

    # ------------------------------------------------------------------

    def _check_handler(self, node: FuncDef, ctx: FileContext):
        if not node.name.startswith(HANDLER_PREFIX):
            return
        args = node.args.args
        self_name = args[0].arg if args else "self"
        validated = False
        for stmt in node.body:
            if _is_validator(stmt):
                # Validation and state access may share a statement
                # (``dom = self.domain(validate_id(args))``): arguments
                # evaluate before the call, so the validator runs first.
                validated = True
            if validated:
                continue
            for touch in _state_touches(stmt, self_name):
                yield self.finding(
                    ctx,
                    touch,
                    f"handler {node.name} touches domain state before "
                    f"validating guest arguments; validate args first "
                    f"(raise HypercallError on bad input)",
                )
                return
