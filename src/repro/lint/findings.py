"""The unit of analyzer output: one finding at one source location."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple, Union


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule_id: stable identifier ("RPR001").
        rule_name: human-readable rule slug ("interface-encapsulation").
        path: file the finding is in (as given to the analyzer).
        line: 1-based source line.
        col: 1-based source column.
        message: what is wrong and what the sanctioned pattern is.
    """

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready representation."""
        return asdict(self)

    def render(self) -> str:
        """``path:line:col: RULE [name] message`` — one line per finding."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )
