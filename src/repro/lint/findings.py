"""The unit of analyzer output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

#: Version of the JSON finding schema emitted by ``--format json``.
#: Version 2 renamed ``path`` to ``file`` and added ``severity`` and the
#: top-level ``schema_version`` field.
FINDINGS_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule_id: stable identifier ("RPR001").
        rule_name: human-readable rule slug ("interface-encapsulation").
        path: file the finding is in (as given to the analyzer).
        line: 1-based source line.
        col: 1-based source column.
        message: what is wrong and what the sanctioned pattern is.
        severity: "error" (gating) or "warning" (informational).
    """

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready representation (schema version 2 keys)."""
        return {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": self.severity,
            "file": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Union[str, int]]) -> "Finding":
        """Rebuild a finding from its :meth:`to_dict` form (round-trip)."""
        return cls(
            rule_id=str(payload["rule_id"]),
            rule_name=str(payload["rule_name"]),
            path=str(payload["file"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            message=str(payload["message"]),
            severity=str(payload.get("severity", "error")),
        )

    def render(self) -> str:
        """``path:line:col: RULE [name] message`` — one line per finding."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )
