"""File discovery + rule driving + report rendering."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Type

from repro.lint.findings import Finding
from repro.lint.registry import get_rules
from repro.lint.visitor import FileContext, Rule


@dataclass
class LintReport:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"error: {err}" for err in self.errors)
        noun = "file" if self.files_checked == 1 else "files"
        if self.findings or self.errors:
            lines.append(
                f"{len(self.findings)} finding(s) in "
                f"{self.files_checked} {noun}"
            )
        else:
            lines.append(f"all clean: {self.files_checked} {noun} checked")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "errors": self.errors,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def discover(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__",)
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(found))


class Analyzer:
    """Runs a set of rules over a set of paths.

    Args:
        select: keep only these rules (ids or names); None keeps all.
        ignore: drop these rules (ids or names).
    """

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ):
        self.rule_classes: List[Type[Rule]] = get_rules(select, ignore)

    def run(self, paths: Sequence[str]) -> LintReport:
        report = LintReport()
        for path in paths:
            # A typo'd path must not read as "all clean" in CI.
            if not os.path.exists(path):
                report.errors.append(f"{path}: no such file or directory")
        for path in discover(paths):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                ctx = FileContext(path, source)
            except (OSError, SyntaxError, ValueError) as exc:
                report.errors.append(f"{path}: {exc}")
                continue
            report.files_checked += 1
            for rule_cls in self.rule_classes:
                rule = rule_cls()
                if not rule.applies_to(ctx):
                    continue
                report.findings.extend(rule.check(ctx))
        report.findings.sort(key=lambda f: f.sort_key)
        return report
