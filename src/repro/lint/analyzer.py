"""File discovery + rule driving + report rendering.

Two rule populations run here: the per-file AST rules (RPR001-RPR005),
which see one :class:`FileContext` at a time, and the project-wide
dataflow rules (RPR006-RPR010), which need the cross-module
:class:`~repro.lint.project.ProjectContext` (symbol table, call graph,
effect summaries). Project rules are strict-mode machinery: the
analyzer builds the project context and runs them only when asked
(``--strict``, ``--baseline-update``, or an explicit ``--select``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from repro.lint import baseline as baseline_mod
from repro.lint.findings import FINDINGS_SCHEMA_VERSION, Finding
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import get_rules
from repro.lint.visitor import FileContext, Rule


@dataclass
class LintReport:
    """Outcome of one analyzer run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)
    #: Findings suppressed by the baseline (strict mode only).
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"error: {err}" for err in self.errors)
        noun = "file" if self.files_checked == 1 else "files"
        suffix = (
            f" ({self.baselined} baselined finding(s) suppressed)"
            if self.baselined
            else ""
        )
        if self.findings or self.errors:
            lines.append(
                f"{len(self.findings)} finding(s) in "
                f"{self.files_checked} {noun}{suffix}"
            )
        else:
            lines.append(
                f"all clean: {self.files_checked} {noun} checked{suffix}"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "schema_version": FINDINGS_SCHEMA_VERSION,
                "files_checked": self.files_checked,
                "errors": self.errors,
                "baselined": self.baselined,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def discover(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__",)
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(found))


class Analyzer:
    """Runs a set of rules over a set of paths.

    Args:
        select: keep only these rules (ids or names); None keeps all.
        ignore: drop these rules (ids or names).
        project: run the project-wide dataflow rules too. When False
            (the default) only per-file rules run — the fast pre-strict
            mode; an explicit ``--select`` of a project rule implies it.
        baseline: allowed-findings signature counts (see
            :mod:`repro.lint.baseline`); matched findings are suppressed
            and counted in :attr:`LintReport.baselined`.
    """

    def __init__(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
        project: bool = False,
        baseline: Optional[Dict[baseline_mod.Key, int]] = None,
    ):
        rules = get_rules(select, ignore)
        selected_project = select is not None and any(
            issubclass(cls, ProjectRule)
            and (cls.rule_id in select or cls.name in select)
            for cls in rules
        )
        include_project = project or selected_project
        self.rule_classes: List[Type[Rule]] = [
            cls for cls in rules if not issubclass(cls, ProjectRule)
        ]
        self.project_rule_classes: List[Type[ProjectRule]] = (
            [cls for cls in rules if issubclass(cls, ProjectRule)]
            if include_project
            else []
        )
        self.baseline = baseline

    def run(self, paths: Sequence[str]) -> LintReport:
        report = LintReport()
        for path in paths:
            # A typo'd path must not read as "all clean" in CI.
            if not os.path.exists(path):
                report.errors.append(f"{path}: no such file or directory")
        contexts: List[FileContext] = []
        for path in discover(paths):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                ctx = FileContext(path, source)
            except (OSError, SyntaxError, ValueError) as exc:
                report.errors.append(f"{path}: {exc}")
                continue
            contexts.append(ctx)
            report.files_checked += 1
            for rule_cls in self.rule_classes:
                rule = rule_cls()
                if not rule.applies_to(ctx):
                    continue
                report.findings.extend(rule.check(ctx))
        if self.project_rule_classes and contexts:
            project = ProjectContext(contexts)
            by_path = project.context_by_path
            for rule_cls in self.project_rule_classes:
                rule = rule_cls()
                for finding in rule.check_project(project):
                    ctx = by_path.get(finding.path)
                    if ctx is not None and ctx.is_suppressed(
                        finding.line, rule.rule_id
                    ):
                        continue
                    report.findings.append(finding)
        report.findings.sort(key=lambda f: f.sort_key)
        if self.baseline is not None:
            report.findings, report.baselined = baseline_mod.apply_baseline(
                report.findings, self.baseline
            )
        return report
