"""The visitor framework underneath every lint rule.

A :class:`FileContext` wraps one parsed source file with the structural
queries rules keep needing: parent links, enclosing functions,
``TYPE_CHECKING`` detection and per-line suppression comments. A
:class:`Rule` walks the AST once and dispatches nodes to ``visit_<Type>``
methods, collecting :class:`~repro.lint.findings.Finding` objects.

Suppression: a line containing ``# repro-lint: ignore`` silences every
rule on that line; ``# repro-lint: ignore[RPR001, RPR003]`` silences only
the listed rules.
"""

from __future__ import annotations

import abc
import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None for anything else)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call target (``np.random.default_rng``)."""
    return dotted_name(node.func)


class FileContext:
    """One source file, parsed, with the queries rules need.

    Args:
        path: display path of the file (used in findings and for
            path-segment scoping by rules).
        source: the file's text.

    Raises:
        SyntaxError: the file does not parse.
    """

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._suppressed: Dict[int, Optional[Set[str]]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            ids = match.group(1)
            if ids is None:
                self._suppressed[lineno] = None  # suppress every rule
            else:
                self._suppressed[lineno] = {
                    part.strip() for part in ids.split(",") if part.strip()
                }

    # ------------------------------------------------------------------
    # Structure queries

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path segments, used by rules to scope themselves."""
        return tuple(p for p in re.split(r"[\\/]+", self.path) if p)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def parents(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk ancestors from the immediate parent to the module."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/lambda definition, if any."""
        for ancestor in self.parents(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return ancestor
        return None

    def in_type_checking(self, node: ast.AST) -> bool:
        """True inside an ``if TYPE_CHECKING:`` block (annotations only)."""
        for ancestor in self.parents(node):
            if isinstance(ancestor, ast.If):
                test = dotted_name(ancestor.test)
                if test is not None and test.split(".")[-1] == "TYPE_CHECKING":
                    return True
        return False

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        if lineno not in self._suppressed:
            return False
        ids = self._suppressed[lineno]
        return ids is None or rule_id in ids


class Rule(abc.ABC):
    """One pluggable check.

    Subclasses set :attr:`rule_id`, :attr:`name` and :attr:`description`,
    then implement ``visit_<NodeType>(node, ctx)`` generators yielding
    findings. Register with :func:`repro.lint.registry.register`.
    """

    #: Stable identifier, e.g. ``RPR001``.
    rule_id: str = ""
    #: Human-readable slug, e.g. ``interface-encapsulation``.
    name: str = ""
    #: One-paragraph description shown by ``--list-rules``.
    description: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule scans ``ctx`` at all (default: every file)."""
        return True

    def start_file(self, ctx: FileContext) -> None:
        """Per-file setup hook (collect imports, reset state, ...)."""

    def check(self, ctx: FileContext) -> List[Finding]:
        """Walk the file once, dispatching nodes to ``visit_*`` methods."""
        self.start_file(ctx)
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            handler = getattr(self, "visit_" + type(node).__name__, None)
            if handler is None:
                continue
            produced: Optional[Iterable[Finding]] = handler(node, ctx)
            if produced:
                findings.extend(produced)
        return [
            f for f in findings if not ctx.is_suppressed(f.line, self.rule_id)
        ]

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )
