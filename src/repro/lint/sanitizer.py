"""Runtime P2M sanitizer: the dynamic half of the correctness tooling.

The static rules freeze the architecture; this module checks the
*dynamic* invariants of the paper's memory machinery while tests run:

* a machine frame backs at most one (domain, gpfn) at a time — a second
  ``set_entry`` on the same mfn is a **double map** (paper section 2.1:
  the p2m is what isolates domains from each other);
* a frame returned to the heap must not be mapped, and a mapped frame
  must not be freed while still referenced;
* migration follows write-protect -> copy -> remap (section 4.1):
  remapping an entry that was never write-protected, write-protecting
  twice, or revalidating an entry mid-migration all raise.

One :class:`P2MSanitizer` is owned by one hypervisor and attached to its
machine memory and to each domain's p2m table (``.sanitizer``
attributes, ``None`` when disabled — the hooks cost one attribute check
each). Enable globally with :func:`enable` (the tier-1 test suite does,
via ``tests/conftest.py``) or per-run with ``SimConfig.sanitize_p2m``.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.errors import SanitizerError

class _SanitizerMode:
    """Holds the process-wide global-enable switch.

    An attribute on one holder object (the ``core.batch`` idiom) rather
    than a rebound module global, so the dataflow lint can see the write
    is confined to one owned object.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_MODE = _SanitizerMode()


def enable() -> None:
    """Attach a sanitizer to every hypervisor created from now on."""
    _MODE.enabled = True


def disable() -> None:
    """Stop attaching sanitizers to newly created hypervisors."""
    _MODE.enabled = False


def is_enabled() -> bool:
    """Whether new hypervisors get a sanitizer regardless of config."""
    return _MODE.enabled


class P2MSanitizer:
    """Shadow bookkeeping of frame ownership and migration state.

    The sanitizer never mutates hypervisor state: every hook either
    records the transition or raises :class:`SanitizerError` *before*
    the caller applies it, so a trapped violation leaves the real p2m
    and heap untouched.
    """

    def __init__(self) -> None:
        #: mfn -> (domain_id, gpfn) for every currently mapped frame.
        self._owners: Dict[int, Tuple[int, int]] = {}
        #: (domain_id, gpfn) -> mfn, the reverse of :attr:`_owners`.
        self._backing: Dict[Tuple[int, int], int] = {}
        #: Every frame currently handed out by the machine allocator.
        self._allocated: Set[int] = set()
        #: Entries write-protected by an in-flight migration.
        self._protected: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Machine allocator hooks

    def frames_allocated(self, mfn: int, count: int) -> None:
        """A run of ``count`` frames starting at ``mfn`` left the heap."""
        self._allocated.update(range(mfn, mfn + count))

    def frames_freed(self, mfn: int, count: int) -> None:
        """A run of frames is about to return to the heap."""
        for frame in range(mfn, mfn + count):
            owner = self._owners.get(frame)
            if owner is not None:
                raise SanitizerError(
                    f"freeing frame {frame:#x} still mapped at domain "
                    f"{owner[0]} gpfn {owner[1]:#x}; invalidate or remap "
                    f"the entry before freeing its frame"
                )
        self._allocated.difference_update(range(mfn, mfn + count))

    # ------------------------------------------------------------------
    # P2M table hooks (called before the table mutates)

    def entry_set(self, domain_id: int, gpfn: int, mfn: int) -> None:
        """``set_entry``: map/revalidate ``gpfn`` onto ``mfn``."""
        key = (domain_id, gpfn)
        if key in self._protected:
            raise SanitizerError(
                f"set_entry on write-protected domain {domain_id} gpfn "
                f"{gpfn:#x}: an in-flight migration must finish (remap) "
                f"or abort (unprotect) first"
            )
        if mfn not in self._allocated:
            raise SanitizerError(
                f"mapping frame {mfn:#x} that is not allocated from the "
                f"heap (freed or never allocated) at domain {domain_id} "
                f"gpfn {gpfn:#x}"
            )
        owner = self._owners.get(mfn)
        if owner is not None and owner != key:
            raise SanitizerError(
                f"double map of frame {mfn:#x}: already backs domain "
                f"{owner[0]} gpfn {owner[1]:#x}, now mapped at domain "
                f"{domain_id} gpfn {gpfn:#x}"
            )
        old_mfn = self._backing.get(key)
        if old_mfn is not None and old_mfn != mfn:
            raise SanitizerError(
                f"overwriting live mapping of domain {domain_id} gpfn "
                f"{gpfn:#x} (frame {old_mfn:#x} -> {mfn:#x}) without "
                f"invalidate or migrate; the old frame would leak"
            )
        self._owners[mfn] = key
        self._backing[key] = mfn

    def entry_invalidated(self, domain_id: int, gpfn: int) -> None:
        """``invalidate``/``remove``: ``gpfn`` no longer translates."""
        key = (domain_id, gpfn)
        mfn = self._backing.pop(key, None)
        if mfn is not None:
            self._owners.pop(mfn, None)
        self._protected.discard(key)

    def entry_write_protected(self, domain_id: int, gpfn: int) -> None:
        """``write_protect``: migration step one."""
        key = (domain_id, gpfn)
        if key in self._protected:
            raise SanitizerError(
                f"double write_protect of domain {domain_id} gpfn "
                f"{gpfn:#x}: a migration of this page is already in flight"
            )
        self._protected.add(key)

    def entry_remapped(
        self, domain_id: int, gpfn: int, old_mfn: int, new_mfn: int
    ) -> None:
        """``remap``: migration step three (after the copy)."""
        key = (domain_id, gpfn)
        if key not in self._protected:
            raise SanitizerError(
                f"remap of domain {domain_id} gpfn {gpfn:#x} without a "
                f"preceding write_protect: migration must write-protect "
                f"before copy/remap (out-of-order migration)"
            )
        if new_mfn not in self._allocated:
            raise SanitizerError(
                f"remap of domain {domain_id} gpfn {gpfn:#x} onto frame "
                f"{new_mfn:#x} that is not allocated from the heap"
            )
        owner = self._owners.get(new_mfn)
        if owner is not None and owner != key:
            raise SanitizerError(
                f"double map via remap: frame {new_mfn:#x} already backs "
                f"domain {owner[0]} gpfn {owner[1]:#x}"
            )
        self._protected.discard(key)
        if self._backing.get(key) == old_mfn:
            self._owners.pop(old_mfn, None)
        self._owners[new_mfn] = key
        self._backing[key] = new_mfn

    def write_protection_fault(self, domain_id: int, gpfn: int) -> None:
        """The fault handler is accounting a write fault on ``gpfn``.

        A genuine write-protection fault can only occur while a migration
        of this page is in flight (write-protect happened, remap has
        not). Accounting one against an entry the protocol never
        protected — e.g. a ``writable`` bit flipped directly through an
        entry view — means the fault was forged.
        """
        key = (domain_id, gpfn)
        if key not in self._protected:
            raise SanitizerError(
                f"write-protection fault on domain {domain_id} gpfn "
                f"{gpfn:#x} with no migration in flight: the entry was "
                f"never write-protected through the migration protocol"
            )

    def entry_unprotected(self, domain_id: int, gpfn: int) -> None:
        """``unprotect``: a migration was aborted."""
        key = (domain_id, gpfn)
        if key not in self._protected:
            raise SanitizerError(
                f"unprotect of domain {domain_id} gpfn {gpfn:#x} that "
                f"was never write-protected"
            )
        self._protected.discard(key)
