"""The findings baseline: the escape hatch of ``--strict``.

A baseline entry grandfathers a *known, reviewed* finding — a deliberate
module-level switch, a legacy shim — so ``--strict`` can gate on
everything else. Entries match on ``(rule_id, file, message)`` with a
count, **not** on line numbers: editing code above a baselined finding
must not break CI, and ``--baseline-update`` regenerates the file
deterministically (sorted, stable keys) so its diffs stay reviewable.
The recorded ``line`` is informational — where the finding sat when the
baseline was last regenerated.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.lint.findings import Finding

#: Version of the baseline file format.
BASELINE_VERSION = 1

#: Default baseline path, relative to the invocation directory.
DEFAULT_BASELINE = "lint-baseline.json"

Key = Tuple[str, str, str]  # (rule_id, file, message)


def _norm_path(path: str) -> str:
    return os.path.normpath(path).replace("\\", "/")


def _key(finding: Finding) -> Key:
    return (finding.rule_id, _norm_path(finding.path), finding.message)


def load_baseline(path: str) -> Dict[Key, int]:
    """Parse a baseline file into allowed counts per finding signature.

    Raises:
        ReproError: unreadable file or unsupported schema.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ReproError(f"baseline {path} has no findings list")
    version = payload.get("schema_version")
    if version != BASELINE_VERSION:
        raise ReproError(
            f"baseline {path} has schema_version {version!r}; "
            f"this analyzer reads version {BASELINE_VERSION}"
        )
    allowed: Dict[Key, int] = {}
    for entry in payload["findings"]:
        key = (
            entry["rule_id"],
            _norm_path(entry["file"]),
            entry["message"],
        )
        allowed[key] = allowed.get(key, 0) + int(entry.get("count", 1))
    return allowed


def apply_baseline(
    findings: List[Finding], allowed: Dict[Key, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (kept, suppressed-count) under the baseline.

    The first ``count`` findings of each signature (in report order) are
    suppressed; any excess — a regression beyond what was reviewed —
    stays in the report.
    """
    budget = dict(allowed)
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = _key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def render_baseline(findings: List[Finding]) -> str:
    """Serialize ``findings`` as a baseline file (sorted, stable keys)."""
    grouped: Dict[Key, Dict[str, object]] = {}
    for finding in sorted(findings, key=lambda f: f.sort_key):
        key = _key(finding)
        entry = grouped.get(key)
        if entry is None:
            grouped[key] = {
                "rule_id": finding.rule_id,
                "file": _norm_path(finding.path),
                "line": finding.line,
                "message": finding.message,
                "count": 1,
            }
        else:
            entry["count"] = int(entry["count"]) + 1
    entries = [grouped[key] for key in sorted(grouped)]
    return json.dumps(
        {
            "schema_version": BASELINE_VERSION,
            "tool": "repro.lint",
            "findings": entries,
        },
        indent=2,
        sort_keys=True,
    ) + "\n"


def save_baseline(path: str, findings: List[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_baseline(findings))
