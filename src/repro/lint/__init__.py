"""Correctness tooling for the reproduction: static analyzer + sanitizer.

Two halves, both enforcing the paper's invariants:

* a **static analyzer** (``python -m repro.lint``): an AST visitor
  framework with pluggable rules. The shipped rules pin down the paper's
  architecture — policies may only reach the hypervisor through the
  internal interface (section 4.1), hypercall handlers must validate
  their arguments (section 4.2), page migrations must follow the
  write-protect -> copy -> remap protocol, errors must be typed, and
  nothing in the tree may depend on unseeded randomness or wall-clock
  time (run reproducibility);

* a **runtime P2M sanitizer** (:mod:`repro.lint.sanitizer`) that
  instruments the hypervisor page table and the frame allocator during
  tests, raising :class:`repro.errors.SanitizerError` the moment a
  double map, a map of a freed frame or an out-of-order migration step
  happens.

The submodules are imported lazily so that hot hypervisor paths can
import :mod:`repro.lint.sanitizer` without dragging the analyzer in.
"""

_LAZY = {
    "Analyzer": "repro.lint.analyzer",
    "LintReport": "repro.lint.analyzer",
    "Finding": "repro.lint.findings",
    "Rule": "repro.lint.visitor",
    "FileContext": "repro.lint.visitor",
    "all_rules": "repro.lint.registry",
    "get_rules": "repro.lint.registry",
    "register": "repro.lint.registry",
}


def __getattr__(name):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(name)
    import importlib

    return getattr(importlib.import_module(target), name)


__all__ = sorted(_LAZY)
