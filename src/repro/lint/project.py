"""Project-wide dataflow: symbol table, call graph, effect summaries.

The per-file rules (RPR001-RPR005) see one AST at a time. The dataflow
rule families (RPR006-RPR010) need to answer *cross-module* questions —
"who writes this module-level dict", "what can ``execute_request``
reach", "does this callee touch the wall clock" — so this module builds
one :class:`ProjectContext` over every analyzed file:

* a **symbol table**: per module, its imports (local alias -> qualified
  name), module-level bindings, classes with their methods, and the
  module-level *mutable* objects (dict/list/set literals and
  constructors) that shared-state analysis cares about;
* a **call graph**: every call site in every function body resolved to
  project functions. Resolution is intentionally pragmatic: exact via
  imports and ``self``, then unique-suffix module matching (so fixture
  trees resolve like the real ``repro.*`` tree), then class-hierarchy-
  agnostic *by-method-name* matching for attribute calls on objects of
  unknown type (skipping generic container/str/ndarray method names);
* per-function **direct effect summaries** — wall-clock reads,
  environment reads, unseeded randomness, filesystem access, writes to
  module-level state — which the purity rule propagates over the call
  graph.

Nested functions and lambdas are attributed to their enclosing
top-level function or method: defining one is not calling it, but the
over-approximation keeps the graph simple and errs toward reporting.

:class:`ProjectRule` is the base class for rules that run over the
whole project instead of file by file; the analyzer runs them only in
``--strict`` mode or when explicitly selected.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.visitor import FileContext, Rule, dotted_name

#: Constructors whose module-level result is shared mutable state.
MUTABLE_CTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)

#: Method calls that mutate a dict/list/set/deque receiver.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "setdefault",
        "sort",
        "reverse",
        "appendleft",
        "extendleft",
    }
)

#: Attribute-call names too generic to resolve by method name alone:
#: resolving ``x.get(...)`` to every project method named ``get`` would
#: wire unrelated classes together and flood the purity analysis.
NONSPECIFIC_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "pop",
        "popitem",
        "get",
        "items",
        "keys",
        "values",
        "clear",
        "copy",
        "setdefault",
        "remove",
        "discard",
        "sort",
        "reverse",
        "index",
        "count",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "lower",
        "upper",
        "read",
        "readline",
        "write",
        "close",
        "flush",
        # common ndarray methods
        "tolist",
        "astype",
        "reshape",
        "sum",
        "mean",
        "max",
        "min",
        "any",
        "all",
        "fill",
        "nonzero",
        "searchsorted",
        "cumsum",
        "argmin",
        "argmax",
        "item",
        "setflags",
    }
)

#: Wall-clock reads (kept in sync with RPR002's view of time).
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.now",
        "datetime.today",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)

#: Environment reads.
ENV_CALLS = frozenset({"os.getenv", "os.environ.get", "os.environ.setdefault"})

#: Filesystem touching calls (dotted names).
FS_CALLS = frozenset(
    {
        "open",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "os.removedirs",
        "os.listdir",
        "os.scandir",
        "os.walk",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.move",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryDirectory",
    }
)

#: Filesystem touching method names (distinctively pathlib; note
#: ``touch`` is absent — in this codebase touching is what guests do to
#: memory pages, not what ``Path`` does to mtimes).
FS_METHODS = frozenset(
    {"write_text", "read_text", "write_bytes", "read_bytes"}
)

#: numpy.random attributes that do not bind the global stream.
NP_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)

_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")

FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for(path: str) -> str:
    """Dotted module name for a source path.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``: everything up to
    and including the last ``src`` segment is stripped, so the real tree
    resolves exactly; fixture trees keep their full dotted path and rely
    on unique-suffix matching.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p and p != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class Effect:
    """One direct impure operation inside a function body."""

    __slots__ = ("kind", "node", "detail")

    def __init__(self, kind: str, node: ast.AST, detail: str):
        self.kind = kind  #: "time" | "env" | "rng" | "fs" | "state"
        self.node = node
        self.detail = detail


class StateWrite:
    """One write to module-level state from a function body."""

    __slots__ = ("node", "module_name", "target", "kind")

    def __init__(self, node: ast.AST, module_name: str, target: str, kind: str):
        self.node = node
        self.module_name = module_name  #: owning module's dotted name
        self.target = target  #: the module-level name written
        self.kind = kind  #: "rebind" | "mutation"


class FunctionInfo:
    """One top-level function or method, with its calls and effects."""

    def __init__(
        self,
        qname: str,
        node: ast.AST,
        module: "ModuleInfo",
        class_name: Optional[str],
    ):
        self.qname = qname
        self.node = node
        self.module = module
        self.class_name = class_name
        #: Raw call sites: (node, dotted-or-None, attr-or-None).
        self.call_sites: List[Tuple[ast.Call, Optional[str], Optional[str]]] = []
        self.effects: List[Effect] = []
        self.state_writes: List[StateWrite] = []
        #: Resolved callee qnames (filled by ProjectContext).
        self.callees: Set[str] = set()

    @property
    def short_name(self) -> str:
        parts = self.qname.split(".")
        return ".".join(parts[-2:]) if self.class_name else parts[-1]


class ClassInfo:
    """One module-level class: methods, bases, body node."""

    def __init__(self, name: str, node: ast.ClassDef, module: "ModuleInfo"):
        self.name = name
        self.node = node
        self.module = module
        self.methods: Dict[str, FunctionInfo] = {}
        self.base_names: List[str] = [
            d for d in (dotted_name(b) for b in node.bases) if d is not None
        ]

    @property
    def qname(self) -> str:
        return f"{self.module.name}.{self.name}"


class ModuleInfo:
    """Symbol table of one analyzed source file."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.path = ctx.path
        self.name = module_name_for(ctx.path)
        #: local alias -> fully qualified name it stands for.
        self.imports: Dict[str, str] = {}
        #: every module-level assigned name -> the binding node.
        self.globals: Dict[str, ast.AST] = {}
        #: module-level names bound to mutable literals/constructors.
        self.mutables: Dict[str, ast.AST] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._collect()

    # ------------------------------------------------------------------

    def _collect(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{base}.{alias.name}" if base else alias.name
        for stmt in self.ctx.tree.body:
            self._collect_stmt(stmt)

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        # Relative import: resolve against this module's package.
        package = self.name.split(".")
        package = package[: len(package) - node.level]
        if node.module:
            package.append(node.module)
        return ".".join(package)

    def _collect_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, FuncDef):
            qname = f"{self.name}.{stmt.name}"
            self.functions[qname] = FunctionInfo(qname, stmt, self, None)
        elif isinstance(stmt, ast.ClassDef):
            info = ClassInfo(stmt.name, stmt, self)
            self.classes[stmt.name] = info
            for sub in stmt.body:
                if isinstance(sub, FuncDef):
                    qname = f"{self.name}.{stmt.name}.{sub.name}"
                    method = FunctionInfo(qname, sub, self, stmt.name)
                    info.methods[sub.name] = method
                    self.functions[qname] = method
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                self.globals[target.id] = stmt
                if value is not None and _is_mutable_ctor(value):
                    self.mutables[target.id] = stmt
        elif isinstance(stmt, (ast.If, ast.Try)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._collect_stmt(sub)


def _is_mutable_ctor(value: ast.expr) -> bool:
    if isinstance(
        value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name in MUTABLE_CTORS
    return False


def local_bindings(func: ast.AST) -> Set[str]:
    """Names bound locally in ``func`` (excluding global/nonlocal decls)."""
    declared: Set[str] = set()
    bound: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, FuncDef):
            if node is not func:
                continue
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                bound.add(arg.arg)
    return bound - declared


class ProjectContext:
    """Everything the dataflow rules need, built once per analyzer run."""

    def __init__(self, contexts: Sequence[FileContext]):
        self.modules: Dict[str, ModuleInfo] = {}
        self.context_by_path: Dict[str, FileContext] = {}
        for ctx in contexts:
            info = ModuleInfo(ctx)
            self.modules[info.name] = info
            self.context_by_path[ctx.path] = ctx
        #: every project function by qualified name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: method name -> qnames of every class method with that name.
        self.methods_by_name: Dict[str, List[str]] = {}
        for mod in self.modules.values():
            for qname, fn in mod.functions.items():
                self.functions[qname] = fn
                if fn.class_name is not None:
                    self.methods_by_name.setdefault(
                        fn.node.name, []
                    ).append(qname)
        for names in self.methods_by_name.values():
            names.sort()
        for fn in self.functions.values():
            self._scan_function(fn)
        for fn in self.functions.values():
            fn.callees = self._resolve_callees(fn)

    # ------------------------------------------------------------------
    # Per-function scanning

    def _scan_function(self, fn: FunctionInfo) -> None:
        """Collect call sites, direct effects and state writes of ``fn``.

        Nested defs/lambdas are attributed to ``fn`` (see module doc).
        """
        mod = fn.module
        locals_ = local_bindings(fn.node)
        globals_declared: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                attr = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else None
                )
                fn.call_sites.append((node, dotted, attr))
                self._record_call_effects(fn, node, dotted, attr)
                self._record_call_state_write(
                    fn, node, dotted, attr, locals_, globals_declared
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._record_store_state_write(
                    fn, node, locals_, globals_declared
                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._record_target_write(
                        fn, target, locals_, globals_declared, node
                    )
            elif isinstance(node, ast.Attribute) and dotted_name(node) == (
                "os.environ"
            ):
                fn.effects.append(
                    Effect("env", node, "reads os.environ")
                )

    def _record_call_effects(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        dotted: Optional[str],
        attr: Optional[str],
    ) -> None:
        if dotted is not None:
            if dotted in CLOCK_CALLS:
                fn.effects.append(
                    Effect("time", node, f"{dotted}() reads the wall clock")
                )
                return
            if dotted in ENV_CALLS:
                fn.effects.append(
                    Effect("env", node, f"{dotted}() reads the environment")
                )
                return
            if dotted in FS_CALLS:
                fn.effects.append(
                    Effect("fs", node, f"{dotted}() touches the filesystem")
                )
                return
            last = dotted.split(".")[-1]
            if last == "default_rng" and not node.args:
                fn.effects.append(
                    Effect(
                        "rng",
                        node,
                        "default_rng() without a seed is nondeterministic",
                    )
                )
                return
            if dotted.startswith(_NP_RANDOM_PREFIXES):
                np_attr = dotted.split(".")[2]
                if np_attr not in NP_RANDOM_ALLOWED:
                    fn.effects.append(
                        Effect(
                            "rng",
                            node,
                            f"{dotted}() draws from numpy's global stream",
                        )
                    )
                    return
            if dotted.startswith("random."):
                root = dotted.split(".")[0]
                if fn.module.imports.get(root) == "random":
                    fn.effects.append(
                        Effect(
                            "rng",
                            node,
                            f"{dotted}() draws process-global randomness",
                        )
                    )
                    return
        if attr in FS_METHODS:
            fn.effects.append(
                Effect("fs", node, f".{attr}() touches the filesystem")
            )

    # ------------------------------------------------------------------
    # Module-state writes (shared by RPR006 and the purity analysis)

    def _record_call_state_write(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        dotted: Optional[str],
        attr: Optional[str],
        locals_: Set[str],
        globals_declared: Set[str],
    ) -> None:
        if attr is None or attr not in MUTATING_METHODS:
            return
        assert isinstance(node.func, ast.Attribute)
        base = node.func.value
        self._match_module_state(
            fn, base, locals_, globals_declared, node, kind="mutation"
        )

    def _record_store_state_write(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        locals_: Set[str],
        globals_declared: Set[str],
    ) -> None:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            return
        for target in targets:
            self._record_target_write(
                fn, target, locals_, globals_declared, node
            )

    def _record_target_write(
        self,
        fn: FunctionInfo,
        target: ast.expr,
        locals_: Set[str],
        globals_declared: Set[str],
        stmt: ast.AST,
    ) -> None:
        if isinstance(target, ast.Name):
            # Plain rebind only counts with an explicit ``global`` decl.
            if target.id in globals_declared and target.id in fn.module.globals:
                fn.state_writes.append(
                    StateWrite(stmt, fn.module.name, target.id, "rebind")
                )
            return
        if isinstance(target, (ast.Subscript,)):
            self._match_module_state(
                fn, target.value, locals_, globals_declared, stmt,
                kind="mutation",
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target_write(
                    fn, element, locals_, globals_declared, stmt
                )

    def _match_module_state(
        self,
        fn: FunctionInfo,
        base: ast.expr,
        locals_: Set[str],
        globals_declared: Set[str],
        stmt: ast.AST,
        kind: str,
    ) -> None:
        """If ``base`` names module-level mutable state, record the write."""
        dotted = dotted_name(base)
        if dotted is None:
            return
        parts = dotted.split(".")
        mod = fn.module
        # Same-module: a bare name that is module-level mutable and not
        # shadowed by a local binding.
        if len(parts) == 1:
            name = parts[0]
            if name in locals_ and name not in globals_declared:
                return
            if name in mod.mutables:
                fn.state_writes.append(
                    StateWrite(stmt, mod.name, name, kind)
                )
            return
        # Cross-module: mod_alias.NAME... where the alias resolves to a
        # project module holding NAME as module-level mutable state.
        head = parts[0]
        if head in locals_ or head == "self":
            return
        qualified = mod.imports.get(head)
        if qualified is None:
            return
        full = ".".join([qualified] + parts[1:])
        owner, name = full.rsplit(".", 1) if "." in full else ("", full)
        target_mod = self.resolve_module(owner)
        if target_mod is not None and name in target_mod.mutables:
            fn.state_writes.append(
                StateWrite(stmt, target_mod.name, name, kind)
            )

    # ------------------------------------------------------------------
    # Name resolution

    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """A project module by exact dotted name, else unique suffix."""
        if not dotted:
            return None
        mod = self.modules.get(dotted)
        if mod is not None:
            return mod
        suffix = "." + dotted
        matches = [m for n, m in self.modules.items() if n.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def _resolve_qualified(self, qualified: str) -> List[str]:
        """Function qnames for a fully qualified callable name."""
        fn = self.functions.get(qualified)
        if fn is not None:
            return [qualified]
        # A class instantiation resolves to its __init__.
        if "." in qualified:
            owner, name = qualified.rsplit(".", 1)
            mod = self.resolve_module(owner)
            if mod is not None:
                cls = mod.classes.get(name)
                if cls is not None:
                    init = cls.methods.get("__init__")
                    return [init.qname] if init is not None else []
                fn2 = mod.functions.get(f"{mod.name}.{name}")
                if fn2 is not None:
                    return [fn2.qname]
        # Unique-suffix match over all function qnames.
        suffix = "." + qualified
        matches = sorted(
            q for q in self.functions if q.endswith(suffix)
        )
        return matches if len(matches) == 1 else []

    def _resolve_self_method(
        self, fn: FunctionInfo, meth: str
    ) -> List[str]:
        if fn.class_name is None:
            return []
        cls: Optional[ClassInfo] = fn.module.classes.get(fn.class_name)
        seen: Set[str] = set()
        while cls is not None and cls.qname not in seen:
            seen.add(cls.qname)
            method = cls.methods.get(meth)
            if method is not None:
                return [method.qname]
            cls = self._resolve_base(cls)
        return []

    def _resolve_base(self, cls: ClassInfo) -> Optional[ClassInfo]:
        for base in cls.base_names:
            parts = base.split(".")
            mod = cls.module
            if len(parts) == 1:
                if parts[0] in mod.classes:
                    return mod.classes[parts[0]]
                qualified = mod.imports.get(parts[0])
            else:
                head = mod.imports.get(parts[0])
                qualified = (
                    ".".join([head] + parts[1:]) if head is not None else None
                )
            if qualified is None:
                continue
            owner, name = (
                qualified.rsplit(".", 1) if "." in qualified else ("", qualified)
            )
            target_mod = self.resolve_module(owner)
            if target_mod is not None and name in target_mod.classes:
                return target_mod.classes[name]
        return None

    def _resolve_callees(self, fn: FunctionInfo) -> Set[str]:
        callees: Set[str] = set()
        mod = fn.module
        locals_ = local_bindings(fn.node)
        for node, dotted, attr in fn.call_sites:
            if dotted is not None:
                parts = dotted.split(".")
                if parts[0] == "self":
                    if len(parts) == 2:
                        callees.update(self._resolve_self_method(fn, parts[1]))
                    elif attr and attr not in NONSPECIFIC_METHODS:
                        callees.update(
                            self.methods_by_name.get(attr, [])
                        )
                    continue
                if parts[0] in mod.imports:
                    qualified = ".".join(
                        [mod.imports[parts[0]]] + parts[1:]
                    )
                    resolved = self._resolve_qualified(qualified)
                    if resolved:
                        callees.update(resolved)
                        continue
                elif len(parts) == 1:
                    own = mod.functions.get(f"{mod.name}.{parts[0]}")
                    if own is not None:
                        callees.add(own.qname)
                        continue
                    if parts[0] in mod.classes:
                        init = mod.classes[parts[0]].methods.get("__init__")
                        if init is not None:
                            callees.add(init.qname)
                        continue
                if (
                    len(parts) > 1
                    and parts[0] not in locals_
                    and parts[0] not in mod.imports
                ):
                    # Unimported dotted call: try a unique suffix match.
                    resolved = self._resolve_qualified(dotted)
                    if resolved:
                        callees.update(resolved)
                        continue
            if (
                attr is not None
                and attr not in NONSPECIFIC_METHODS
                and (dotted is None or dotted.split(".")[0] != "self")
            ):
                callees.update(self.methods_by_name.get(attr, []))
        return callees

    # ------------------------------------------------------------------
    # Graph queries

    def roots_named(self, name: str) -> List[FunctionInfo]:
        """Every project function whose bare name is ``name``, sorted."""
        return [
            self.functions[q]
            for q in sorted(self.functions)
            if q.split(".")[-1] == name
        ]

    def reachable_from(
        self, roots: Sequence[FunctionInfo]
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS over the call graph: qname -> shortest chain from a root.

        The chain includes the root and the function itself; iteration
        order (sorted adjacency) makes chains deterministic.
        """
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for root in sorted(roots, key=lambda f: f.qname):
            if root.qname not in chains:
                chains[root.qname] = (root.qname,)
                queue.append(root.qname)
        while queue:
            current = queue.pop(0)
            fn = self.functions.get(current)
            if fn is None:
                continue
            for callee in sorted(fn.callees):
                if callee not in chains:
                    chains[callee] = chains[current] + (callee,)
                    queue.append(callee)
        return chains

    def iter_contexts(self) -> Iterator[Tuple[ModuleInfo, FileContext]]:
        for name in sorted(self.modules):
            mod = self.modules[name]
            yield mod, mod.ctx


class ProjectRule(Rule):
    """A rule that analyzes the whole project at once.

    Subclasses implement :meth:`check_project`; the per-file ``check``
    is never driven by the analyzer for these rules. They run only in
    ``--strict`` mode or when explicitly ``--select``-ed.
    """

    def check_project(self, project: ProjectContext) -> List[Finding]:
        raise NotImplementedError

    def project_finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )
