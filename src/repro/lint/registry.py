"""Rule registry: rules self-register via the :func:`register` decorator."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.errors import ReproError
from repro.lint.visitor import Rule

_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if not cls.rule_id or not cls.name:
        raise ReproError(f"rule {cls.__name__} needs rule_id and name")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ReproError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by id."""
    # Importing the rules package runs the @register decorators.
    import repro.lint.rules  # noqa: F401  (import for side effect)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Type[Rule]]:
    """Resolve a rule subset by id or name.

    Args:
        select: keep only these rules (ids or names); None keeps all.
        ignore: drop these rules (ids or names).

    Raises:
        ReproError: an id/name matches no registered rule.
    """
    rules = all_rules()
    known = {cls.rule_id for cls in rules} | {cls.name for cls in rules}
    for wanted in list(select or []) + list(ignore or []):
        if wanted not in known:
            raise ReproError(f"unknown lint rule {wanted!r}")
    if select:
        chosen = set(select)
        rules = [c for c in rules if c.rule_id in chosen or c.name in chosen]
    if ignore:
        dropped = set(ignore)
        rules = [
            c
            for c in rules
            if c.rule_id not in dropped and c.name not in dropped
        ]
    return rules
