"""Guest processes and threads.

The paper's key observation is the *semantic gap*: the hypervisor sees
vCPUs and physical pages of a VM, never processes or their virtual memory.
These classes live strictly on the guest side of that gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.vmm import GuestAddressSpace


@dataclass
class Thread:
    """A guest thread, pinned to one vCPU (the paper pins everything).

    Attributes:
        tid: thread id, unique inside the process.
        vcpu_id: the vCPU this thread runs on (equals the CPU id in
            native mode).
    """

    tid: int
    vcpu_id: int
    #: Set by the engine: NUMA node currently under this thread.
    node: int = 0


class Process:
    """A guest process: threads plus one virtual address space."""

    _next_pid = 1

    def __init__(self, name: str, address_space: "GuestAddressSpace"):
        self.pid = Process._next_pid
        Process._next_pid += 1
        self.name = name
        self.address_space = address_space
        self.threads: List[Thread] = []

    def spawn_thread(self, vcpu_id: int) -> Thread:
        """Create a thread pinned to ``vcpu_id``."""
        thread = Thread(tid=len(self.threads), vcpu_id=vcpu_id)
        self.threads.append(thread)
        return thread

    @property
    def master(self) -> Thread:
        """Thread 0 — the one that initialises memory in master/slave apps."""
        if not self.threads:
            raise RuntimeError("process has no threads")
        return self.threads[0]

    @property
    def num_threads(self) -> int:
        return len(self.threads)
