"""Synchronisation cost model: blocking primitives vs MCS spin loops.

Applications that frequently wait (locks, condition variables, network
packets) context-switch off the CPU; waking them costs an IPI, which is
~12x more expensive in a VM (Figure 5). The paper's Xen+ sidesteps this
for non-consolidated workloads by re-implementing pthread mutexes and
condition variables as MCS spin loops (section 5.3.2): the thread never
leaves the CPU, so no IPI is paid — at the price of burnt spin cycles,
which is why the paper only applies it to the two applications it helps
(facesim, streamcluster) and only in single-VM runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypervisor.ipi import IpiModel


@dataclass
class SyncModel:
    """Per-thread time overhead of synchronisation.

    Args:
        ipi: the machine's IPI cost model.
        mcs_spin_overhead: fraction of CPU time burnt spinning when MCS
            locks replace blocking primitives.
    """

    ipi: IpiModel = None  # type: ignore[assignment]
    mcs_spin_overhead: float = 0.03

    def __post_init__(self):
        if self.ipi is None:
            self.ipi = IpiModel()

    def overhead_fraction(
        self,
        ctx_switches_per_core_s: float,
        mode: str,
        mcs_locks: bool = False,
    ) -> float:
        """Fraction of a core's time lost to waits/wakeups.

        Args:
            ctx_switches_per_core_s: intentional context switches per core
                per second (Table 2 rates).
            mode: "native" or "guest" (which IPI cost applies).
            mcs_locks: MCS spin loops replace blocking primitives — the
                context switches disappear ("zero intentional context
                switches per second" after the modification, section
                5.3.2) and a flat spin overhead remains.
        """
        if ctx_switches_per_core_s <= 0:
            return 0.0
        if mcs_locks:
            return self.mcs_spin_overhead
        overhead = self.ipi.wakeup_overhead(ctx_switches_per_core_s, mode)
        # A core that waits this often overlaps wakeups with whatever work
        # remains; the loss saturates below 100% (memcached, the extreme
        # case at 127k switches/s, lands around the paper's ~700%).
        return min(overhead, 0.88)

    def effective_ctx_rate(
        self, ctx_switches_per_core_s: float, mcs_locks: bool
    ) -> float:
        """Observable context-switch rate (zero once MCS locks are in)."""
        return 0.0 if mcs_locks else ctx_switches_per_core_s
