"""Guest physical page allocators.

Two flavours, matching the two execution modes of the evaluation:

* :class:`GuestPageAllocator` — the allocator of a *virtualised* guest.
  The NUMA topology is hidden (the whole point of the paper), so there is
  a single free list. Pages are zero-filled on release (Linux behaviour,
  paper section 4.4.2 — this is what makes free pages interchangeable for
  the hypervisor's first-touch). Allocation is LIFO (Linux per-CPU page
  lists), which is what creates the realloc-while-queued race of section
  4.2.4. Hooks notify the paravirtual patch of every alloc/release.

* :class:`NativePageAllocator` — the allocator of bare-metal Linux:
  per-node free lists over *machine* frames, used by the native NUMA
  policies (first-touch allocates from the toucher's node with
  round-robin fallback, round-4K round-robins deliberately).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import OutOfMemoryError
from repro.hardware.machine import Machine

#: Called with the page frame number on every alloc/release.
PageHook = Callable[[int], None]
#: Called with a whole gpfn array when a batch allocation happens.
PageBatchHook = Callable[[np.ndarray], None]


class GuestPageAllocator:
    """Single free-list allocator over a domain's guest-physical frames.

    Args:
        first_gpfn: start of the allocatable range (the guest kernel
            reserves low memory — which also keeps applications out of
            the fragmented first guest GiB, see the round-1G layout).
        num_pages: allocatable page count.
        zero_on_free: fill released pages with zeros (Linux behaviour).
    """

    def __init__(self, first_gpfn: int, num_pages: int, zero_on_free: bool = True):
        if num_pages < 1:
            raise OutOfMemoryError("allocator needs at least one page")
        self.first_gpfn = first_gpfn
        self.num_pages = num_pages
        self.zero_on_free = zero_on_free
        # LIFO free list: bump pointer for never-used pages plus a stack
        # of recycled ones (recycled pages are preferred, like Linux's
        # per-CPU page lists).
        self._bump = first_gpfn
        self._limit = first_gpfn + num_pages
        self._recycled: List[int] = []
        self._allocated: set = set()
        self.pages_zeroed = 0
        self.on_alloc: Optional[PageHook] = None
        self.on_release: Optional[PageHook] = None
        self.on_alloc_many: Optional[PageBatchHook] = None

    def alloc(self) -> int:
        """Allocate one guest-physical page (topology-oblivious)."""
        if self._recycled:
            gpfn = self._recycled.pop()
        elif self._bump < self._limit:
            gpfn = self._bump
            self._bump += 1
        else:
            raise OutOfMemoryError("guest is out of physical memory")
        self._allocated.add(gpfn)
        if self.on_alloc is not None:
            self.on_alloc(gpfn)
        return gpfn

    def alloc_many(self, count: int) -> Optional[np.ndarray]:
        """Allocate ``count`` consecutive bump pages in one step.

        The batch init path needs a *contiguous* gpfn run (so segments
        can be tracked as key ranges); the bump pointer provides one only
        while no recycled pages are pending. Returns None when the free
        list cannot serve the batch that way — callers fall back to the
        scalar :meth:`alloc` loop.
        """
        if count < 1 or self._recycled or self._bump + count > self._limit:
            return None
        gpfns = np.arange(self._bump, self._bump + count, dtype=np.int64)
        self._allocated.update(range(self._bump, self._bump + count))
        self._bump += count
        if self.on_alloc_many is not None:
            self.on_alloc_many(gpfns)
        elif self.on_alloc is not None:
            for gpfn in gpfns.tolist():
                self.on_alloc(gpfn)
        return gpfns

    def free(self, gpfn: int) -> None:
        """Release one page back to the free list (zeroing it)."""
        if gpfn not in self._allocated:
            raise OutOfMemoryError(f"double free of guest page {gpfn:#x}")
        self._allocated.discard(gpfn)
        if self.zero_on_free:
            self.pages_zeroed += 1
        self._recycled.append(gpfn)
        if self.on_release is not None:
            self.on_release(gpfn)

    def iter_free(self):
        """Iterate over every currently-free page frame number.

        Used when switching to first-touch at run time: the guest reports
        its whole free list so the hypervisor can invalidate those pages
        and trap their next (first) allocation.
        """
        yield from self._recycled
        yield from range(self._bump, self._limit)

    @property
    def free_pages(self) -> int:
        return (self._limit - self._bump) + len(self._recycled)

    @property
    def allocated_pages(self) -> int:
        return len(self._allocated)


class NativePageAllocator:
    """Per-node free lists over machine frames (bare-metal Linux).

    Args:
        machine: source of frames.
        reserve_per_node: frames to keep for "the kernel" on each node.
    """

    def __init__(self, machine: Machine, reserve_per_node: int = 0):
        self.machine = machine
        self.reserve_per_node = reserve_per_node
        self._rr_cursor = 0
        self.fallback_allocations = 0

    def alloc_on(self, node: int) -> int:
        """Allocate a frame from ``node``, falling back round-robin.

        This is Linux's first-touch allocation rule (paper section 3.1).
        """
        mfn = self._try_node(node)
        if mfn is not None:
            return mfn
        num = self.machine.num_nodes
        for offset in range(1, num):
            candidate = (node + offset) % num
            mfn = self._try_node(candidate)
            if mfn is not None:
                self.fallback_allocations += 1
                return mfn
        raise OutOfMemoryError("no node has free memory")

    def alloc_round_robin(self) -> int:
        """Allocate from nodes in turn (the round-4K policy's rule)."""
        node = self._rr_cursor
        self._rr_cursor = (self._rr_cursor + 1) % self.machine.num_nodes
        return self.alloc_on(node)

    def free(self, mfn: int) -> None:
        """Return a frame to its node."""
        self.machine.memory.free_frames(mfn, 1)

    def _try_node(self, node: int) -> Optional[int]:
        if (
            self.machine.memory.free_frames_on(node)
            <= self.reserve_per_node
        ):
            return None
        return self.machine.memory.alloc_frames(node, 1)
