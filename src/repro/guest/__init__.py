"""Linux-like guest OS: processes, virtual memory, page allocator, NUMA."""

from repro.guest.process import Process, Thread
from repro.guest.page_alloc import GuestPageAllocator, NativePageAllocator
from repro.guest.vmm import GuestAddressSpace, Vma
from repro.guest.numa import LinuxNumaMode
from repro.guest.pv_patch import PvNumaPatch
from repro.guest.sync import SyncModel

__all__ = [
    "Process",
    "Thread",
    "GuestPageAllocator",
    "NativePageAllocator",
    "GuestAddressSpace",
    "Vma",
    "LinuxNumaMode",
    "PvNumaPatch",
    "SyncModel",
]
