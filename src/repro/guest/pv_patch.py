"""The paravirtual guest patch: batched page-event reporting.

This is the guest half of the paper's external interface (the modified
Linux of the authors' ``linux-xen-ft`` tree): hooks in the page allocator
record every physical page allocation and release into the partitioned
queue, and full queues are flushed to the hypervisor with the
``NUMA_PAGE_EVENTS`` hypercall — while holding the queue lock, so a queued
free page cannot be reallocated mid-flush (section 4.2.4).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import batch
from repro.core.interface import ExternalInterface
from repro.core.page_queue import PageOp, PartitionedPageQueue
from repro.guest.page_alloc import GuestPageAllocator


class PvNumaPatch:
    """Wires a guest page allocator to the page-event hypercall.

    Args:
        allocator: the guest's physical page allocator.
        external: the guest-side hypercall stub.
        batch_size: events per partition before a flush.
        num_partitions: 4 in the paper (two LSBs of the PFN); 1 gives the
            single-global-queue design used in the ablation.
        enabled: a disabled patch records nothing (vanilla guest).
    """

    def __init__(
        self,
        allocator: GuestPageAllocator,
        external: ExternalInterface,
        batch_size: int = 64,
        num_partitions: int = 4,
        enabled: bool = True,
    ):
        self.allocator = allocator
        self.external = external
        self.enabled = enabled
        self.queue = PartitionedPageQueue(
            flush_fn=external.flush_page_events,
            flush_cost_fn=external.flush_cost,
            batch_size=batch_size,
            num_partitions=num_partitions,
        )
        allocator.on_alloc = self._on_alloc
        allocator.on_release = self._on_release
        allocator.on_alloc_many = self._on_alloc_many

    def _on_alloc(self, gpfn: int) -> None:
        if self.enabled:
            self.queue.record(PageOp.ALLOC, gpfn)

    def _on_alloc_many(self, gpfns: np.ndarray) -> None:
        if self.enabled:
            self.queue.record_many(PageOp.ALLOC, gpfns)

    def _on_release(self, gpfn: int) -> None:
        if self.enabled:
            self.queue.record(PageOp.RELEASE, gpfn)

    def flush(self) -> None:
        """Drain all partitions (used before policy switches/teardown)."""
        self.queue.flush_all()

    def report_free_pages(self) -> int:
        """Report the whole free list as released, then flush.

        Invoked right after switching the domain to first-touch, so the
        hypervisor can invalidate every page the guest is not using.
        Returns the number of pages reported.
        """
        if batch.vectorized():
            free = np.fromiter(self.allocator.iter_free(), dtype=np.int64)
            self.queue.record_many(PageOp.RELEASE, free)
            self.queue.flush_all()
            return int(free.size)
        count = 0
        for gpfn in self.allocator.iter_free():
            self.queue.record(PageOp.RELEASE, gpfn)
            count += 1
        self.queue.flush_all()
        return count

    def select_policy(self, policy: str, carrefour: Optional[bool] = None):
        """Guest-initiated policy selection (first external hypercall)."""
        return self.external.set_policy(policy, carrefour)

    def detach(self) -> None:
        """Remove the hooks (guest shutdown)."""
        self.allocator.on_alloc = None
        self.allocator.on_release = None
        self.allocator.on_alloc_many = None
