"""Guest virtual memory: VMAs, lazy allocation, guest page faults.

Linux allocates memory lazily (paper section 3.1): creating a virtual
address space maps nothing; the first access of a thread to a page takes a
*guest* page fault, and only then does the kernel pick a physical page.
In native mode "physical" means a machine frame chosen by the Linux NUMA
policy; in a VM it is a guest-physical page from the topology-oblivious
allocator — NUMA placement then happens (or not) a level below, in the
hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import GuestFaultError
from repro.guest.page_alloc import GuestPageAllocator
from repro.guest.process import Thread

#: Picks the backing page for a faulting virtual page:
#: (vpfn, faulting thread) -> physical/machine frame number.
BackingFn = Callable[[int, Thread], int]


@dataclass
class Vma:
    """One virtual memory area (a contiguous mapping).

    Attributes:
        name: label (the workload's segment name).
        start_vpfn: first virtual page.
        num_pages: length in pages.
    """

    name: str
    start_vpfn: int
    num_pages: int

    @property
    def end_vpfn(self) -> int:
        return self.start_vpfn + self.num_pages

    def __contains__(self, vpfn: int) -> bool:
        return self.start_vpfn <= vpfn < self.end_vpfn


class GuestAddressSpace:
    """A process's page table plus its VMAs.

    Args:
        backing: resolves a guest fault to a backing frame — wired to the
            NUMA policy in native mode, to the oblivious guest allocator
            in a VM.
        release: returns a frame on unmap.
    """

    def __init__(self, backing: BackingFn, release: Callable[[int], None]):
        self._backing = backing
        self._release = release
        self._vmas: List[Vma] = []
        self._table: Dict[int, int] = {}
        self._next_vpfn = 0x1000  # leave a guard hole at 0
        self.guest_faults = 0

    # ------------------------------------------------------------------
    # VMAs

    def mmap(self, name: str, num_pages: int) -> Vma:
        """Create an (unpopulated) VMA — nothing is allocated yet."""
        if num_pages < 1:
            raise GuestFaultError("mmap of zero pages")
        vma = Vma(name=name, start_vpfn=self._next_vpfn, num_pages=num_pages)
        self._next_vpfn = vma.end_vpfn + 16  # guard gap
        self._vmas.append(vma)
        return vma

    def munmap(self, vma: Vma) -> int:
        """Destroy a VMA, releasing every populated page. Returns count."""
        released = 0
        for vpfn in range(vma.start_vpfn, vma.end_vpfn):
            if self.unmap_page(vpfn):
                released += 1
        self._vmas.remove(vma)
        return released

    @property
    def vmas(self) -> List[Vma]:
        return list(self._vmas)

    # ------------------------------------------------------------------
    # Faulting and translation

    def touch(self, vpfn: int, thread: Thread) -> int:
        """Access ``vpfn``; fault in a page on first access.

        Returns the backing frame number.
        """
        frame = self._table.get(vpfn)
        if frame is not None:
            return frame
        if not any(vpfn in vma for vma in self._vmas):
            raise GuestFaultError(f"segfault: vpfn {vpfn:#x} is unmapped")
        self.guest_faults += 1
        frame = self._backing(vpfn, thread)
        self._table[vpfn] = frame
        return frame

    def map_many(self, vpfns, frames) -> None:
        """Install a whole batch of fault resolutions at once.

        Equivalent to ``len(vpfns)`` faulting :meth:`touch` calls whose
        backing returned ``frames``; the caller (the batch init path)
        guarantees every vpfn is unmapped and inside a VMA.
        """
        self.guest_faults += len(vpfns)
        self._table.update(zip(vpfns.tolist(), frames.tolist()))

    def translate(self, vpfn: int) -> Optional[int]:
        """Current mapping of ``vpfn`` (None if not yet touched)."""
        return self._table.get(vpfn)

    def unmap_page(self, vpfn: int) -> bool:
        """Unmap one page, releasing its frame; True if it was mapped."""
        frame = self._table.pop(vpfn, None)
        if frame is None:
            return False
        self._release(frame)
        return True

    @property
    def resident_pages(self) -> int:
        """Pages currently backed by a frame."""
        return len(self._table)
