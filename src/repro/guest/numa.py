"""Native Linux NUMA policies (the paper's bare-metal baseline).

In native mode the kernel maps virtual pages straight to machine frames,
so the NUMA policy acts in the guest page table (paper section 3):

* **first-touch** (Linux default): allocate from the faulting thread's
  node, round-robin fallback when it is full;
* **round-4K**: allocate page frames from the nodes in turn;
* either can be combined with **Carrefour**, which migrates hot pages
  between nodes at run time.

This module is the Linux counterpart of :mod:`repro.core.policies`; the
experiments of Figure 2 and Table 1 run on it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.carrefour.engine import (
    CarrefourConfig,
    CarrefourEngine,
    SystemComponent,
)
from repro.carrefour.heuristics import Action, PageDecision
from repro.core.policies.base import EpochObservation
from repro.errors import PolicyError
from repro.guest.page_alloc import NativePageAllocator
from repro.guest.process import Thread
from repro.hardware.machine import Machine


class LinuxNumaMode:
    """The native memory-placement machinery of one Linux boot.

    Args:
        machine: the hardware.
        policy: "first-touch" or "round-4k".
        carrefour: run the Carrefour daemon on top.
        carrefour_config: engine thresholds.
        page_copy_seconds: migration copy cost per page (defaults like the
            hypervisor's internal interface).
    """

    POLICIES = ("first-touch", "round-4k")

    def __init__(
        self,
        machine: Machine,
        policy: str = "first-touch",
        carrefour: bool = False,
        carrefour_config: Optional[CarrefourConfig] = None,
        page_copy_seconds: Optional[float] = None,
    ):
        if policy not in self.POLICIES:
            raise PolicyError(f"unknown Linux policy {policy!r}")
        self.machine = machine
        self.policy = policy
        self.allocator = NativePageAllocator(machine)
        #: vpfn -> mfn map maintained for Carrefour's placement lookups.
        self._frames: Dict[int, int] = {}
        if page_copy_seconds is None:
            bw = machine.topology.memory_controller_gib_s * (1 << 30)
            page_copy_seconds = 2.0 * machine.config.page_bytes / bw
        self.page_copy_seconds = page_copy_seconds
        self.migration_seconds = 0.0
        self.pages_migrated = 0
        #: Optional hook (vpfn, node) fired when a page gains a frame.
        self.on_page_placed: Optional[Callable[[int, int], None]] = None
        #: Optional hook (vpfn, node) fired when Carrefour moves a page.
        self.on_page_moved: Optional[Callable[[int, int], None]] = None
        self.engine: Optional[CarrefourEngine] = None
        if carrefour:
            system = SystemComponent(
                counters=machine.counters,
                placement=self.node_of_page,
                apply_fn=self._apply_decision,
            )
            self.engine = CarrefourEngine(
                system=system,
                config=carrefour_config or CarrefourConfig(),
                rng=np.random.default_rng(machine.config.rng_seed),
            )

    @property
    def name(self) -> str:
        return self.policy + ("/carrefour" if self.engine else "")

    # ------------------------------------------------------------------
    # Page-fault backing (plugged into GuestAddressSpace)

    def backing(self, vpfn: int, thread: Thread) -> int:
        """Pick the machine frame for a faulting page."""
        if self.policy == "first-touch":
            mfn = self.allocator.alloc_on(thread.node)
        else:
            mfn = self.allocator.alloc_round_robin()
        self._frames[vpfn] = mfn
        if self.on_page_placed is not None:
            self.on_page_placed(vpfn, self.machine.node_of_frame(mfn))
        return mfn

    def release_vpfn(self, vpfn: int) -> bool:
        """Free the frame *currently* backing ``vpfn`` (munmap path).

        The vpfn-keyed map is authoritative: Carrefour may have migrated
        the page since the fault, so the frame recorded in the process
        page table could be stale.
        """
        mfn = self._frames.pop(vpfn, None)
        if mfn is None:
            return False
        self.allocator.free(mfn)
        return True

    def forget_page(self, vpfn: int) -> None:
        """Remove a vpfn from the placement map (after munmap)."""
        self._frames.pop(vpfn, None)

    # ------------------------------------------------------------------
    # Carrefour plumbing

    def node_of_page(self, vpfn: int) -> Optional[int]:
        """Node currently backing a virtual page."""
        mfn = self._frames.get(vpfn)
        if mfn is None:
            return None
        return self.machine.node_of_frame(mfn)

    def on_epoch(self, observation: EpochObservation) -> float:
        """Run one Carrefour iteration (no-op without the daemon)."""
        if self.engine is None:
            return 0.0
        result = self.engine.run_iteration(observation)
        cost = self.engine.iteration_cost_seconds(result)
        cost += self.migration_seconds
        self.migration_seconds = 0.0
        return cost

    def shutdown(self) -> None:
        """Stop the Carrefour daemon, releasing the counters."""
        if self.engine is not None:
            self.engine.shutdown()

    def _apply_decision(self, decision: PageDecision) -> bool:
        if decision.action is Action.REPLICATE:
            return False
        mfn = self._frames.get(decision.page)
        if mfn is None:
            return False
        src = self.machine.node_of_frame(mfn)
        if src == decision.dst_node:
            return False
        new_mfn = self.machine.memory.alloc_frames(decision.dst_node, 1)
        if new_mfn is None:
            return False
        self._frames[decision.page] = new_mfn
        self.allocator.free(mfn)
        self.migration_seconds += self.page_copy_seconds
        self.pages_migrated += 1
        if self.on_page_moved is not None:
            self.on_page_moved(decision.page, decision.dst_node)
        return True
