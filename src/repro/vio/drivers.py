"""The two virtual disk drivers: para-virtualised and PCI passthrough.

* :class:`ParavirtDriver` (section 2.2.1): the guest's modified driver
  calls the hypervisor, which forwards the request to dom0; dom0 touches
  the real device and hands the result back. Every block pays the full
  dom0 round trip — the 307 us per 4 KiB block.
* :class:`PassthroughDriver` (section 2.2.2): the device DMAs directly
  into guest memory via the IOMMU — 186 us per 4 KiB block — but aborts
  on invalid p2m entries, so it cannot coexist with first-touch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import SimConfig
from repro.errors import ReproError
from repro.hypervisor.domain import Domain
from repro.vio.disk import DiskModel, IoMode
from repro.vio.dma import DmaEngine, DmaTransfer


@dataclass
class ReadResult:
    """One completed (or failed) guest read."""

    nbytes: int
    seconds: float
    ok: bool = True
    io_errors: int = 0


class ParavirtDriver:
    """domU disk access forwarded through dom0."""

    mode = IoMode.PARAVIRT

    def __init__(self, disk: DiskModel, dom0: Domain):
        self.disk = disk
        self.dom0 = dom0
        self.bytes_read = 0

    def read(self, domain: Domain, nbytes: int, block_bytes: int = 64 * 1024) -> ReadResult:
        """Read ``nbytes`` for ``domain`` via dom0 (always succeeds)."""
        seconds = self.disk.read_seconds(nbytes, block_bytes, self.mode)
        self.bytes_read += nbytes
        return ReadResult(nbytes=nbytes, seconds=seconds)


class PassthroughDriver:
    """domU disk access via PCI passthrough + IOMMU DMA.

    Args:
        disk: timing model.
        dma: the DMA engine (device side).
        config: for page-size arithmetic.
    """

    mode = IoMode.PASSTHROUGH

    def __init__(self, disk: DiskModel, dma: DmaEngine, config: SimConfig):
        self.disk = disk
        self.dma = dma
        self.config = config
        self.bytes_read = 0
        self.io_errors = 0

    def read_into(
        self, domain: Domain, gpfns: Sequence[int], block_bytes: int = 64 * 1024
    ) -> ReadResult:
        """DMA device data into specific guest pages.

        Pages with invalid p2m entries fail with a guest-visible I/O
        error (the first-touch incompatibility, section 4.4.1).
        """
        transfer = self.dma.dma_to_guest(domain, gpfns)
        nbytes = transfer.completed_pages * self.config.page_bytes
        seconds = self.disk.read_seconds(
            max(nbytes, self.config.page_bytes), block_bytes, self.mode
        )
        self.bytes_read += nbytes
        self.io_errors += len(transfer.failed_gpfns)
        return ReadResult(
            nbytes=nbytes,
            seconds=seconds,
            ok=transfer.ok,
            io_errors=len(transfer.failed_gpfns),
        )

    def read(self, domain: Domain, nbytes: int, block_bytes: int = 64 * 1024) -> ReadResult:
        """Bulk read without naming pages (assumes valid DMA buffers)."""
        seconds = self.disk.read_seconds(nbytes, block_bytes, self.mode)
        self.bytes_read += nbytes
        return ReadResult(nbytes=nbytes, seconds=seconds)


def make_driver(
    io_mode: str,
    disk: DiskModel,
    dom0: Optional[Domain] = None,
    dma: Optional[DmaEngine] = None,
    config: Optional[SimConfig] = None,
):
    """Build the driver matching a hypervisor's ``io_mode`` answer."""
    if io_mode == "paravirt":
        if dom0 is None:
            raise ReproError("paravirt driver needs dom0")
        return ParavirtDriver(disk, dom0)
    if io_mode == "passthrough":
        if dma is None or config is None:
            raise ReproError("passthrough driver needs a DMA engine and config")
        return PassthroughDriver(disk, dma, config)
    raise ReproError(f"unknown io mode {io_mode!r}")
