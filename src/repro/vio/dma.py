"""DMA transfers into guest memory, through the IOMMU.

With PCI passthrough the *device* translates guest-physical addresses via
the IOMMU, i.e. through the hypervisor page table. Section 4.4.1: if the
target entry is invalid — which is precisely the state first-touch keeps
released pages in — the transfer aborts and the error is reported to the
hypervisor asynchronously, *after* the guest has already seen the failed
I/O. This module reproduces that failure mode end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.hardware.iommu import Iommu
from repro.hypervisor.domain import Domain


@dataclass
class DmaTransfer:
    """Outcome of one DMA into guest memory.

    Attributes:
        requested_pages: pages the device was asked to write.
        completed_pages: pages actually transferred.
        failed_gpfns: pages whose translation aborted (guest sees EIO).
    """

    requested_pages: int
    completed_pages: int
    failed_gpfns: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed_gpfns


class DmaEngine:
    """Device-side DMA executor."""

    def __init__(self, iommu: Iommu):
        self.iommu = iommu
        self.transfers = 0
        self.failed_transfers = 0

    def dma_to_guest(self, domain: Domain, gpfns: Sequence[int]) -> DmaTransfer:
        """Write device data into the guest pages ``gpfns``.

        Each page is translated through the IOMMU; an invalid hypervisor
        page table entry aborts that page's transfer. The error only lands
        in the IOMMU's asynchronous log (``iommu.drain_error_log``) — by
        design the hypervisor cannot fix it up in time.
        """
        self.transfers += 1
        result = DmaTransfer(requested_pages=len(gpfns), completed_pages=0)
        for gpfn in gpfns:
            outcome = self.iommu.translate(domain.p2m, gpfn)
            if outcome.ok:
                result.completed_pages += 1
            else:
                result.failed_gpfns.append(gpfn)
        if not result.ok:
            self.failed_transfers += 1
        return result
