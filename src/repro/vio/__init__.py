"""Virtualised I/O: disk model, DMA through the IOMMU, the two drivers."""

from repro.vio.disk import DiskModel, IoMode
from repro.vio.dma import DmaEngine, DmaTransfer
from repro.vio.drivers import ParavirtDriver, PassthroughDriver, make_driver

__all__ = [
    "DiskModel",
    "IoMode",
    "DmaEngine",
    "DmaTransfer",
    "ParavirtDriver",
    "PassthroughDriver",
    "make_driver",
]
