"""Disk timing model, calibrated to the paper's 4 KiB read measurements.

Section 2.2: reading one 4 KiB block (O_DIRECT) takes

* **74 us** on native Linux,
* **307 us** in a domU through the para-virtualised driver (the request
  bounces through dom0),
* **186 us** in a domU with the PCI passthrough driver + IOMMU.

The paper also notes that larger reads amortise the virtualisation cost:
"the larger the amount of bytes read, the lower the overhead", because the
DMA *setup* dominates small transfers while the transfer itself dominates
large ones. We model one block read as ``setup(mode) + bytes / device_bw``
and calibrate the per-mode setup so 4 KiB reads match the three numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.config import REAL_PAGE_SIZE


class IoMode(str, enum.Enum):
    """Which I/O path a read takes."""

    NATIVE = "native"
    PARAVIRT = "paravirt"
    PASSTHROUGH = "passthrough"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The paper's measured 4 KiB block read times.
MEASURED_4K_SECONDS: Dict[IoMode, float] = {
    IoMode.NATIVE: 74e-6,
    IoMode.PARAVIRT: 307e-6,
    IoMode.PASSTHROUGH: 186e-6,
}


@dataclass
class DiskModel:
    """Per-block disk read timing.

    Args:
        device_bandwidth_mb_s: raw streaming bandwidth of the device.
        setup_seconds: per-mode DMA setup cost; calibrated from the
            measured 4 KiB reads when omitted.
        pv_ring_bytes: maximum payload of one para-virtualised block
            request (the blkfront ring segment limit, ~11 pages). Large
            reads through the PV path split into ring-sized requests; the
            first pays the full dom0 round trip, follow-ups are pipelined
            through the ring but still pay ``pv_pipeline_seconds`` each —
            the reason the disk-heavy applications love the passthrough
            driver, while very large reads still amortise (section 2.2).
        pv_pipeline_seconds: per-extra-ring-segment cost on the PV path.
    """

    device_bandwidth_mb_s: float = 300.0
    setup_seconds: Dict[IoMode, float] = field(default_factory=dict)
    pv_ring_bytes: int = 44 * 1024
    pv_pipeline_seconds: float = 100e-6

    def __post_init__(self):
        if not self.setup_seconds:
            transfer_4k = REAL_PAGE_SIZE / self.bandwidth_bytes_s
            self.setup_seconds = {
                mode: measured - transfer_4k
                for mode, measured in MEASURED_4K_SECONDS.items()
            }
        for mode, setup in self.setup_seconds.items():
            if setup <= 0:
                raise ValueError(f"setup for {mode} must be positive")

    @property
    def bandwidth_bytes_s(self) -> float:
        return self.device_bandwidth_mb_s * 1e6

    def block_read_seconds(self, block_bytes: int, mode: IoMode) -> float:
        """Time to read one block of ``block_bytes`` through ``mode``.

        Para-virtualised reads larger than one ring segment pay the full
        round trip once plus a pipelined per-segment cost.
        """
        if block_bytes <= 0:
            raise ValueError("block size must be positive")
        seconds = self.setup_seconds[mode] + block_bytes / self.bandwidth_bytes_s
        if mode is IoMode.PARAVIRT and block_bytes > self.pv_ring_bytes:
            extra_segments = block_bytes / self.pv_ring_bytes - 1.0
            seconds += extra_segments * self.pv_pipeline_seconds
        return seconds

    def effective_bandwidth_bytes_s(self, block_bytes: int, mode: IoMode) -> float:
        """Sustained read bandwidth at a given block size."""
        return block_bytes / self.block_read_seconds(block_bytes, mode)

    def read_seconds(self, total_bytes: float, block_bytes: int, mode: IoMode) -> float:
        """Time to read ``total_bytes`` in blocks of ``block_bytes``."""
        if total_bytes <= 0:
            return 0.0
        blocks = max(1.0, total_bytes / block_bytes)
        return blocks * self.block_read_seconds(block_bytes, mode)
