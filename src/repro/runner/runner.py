"""Deduplicating, store-backed, optionally parallel request resolution."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.runner.exec import execute_request
from repro.runstore.base import RunStore
from repro.runstore.memory import MemoryRunStore
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest


class _ScopeAllocator:
    """Hands out deterministic per-process runner ordinals.

    An attribute on one holder object (the ``core.batch`` idiom) rather
    than a rebound module global, so the dataflow lint can see the write
    is confined to one owned object. Creation order is deterministic
    under serial execution, so identical invocations in fresh processes
    label their cells identically (trace byte-identity holds).
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 1

    def allocate(self) -> str:
        ordinal = self._next
        self._next += 1
        return f"r{ordinal}"


_SCOPES = _ScopeAllocator()


class RunnerStats:
    """What one runner did across its ``resolve`` calls.

    Attribute-compatible with the dataclass this replaced; each field is
    a view over a metric cell registered with the active observability
    session (:mod:`repro.obs`).

    Every cell carries a ``runner=<scope>`` label identifying the owning
    runner instance. Registering the cells by bare name let two runners
    in one process (the serve layer holds one per worker) publish
    indistinguishable ``runner.requested``/``runner.executed`` cells, so
    any aggregated view — ``python -m repro.obs summary``, a metrics
    snapshot — double-counted them with no way to attribute work back to
    a runner. The scope defaults to a deterministic per-process ordinal
    (``r1``, ``r2``, ...); pass an explicit one to name a runner.

    Attributes:
        requested: requests handed to ``resolve`` (before dedup).
        deduplicated: duplicates coalesced away by cache key.
        executed: engine invocations actually performed.
        batched: executed requests that ran inside a multi-run group
            (:mod:`repro.core.multirun`) rather than one world at a time;
            always ``<= executed``, and 0 unless ``batch_worlds > 1``.
    """

    __slots__ = ("scope", "_requested", "_deduplicated", "_executed", "_batched")

    def __init__(self, scope: Optional[str] = None) -> None:
        self.scope = scope if scope is not None else _SCOPES.allocate()
        reg = obs.registry()
        self._requested = reg.counter("runner.requested", runner=self.scope)
        self._deduplicated = reg.counter("runner.deduplicated", runner=self.scope)
        self._executed = reg.counter("runner.executed", runner=self.scope)
        self._batched = reg.counter("runner.batched", runner=self.scope)

    @property
    def requested(self) -> int:
        return self._requested.value

    @requested.setter
    def requested(self, value: int) -> None:
        self._requested.value = value

    @property
    def deduplicated(self) -> int:
        return self._deduplicated.value

    @deduplicated.setter
    def deduplicated(self, value: int) -> None:
        self._deduplicated.value = value

    @property
    def executed(self) -> int:
        return self._executed.value

    @executed.setter
    def executed(self, value: int) -> None:
        self._executed.value = value

    @property
    def batched(self) -> int:
        return self._batched.value

    @batched.setter
    def batched(self, value: int) -> None:
        self._batched.value = value

    def summary(self) -> str:
        # The batched count is appended, never interleaved: tooling greps
        # this line for substrings like "0 executed".
        line = (
            f"runner: {self.requested} requests, "
            f"{self.deduplicated} duplicates coalesced, "
            f"{self.executed} executed"
        )
        if self.batched:
            line += f", {self.batched} batched"
        return line


class Runner:
    """Executes run requests through a store, serially or in parallel.

    Args:
        store: the backing :class:`~repro.runstore.RunStore` (a fresh
            in-memory store when omitted).
        jobs: worker processes for cache misses. The default 1 executes
            in-process and in declaration order — the right mode for
            determinism debugging; results are identical either way.
        batch_worlds: when > 1, cache misses with compatible
            topology/config signatures execute through the multi-run
            batched engine (:mod:`repro.core.multirun`), up to this many
            worlds per structure-of-arrays group. Results and store
            entries are byte-identical to serial execution. Takes
            precedence over ``jobs`` for the grouped requests;
            incompatible misses fall back per request.
        name: label scoping this runner's stats cells in metric
            snapshots (default: a deterministic per-process ordinal).
    """

    def __init__(
        self,
        store: Optional[RunStore] = None,
        jobs: int = 1,
        batch_worlds: int = 1,
        name: Optional[str] = None,
    ) -> None:
        self.store = store if store is not None else MemoryRunStore()
        self.jobs = max(1, int(jobs))
        self.batch_worlds = max(1, int(batch_worlds))
        self.stats = RunnerStats(scope=name)

    # ------------------------------------------------------------------

    def resolve(self, requests: Sequence[RunRequest]) -> "ResultSet":
        """Resolve ``requests`` into a fresh :class:`ResultSet`."""
        results = ResultSet(self)
        results.resolve(requests)
        return results

    def _resolve_into(
        self, requests: Sequence[RunRequest], out: Dict[str, List[RunResult]]
    ) -> None:
        unique: Dict[str, RunRequest] = {}
        for request in requests:
            self.stats.requested += 1
            key = request.cache_key()
            if key in unique or key in out:
                self.stats.deduplicated += 1
            else:
                unique[key] = request
        todo: List[str] = []
        for key, request in unique.items():
            cached = self.store.get(key)
            if cached is not None:
                out[key] = cached
            else:
                todo.append(key)
        if not todo:
            return
        self.stats.executed += len(todo)
        tr = obs.tracer()
        if tr.enabled:
            # Emitted in the parent before dispatch, so the event order
            # (declaration order of the misses) is identical whether the
            # requests then execute serially or on worker processes.
            for key in todo:
                tr.instant("runner.execute", cat="runner", key=key)
        if self.batch_worlds > 1:
            # Imported lazily: multirun sits above the runner's executor
            # module (it builds worlds through runner.exec), so a
            # top-level import here would be circular.
            from repro.core.multirun import execute_batch

            outcome = execute_batch(
                [unique[key] for key in todo], self.batch_worlds
            )
            produced = outcome.results
            self.stats.batched += outcome.batched_runs
        elif self.jobs == 1 or len(todo) == 1:
            produced = [execute_request(unique[key]) for key in todo]
        else:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(todo))) as pool:
                produced = list(pool.map(execute_request, [unique[key] for key in todo]))
        for key, results in zip(todo, produced):
            self.store.put(key, results, request=unique[key])
            out[key] = results

    def summary(self) -> str:
        return f"{self.store.stats().summary()}; {self.stats.summary()}"


class ResultSet:
    """Resolved runs, addressable by request; can resolve follow-ups.

    Scenario ``assemble`` hooks receive one of these. Lookups of requests
    already resolved are dict accesses; asking for a request that was not
    pre-declared triggers a (store-backed, possibly parallel) follow-up
    resolution through the owning runner — that is how the two-stage
    scenarios (Figures 8-9 pick pair policies from sweep results) batch
    their second stage without lying about ``required_runs()``.
    """

    def __init__(self, runner: Runner) -> None:
        self._runner = runner
        self._results: Dict[str, List[RunResult]] = {}

    def resolve(self, requests: Sequence[RunRequest]) -> "ResultSet":
        """Batch-resolve ``requests`` (deduped against what is held)."""
        self._runner._resolve_into(requests, self._results)
        return self

    def get(self, request: RunRequest) -> List[RunResult]:
        """All results of ``request`` (one per VM), resolving if needed."""
        key = request.cache_key()
        if key not in self._results:
            self.resolve([request])
        return self._results[key]

    def one(self, request: RunRequest) -> RunResult:
        """The single result of a one-VM request."""
        return self.get(request)[0]

    def __contains__(self, request: RunRequest) -> bool:
        return request.cache_key() in self._results

    def __len__(self) -> int:
        return len(self._results)
