"""Build a world from a serialized request and simulate it.

This module is the process-pool worker target: it must stay importable at
module level (``ProcessPoolExecutor`` pickles the function reference plus
the frozen request), and :func:`execute_request` must be *pure* — every
piece of state (machine, hypervisor, RNG streams) is rebuilt from the
request so a worker process produces bit-for-bit the results the parent
would have produced serially.
"""

from __future__ import annotations

from typing import List

from repro.cluster import Cluster
from repro.core.policies.base import PolicyName, PolicySpec
from repro.errors import RunSpecError
from repro.hypervisor.xen import XEN, XEN_PLUS
from repro.sim.engine import run_world
from repro.sim.environment import (
    Environment,
    LinuxEnvironment,
    VmSpec,
    World,
    XenEnvironment,
)
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest, VmRequest
from repro.workloads.suite import get_app

#: The ``cluster`` environment is deliberately not parameterised through
#: the request (new request fields change every cache key): it always
#: boots this many hosts and live-migrates the request's first VM at
#: this epoch, with the protocol's default knobs.
CLUSTER_HOSTS = 2
CLUSTER_MIGRATION_EPOCH = 3


def _vm_spec(vm: VmRequest) -> VmSpec:
    return VmSpec(
        app=get_app(vm.app),
        policy=PolicySpec(PolicyName(vm.policy), carrefour=vm.carrefour),
        num_vcpus=vm.num_vcpus,
        home_nodes=vm.home_nodes,
        pin_pcpus=vm.pin_pcpus,
        memory_pages=vm.memory_pages,
    )


def build_environment(request: RunRequest) -> Environment:
    """The environment a request's world(s) are set up in."""
    if request.environment == "linux":
        vm = request.vms[0]
        return LinuxEnvironment(
            policy=vm.policy,
            carrefour=vm.carrefour,
            mcs_locks=vm.mcs_locks,
            config=request.config,
        )
    features = XEN_PLUS if request.features == "Xen+" else XEN
    return XenEnvironment(
        features=features,
        config=request.config,
        unbatched_hypercalls=request.unbatched_hypercalls,
    )


def build_world(request: RunRequest) -> World:
    """Build the single-host world of ``request``, ready to simulate.

    This is the world-construction half of :func:`execute_request`,
    factored out so the multi-run batcher (:mod:`repro.core.multirun`)
    can build a whole group of worlds before stepping them together.
    Cluster requests have no single world (one per host) and are
    rejected — they always execute through :func:`execute_request`.
    """
    if request.environment == "cluster":
        raise RunSpecError("cluster requests deploy one world per host")
    env = build_environment(request)
    if request.environment == "linux":
        return env.setup([get_app(request.vms[0].app)])
    return env.setup([_vm_spec(vm) for vm in request.vms])


def execute_request(request: RunRequest) -> List[RunResult]:
    """Run ``request`` to completion; one result per VM, in request order."""
    if request.environment == "cluster":
        # Results come back grouped by host (ascending id), each labelled
        # with the world the run finished on — not in request order.
        env = build_environment(request)
        cluster = Cluster(env, CLUSTER_HOSTS)
        cluster.deploy([_vm_spec(vm) for vm in request.vms])
        cluster.migrate_at(CLUSTER_MIGRATION_EPOCH, request.vms[0].app)
        return cluster.simulate()
    return run_world(build_world(request))
