"""The run execution layer: dedup, store lookups, process parallelism.

The :class:`Runner` takes the union of the :class:`~repro.sim.runspec.RunRequest`
lists the scenarios declare, deduplicates them by cache key, satisfies what
it can from a :class:`~repro.runstore.RunStore`, and executes the misses —
serially by default (determinism debugging reads better without
interleaving), or across a ``ProcessPoolExecutor`` with ``--jobs N``.
Workers rebuild the world from the serialized request
(:func:`~repro.runner.exec.execute_request` is pure), so parallel results
are bit-identical to serial ones.
"""

from repro.runner.exec import build_environment, build_world, execute_request
from repro.runner.runner import ResultSet, Runner, RunnerStats

__all__ = [
    "build_environment",
    "build_world",
    "execute_request",
    "Runner",
    "ResultSet",
    "RunnerStats",
]
