"""Persistent, content-addressed storage for simulation runs.

A run store maps a :meth:`~repro.sim.runspec.RunRequest.cache_key` to the
list of :class:`~repro.sim.results.RunResult` the engine produced for that
request (one per VM). Two backends:

* :class:`~repro.runstore.memory.MemoryRunStore` — a per-process dict,
  the successor of the old ``experiments.common._CACHE`` memo;
* :class:`~repro.runstore.disk.DiskRunStore` — one JSON file per key
  under a ``.runstore/`` directory, surviving across processes and
  invalidated wholesale when :data:`repro.sim.engine.ENGINE_VERSION`
  bumps.

Both count hits and misses so the pipeline CLI can surface cache
effectiveness (the Figure 6 <- Figure 2 and Figure 10 <- Figure 7 run
sharing is visible as hits).
"""

from repro.runstore.base import RunStore, StoreStats
from repro.runstore.disk import DiskRunStore
from repro.runstore.memory import MemoryRunStore


def open_store(spec=None) -> RunStore:
    """Open a store from a CLI-style spec.

    ``None``, ``""`` or ``"memory"`` give a fresh in-memory store; any
    other string is a directory path for an on-disk store.
    """
    if spec is None or spec == "" or spec == "memory":
        return MemoryRunStore()
    return DiskRunStore(spec)


__all__ = [
    "RunStore",
    "StoreStats",
    "MemoryRunStore",
    "DiskRunStore",
    "open_store",
]
