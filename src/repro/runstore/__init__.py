"""Persistent, content-addressed storage for simulation runs.

A run store maps a :meth:`~repro.sim.runspec.RunRequest.cache_key` to the
list of :class:`~repro.sim.results.RunResult` the engine produced for that
request (one per VM). Three backends:

* :class:`~repro.runstore.memory.MemoryRunStore` — a per-process dict,
  the successor of the old ``experiments.common._CACHE`` memo;
* :class:`~repro.runstore.disk.DiskRunStore` — one JSON file per key
  under a ``.runstore/`` directory, surviving across processes and
  invalidated wholesale when :data:`repro.sim.engine.ENGINE_VERSION`
  bumps;
* :class:`~repro.runstore.sharded.ShardedDiskRunStore` — the same JSON
  entries fanned out into hex-prefix shard directories, so many
  concurrent writer processes (the serving layer's worker pool) never
  contend on one directory inode.

All backends count hits and misses so the pipeline CLI can surface cache
effectiveness (the Figure 6 <- Figure 2 and Figure 10 <- Figure 7 run
sharing is visible as hits).
"""

from repro.runstore.base import RunStore, StoreStats
from repro.runstore.disk import DiskRunStore
from repro.runstore.memory import MemoryRunStore
from repro.runstore.sharded import ShardedDiskRunStore

#: Spec prefix selecting the sharded on-disk layout (``sharded:DIR``).
SHARDED_PREFIX = "sharded:"


def open_store(spec=None, sharded: bool = False) -> RunStore:
    """Open a store from a CLI-style spec.

    ``None``, ``""`` or ``"memory"`` give a fresh in-memory store; any
    other string is a directory path for an on-disk store. A
    ``sharded:DIR`` spec — or ``sharded=True`` — selects the hex-prefix
    sharded layout instead of the flat one.
    """
    if isinstance(spec, str) and spec.startswith(SHARDED_PREFIX):
        spec = spec[len(SHARDED_PREFIX):]
        sharded = True
    if spec is None or spec == "" or spec == "memory":
        return MemoryRunStore()
    if sharded:
        return ShardedDiskRunStore(spec)
    return DiskRunStore(spec)


__all__ = [
    "RunStore",
    "StoreStats",
    "MemoryRunStore",
    "DiskRunStore",
    "ShardedDiskRunStore",
    "SHARDED_PREFIX",
    "open_store",
]
