"""The in-process run store (the old per-process memo dict, upgraded)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.runstore.base import RunStore
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest


class MemoryRunStore(RunStore):
    """Dict-backed store; returns the stored objects themselves.

    ``data`` is deliberately a plain public dict: ``experiments.common``
    aliases it as the legacy ``_CACHE`` so tests that inspect the memo
    (key sets, subset relations) keep working, and ``clear()`` empties it
    *in place* so those aliases stay live.
    """

    def __init__(self) -> None:
        super().__init__()
        self.data: Dict[str, List[RunResult]] = {}

    def _load(self, key: str) -> Optional[List[RunResult]]:
        return self.data.get(key)

    def _save(self, key: str, results: List[RunResult], request: Optional[RunRequest]) -> None:
        self.data[key] = results

    def __len__(self) -> int:
        return len(self.data)

    def clear(self) -> None:
        self.data.clear()
        self.reset_counters()
