"""The run-store interface and its hit/miss accounting."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest


@dataclass(frozen=True)
class StoreStats:
    """Cache-effectiveness counters of one store.

    Attributes:
        hits: ``get`` calls that found stored results.
        misses: ``get`` calls that found nothing.
        entries: keys currently stored.
        invalidated: entries dropped by an engine-version bump (disk
            stores only; always 0 for memory stores).
    """

    hits: int
    misses: int
    entries: int
    invalidated: int = 0

    def summary(self) -> str:
        text = f"store: {self.hits} hits, {self.misses} misses, {self.entries} entries"
        if self.invalidated:
            text += f" ({self.invalidated} invalidated by engine-version bump)"
        return text


class RunStore(abc.ABC):
    """Maps ``RunRequest.cache_key()`` -> the request's run results.

    The ``hits``/``misses`` attributes are views over metric cells
    registered with the active observability session (:mod:`repro.obs`);
    ``get`` additionally emits ``store.hit``/``store.miss`` trace events
    when tracing is on.
    """

    def __init__(self) -> None:
        reg = obs.registry()
        store = type(self).__name__
        self._hits = reg.counter("store.hits", store=store)
        self._misses = reg.counter("store.misses", store=store)

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    # ------------------------------------------------------------------
    # Counted access

    def get(self, key: str) -> Optional[List[RunResult]]:
        """Stored results for ``key`` (counted as a hit or miss)."""
        results = self._load(key)
        if results is None:
            self.misses += 1
        else:
            self.hits += 1
        tr = obs.tracer()
        if tr.enabled:
            tr.instant(
                "store.hit" if results is not None else "store.miss",
                cat="store",
                store=type(self).__name__,
                key=key,
            )
        return results

    def put(self, key: str, results: List[RunResult], request: Optional[RunRequest] = None) -> None:
        """Store ``results`` under ``key`` (``request`` kept for provenance)."""
        self._save(key, results, request)

    def __contains__(self, key: str) -> bool:
        return self._load(key) is not None

    def stats(self) -> StoreStats:
        return StoreStats(
            hits=self.hits,
            misses=self.misses,
            entries=len(self),
            invalidated=self.invalidated_entries(),
        )

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def invalidated_entries(self) -> int:
        """Entries dropped because of an engine-version mismatch."""
        return 0

    # ------------------------------------------------------------------
    # Backend interface

    @abc.abstractmethod
    def _load(self, key: str) -> Optional[List[RunResult]]:
        """Return stored results or None (no counting)."""

    @abc.abstractmethod
    def _save(self, key: str, results: List[RunResult], request: Optional[RunRequest]) -> None:
        """Persist results."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every entry and reset the counters."""
