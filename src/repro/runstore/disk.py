"""The on-disk run store: one JSON file per cache key.

Layout of the store directory (``.runstore/`` by convention)::

    .runstore/
        engine_version          # text file, the version that wrote the runs
        <sha256>.json           # {"engine_version", "request", "results"}

Invalidation is explicit and wholesale: when the directory was written by
a different :data:`repro.sim.engine.ENGINE_VERSION`, every entry is
deleted on open (the count is surfaced through ``stats()``), and the
version file is rewritten. Individual entries additionally carry the
version so a file copied in from elsewhere cannot resurrect stale runs.

Writes are atomic (unique temp file + rename) so a run killed mid-write
never leaves a half-entry that would poison later invocations, and two
processes saving the same key concurrently (``--jobs N`` workers, or two
invocations sharing one store) cannot tear each other's temp file — each
write stages through its own ``mkstemp`` name. Temp files orphaned by a
crash (``*.json.tmp``) are swept on open and on ``clear()``; unreadable
or malformed entries are treated as misses and removed.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import List, Optional, Union

from repro.runstore.base import RunStore
from repro.sim.engine import ENGINE_VERSION
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest

_VERSION_FILE = "engine_version"


class DiskRunStore(RunStore):
    """JSON-per-key store rooted at ``root`` (created if missing)."""

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()
        self._invalidated = self._check_engine_version()

    # ------------------------------------------------------------------
    # Engine-version invalidation

    def _version_path(self) -> Path:
        return self.root / _VERSION_FILE

    def _check_engine_version(self) -> int:
        """Purge the store if it was written by another engine version."""
        path = self._version_path()
        stored: Optional[str] = None
        if path.exists():
            stored = path.read_text().strip()
        if stored == ENGINE_VERSION:
            return 0
        dropped = 0
        for entry in self.root.glob("*.json"):
            entry.unlink()
            dropped += 1
        path.write_text(ENGINE_VERSION + "\n")
        return dropped

    def invalidated_entries(self) -> int:
        return self._invalidated

    def _sweep_stale_tmp(self) -> int:
        """Remove ``*.json.tmp`` litter left behind by crashed writers.

        Entry files only ever appear via an atomic rename, so any temp
        file present when the store is (re)opened belongs to a writer
        that died mid-save and would otherwise be ignored forever.
        """
        removed = 0
        for stale in self.root.glob("*.json.tmp"):
            self._discard(stale)
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # Backend interface

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _load(self, key: str) -> Optional[List[RunResult]]:
        path = self._entry_path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self._discard(path)
            return None
        if payload.get("engine_version") != ENGINE_VERSION:
            self._discard(path)
            return None
        try:
            return [RunResult.from_json(r) for r in payload["results"]]
        except (KeyError, TypeError, ValueError):
            self._discard(path)
            return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _save(self, key: str, results: List[RunResult], request: Optional[RunRequest]) -> None:
        payload = {
            "engine_version": ENGINE_VERSION,
            "request": None if request is None else request.to_json(),
            "results": [r.to_json() for r in results],
        }
        path = self._entry_path(key)
        # A per-writer temp name: concurrent saves of the same key each
        # stage their own file, so the last rename wins with a complete
        # entry (a shared `<key>.json.tmp` let one writer rename — and
        # thereby delete — another's half-written temp file). The prefix
        # keeps the key visible for debugging; the suffix makes orphans
        # match the `*.json.tmp` sweep.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f"{key}.", suffix=".json.tmp"
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # the write or rename failed mid-way
                self._discard(tmp)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> None:
        for entry in self.root.glob("*.json"):
            entry.unlink()
        self._sweep_stale_tmp()
        self.reset_counters()
        self._invalidated = 0
