"""The on-disk run store: one JSON file per cache key.

Layout of the store directory (``.runstore/`` by convention)::

    .runstore/
        engine_version          # text file, the version that wrote the runs
        <sha256>.json           # {"engine_version", "request", "results"}

Invalidation is explicit and wholesale: when the directory was written by
a different :data:`repro.sim.engine.ENGINE_VERSION`, every entry is
deleted on open (the count is surfaced through ``stats()``), and the
version file is rewritten. Individual entries additionally carry the
version so a file copied in from elsewhere cannot resurrect stale runs.

Writes are atomic (temp file + rename) so a run killed mid-write never
leaves a half-entry that would poison later invocations; unreadable or
malformed entries are treated as misses and removed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

from repro.runstore.base import RunStore
from repro.sim.engine import ENGINE_VERSION
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest

_VERSION_FILE = "engine_version"


class DiskRunStore(RunStore):
    """JSON-per-key store rooted at ``root`` (created if missing)."""

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._invalidated = self._check_engine_version()

    # ------------------------------------------------------------------
    # Engine-version invalidation

    def _version_path(self) -> Path:
        return self.root / _VERSION_FILE

    def _check_engine_version(self) -> int:
        """Purge the store if it was written by another engine version."""
        path = self._version_path()
        stored: Optional[str] = None
        if path.exists():
            stored = path.read_text().strip()
        if stored == ENGINE_VERSION:
            return 0
        dropped = 0
        for entry in self.root.glob("*.json"):
            entry.unlink()
            dropped += 1
        path.write_text(ENGINE_VERSION + "\n")
        return dropped

    def invalidated_entries(self) -> int:
        return self._invalidated

    # ------------------------------------------------------------------
    # Backend interface

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _load(self, key: str) -> Optional[List[RunResult]]:
        path = self._entry_path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self._discard(path)
            return None
        if payload.get("engine_version") != ENGINE_VERSION:
            self._discard(path)
            return None
        try:
            return [RunResult.from_json(r) for r in payload["results"]]
        except (KeyError, TypeError, ValueError):
            self._discard(path)
            return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _save(self, key: str, results: List[RunResult], request: Optional[RunRequest]) -> None:
        payload = {
            "engine_version": ENGINE_VERSION,
            "request": None if request is None else request.to_json(),
            "results": [r.to_json() for r in results],
        }
        path = self._entry_path(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> None:
        for entry in self.root.glob("*.json"):
            entry.unlink()
        self.reset_counters()
        self._invalidated = 0
