"""The on-disk run store: one JSON file per cache key.

Layout of the store directory (``.runstore/`` by convention)::

    .runstore/
        engine_version          # text file, the version that wrote the runs
        engine_version.lock     # advisory-lock file guarding the purge
        <sha256>.json           # {"engine_version", "request", "results"}

Invalidation is explicit and wholesale: when the directory was written by
a different :data:`repro.sim.engine.ENGINE_VERSION`, every entry is
deleted on open (the count is surfaced through ``stats()``), and the
version file is rewritten. Individual entries additionally carry the
version so a file copied in from elsewhere cannot resurrect stale runs.

Writes are atomic (unique temp file + rename) so a run killed mid-write
never leaves a half-entry that would poison later invocations, and two
processes saving the same key concurrently (``--jobs N`` workers, or two
invocations sharing one store) cannot tear each other's temp file — each
write stages through its own ``mkstemp`` name. Temp files orphaned by a
crash (``*.json.tmp``) are swept on open and on ``clear()``; malformed
entries are treated as misses and removed, but a *transient* read
failure (EACCES, EMFILE under fd pressure) is a miss that keeps the
entry — the file may read fine on the next attempt.

The engine-version check follows the same discipline: the version file
is written atomically (mkstemp + rename, never a bare ``write_text``
that a crash could truncate into a corrupt file that purges a current
store on the next open), and the purge itself runs under an advisory
file lock with the version re-read inside the lock — two processes
opening a stale store concurrently purge it once, not twice, so the
first opener's freshly-saved entries survive the second opener.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

try:  # pragma: no cover - always present on the POSIX hosts we target
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback: no inter-process lock
    fcntl = None  # type: ignore[assignment]

from repro.runstore.base import RunStore
from repro.sim.engine import ENGINE_VERSION
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest

_VERSION_FILE = "engine_version"
_LOCK_FILE = "engine_version.lock"


class DiskRunStore(RunStore):
    """JSON-per-key store rooted at ``root`` (created if missing)."""

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_tmp()
        self._invalidated = self._check_engine_version()

    # ------------------------------------------------------------------
    # Engine-version invalidation

    def _version_path(self) -> Path:
        return self.root / _VERSION_FILE

    def _read_version(self) -> Optional[str]:
        """The recorded engine version, or None (missing/unreadable)."""
        try:
            return self._version_path().read_text().strip()
        except OSError:
            return None

    @contextmanager
    def _version_lock(self) -> Iterator[None]:
        """Advisory inter-process lock serializing the stale-store purge."""
        handle = open(self.root / _LOCK_FILE, "a")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def _write_version(self) -> None:
        """Atomically record ENGINE_VERSION (mkstemp + rename, like _save).

        A crash mid-write must never leave a truncated version file: that
        would read as a mismatch and purge a perfectly current store on
        the next open.
        """
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f"{_VERSION_FILE}.", suffix=".tmp"
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(ENGINE_VERSION + "\n")
            os.replace(tmp, self._version_path())
        finally:
            if tmp.exists():  # the write or rename failed mid-way
                self._discard(tmp)

    def _check_engine_version(self) -> int:
        """Purge the store if it was written by another engine version.

        Double-checked locking: the unlocked read keeps the common case
        (current store) lock-free; on a mismatch the purge runs under the
        advisory lock with the version re-read first, so of two processes
        that both saw the stale version only the first purges — the
        second sees the freshly-written current version and leaves the
        first one's new entries alone.
        """
        if self._read_version() == ENGINE_VERSION:
            return 0
        with self._version_lock():
            return self._purge_stale_locked()

    def _purge_stale_locked(self) -> int:
        """Drop every entry and rewrite the version (lock held)."""
        if self._read_version() == ENGINE_VERSION:
            return 0  # another process migrated the store while we waited
        dropped = 0
        for entry in self._entry_files():
            self._discard(entry)
            dropped += 1
        for stale in self._tmp_files():
            self._discard(stale)
        self._write_version()
        return dropped

    def invalidated_entries(self) -> int:
        return self._invalidated

    def _sweep_stale_tmp(self) -> int:
        """Remove temp-file litter left behind by crashed writers.

        Entry and version files only ever appear via an atomic rename, so
        any temp file present when the store is (re)opened belongs to a
        writer that died mid-save and would otherwise be ignored forever.
        """
        removed = 0
        for stale in self._tmp_files_on_open():
            self._discard(stale)
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # Directory layout (overridden by the sharded store)

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _entry_files(self) -> Iterable[Path]:
        """Every entry file currently in the store."""
        return self.root.glob("*.json")

    def _tmp_files(self) -> Iterable[Path]:
        """Every staged-write temp file (crash litter candidates)."""
        yield from self.root.glob("*.json.tmp")
        yield from self.root.glob(f"{_VERSION_FILE}.*.tmp")

    def _tmp_files_on_open(self) -> Iterable[Path]:
        """The temp files it is safe to sweep when (re)opening the store.

        The flat store is written by one process per open, so anything
        staged is litter by the time a new open sees it. Layouts with
        concurrent writers (the sharded store) narrow this: an opener
        racing a live writer must not sweep the writer's in-progress
        staging file out from under its rename.
        """
        return self._tmp_files()

    # ------------------------------------------------------------------
    # Backend interface

    def _load(self, key: str) -> Optional[List[RunResult]]:
        path = self._entry_path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            # Transient I/O failure (EACCES, EMFILE under the serve
            # layer's fd pressure): a miss, but the entry stays — it may
            # well read fine on the next attempt. Only decode/shape
            # errors below prove the file itself is bad.
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            self._discard(path)
            return None
        if not isinstance(payload, dict) or payload.get("engine_version") != ENGINE_VERSION:
            self._discard(path)
            return None
        try:
            return [RunResult.from_json(r) for r in payload["results"]]
        except (KeyError, TypeError, ValueError):
            self._discard(path)
            return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _save(self, key: str, results: List[RunResult], request: Optional[RunRequest]) -> None:
        payload = {
            "engine_version": ENGINE_VERSION,
            "request": None if request is None else request.to_json(),
            "results": [r.to_json() for r in results],
        }
        path = self._entry_path(key)
        # A per-writer temp name: concurrent saves of the same key each
        # stage their own file, so the last rename wins with a complete
        # entry (a shared `<key>.json.tmp` let one writer rename — and
        # thereby delete — another's half-written temp file). The prefix
        # keeps the key visible for debugging; the suffix makes orphans
        # match the `*.json.tmp` sweep. Staging in the entry's own
        # directory keeps the rename atomic (same filesystem, and the
        # sharded layout stages inside the shard).
        text = json.dumps(payload, sort_keys=True)
        for attempt in (0, 1):
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f"{key}.", suffix=".json.tmp"
            )
            tmp = Path(tmp_name)
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                # A wholesale purge (engine-version bump) swept our
                # staged file between write and rename. Restage once;
                # losing the race twice means the store is being cleared
                # out from under us and the entry is forfeit anyway.
                if attempt == 1:
                    return
            finally:
                if tmp.exists():  # the write or rename failed mid-way
                    self._discard(tmp)

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())

    def clear(self) -> None:
        for entry in self._entry_files():
            self._discard(entry)
        for stale in self._tmp_files():  # full sweep: clear is quiescent
            self._discard(stale)
        self.reset_counters()
        self._invalidated = 0
