"""A sharded on-disk run store: fan-out by cache-key hex prefix.

Layout of the store directory (``.servestore/`` by convention)::

    .servestore/
        engine_version          # at the root: one version for all shards
        engine_version.lock
        ab/<sha256>.json        # entries whose key starts with "ab"
        c1/<sha256>.json
        ...

The flat :class:`~repro.runstore.disk.DiskRunStore` keeps every entry in
one directory — fine for a CLI invocation, but a serving layer with many
concurrent writer processes turns that directory into a single hot
inode: every create/rename serializes on the same directory lock, and a
``glob`` over tens of thousands of entries scans one huge listing. The
sharded store fans entries out into ``16 ** shard_width`` subdirectories
keyed by the first ``shard_width`` hex characters of the cache key
(:meth:`~repro.sim.runspec.RunRequest.cache_key` is hex SHA-256, so the
fan-out is uniform). Each shard is written with the same atomic
mkstemp-in-shard + rename discipline as the flat store, so any number of
concurrent writers — across processes — can save into the same shard, or
the same key, without tearing.

Invalidation semantics are identical to the flat store and shared with
it (one ``engine_version`` file at the root, the purge under the same
advisory lock, wholesale on mismatch); a flat store directory opened as
a sharded store simply migrates entry-by-entry as keys are re-saved —
old flat entries are not visible through the sharded layout and are
dropped by ``clear()`` or an engine-version bump.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.errors import ReproError
from repro.runstore.disk import DiskRunStore

#: Characters a shard directory name may consist of (hex, lowercase).
_HEX = set("0123456789abcdef")


class ShardedDiskRunStore(DiskRunStore):
    """Hex-prefix-sharded JSON-per-key store rooted at ``root``.

    Args:
        root: store directory (created if missing).
        shard_width: hex characters of the key that name the shard
            (1 → 16 shards, 2 → 256 shards; default 2). Re-opening an
            existing store with a different width would make existing
            entries invisible, so the width is recorded per-directory
            implicitly by the shard names — callers must keep it stable
            for the lifetime of a store directory.
    """

    def __init__(self, root: Union[str, Path], shard_width: int = 2) -> None:
        if not 1 <= int(shard_width) <= 4:
            raise ReproError(f"shard_width must be in 1..4, got {shard_width}")
        self.shard_width = int(shard_width)
        super().__init__(root)

    # ------------------------------------------------------------------
    # Directory layout

    def num_shards(self) -> int:
        return 16 ** self.shard_width

    def shard_of(self, key: str) -> str:
        """The shard directory name of ``key`` (its first hex chars)."""
        prefix = key[: self.shard_width].lower()
        if len(prefix) < self.shard_width or not set(prefix) <= _HEX:
            # Non-hex keys (hand-written test keys, foreign content) all
            # land in one overflow shard rather than poisoning the
            # directory namespace with arbitrary prefixes.
            return "_" * self.shard_width
        return prefix

    def _shard_dirs(self) -> Iterable[Path]:
        for child in sorted(self.root.iterdir()):
            if not child.is_dir():
                continue
            name = child.name
            if len(name) == self.shard_width and (
                set(name) <= _HEX or name == "_" * self.shard_width
            ):
                yield child

    def _entry_path(self, key: str) -> Path:
        shard = self.root / self.shard_of(key)
        # Lazy shard creation keeps small stores small; exist_ok makes
        # concurrent first-writers of one shard race-free.
        shard.mkdir(exist_ok=True)
        return shard / f"{key}.json"

    def _entry_files(self) -> Iterable[Path]:
        for shard in self._shard_dirs():
            yield from sorted(shard.glob("*.json"))

    def _tmp_files(self) -> Iterable[Path]:
        yield from super()._tmp_files()
        for shard in self._shard_dirs():
            yield from shard.glob("*.json.tmp")

    def _tmp_files_on_open(self) -> Iterable[Path]:
        # Opening a sharded store races live writers by design (every
        # serve worker process re-opens the same directory), and an
        # in-progress `mkstemp` staging file is indistinguishable from
        # crash litter — so the open-time sweep covers only root-level
        # version-file temps, never the shards. Shard litter is swept by
        # ``clear()`` and the engine-version purge, which run when the
        # store's contents are forfeit anyway.
        return self.root.glob("engine_version.*.tmp")
