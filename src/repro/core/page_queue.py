"""Batched page alloc/release event queues (paper sections 4.2.3-4.2.4).

First-touch needs to know when the guest releases a physical page so the
hypervisor can invalidate its p2m entry. Calling the hypervisor on *every*
release is ruinous (an empty hypercall per release divides wrmem's
performance by 3), so the guest batches events:

* each entry is a pair ``(op, page)`` — allocation or release of a
  physical page;
* entries accumulate in a queue protected by a lock; when the queue fills,
  the guest flushes it with one hypercall **while still holding the lock**,
  so no other core can reallocate a queued free page mid-flush;
* a single global queue bottlenecks on many cores, so the final design
  partitions it into independent queues selected by the two least
  significant bits of the page frame number;
* on receipt, the hypervisor replays the queue from the newest entry and
  only honours the *most recent* operation per page: a newest-release means
  the page is truly free (invalidate it); a newest-allocation means the
  page may already be reused (leave it where it is — copying would cost
  more than it saves).

Each partition is a pair of preallocated ``op``/``gpfn`` arrays with a
fill counter (so a flush hands the hypervisor a :class:`PageEventBatch`
of arrays, not a list of objects), and :meth:`PartitionedPageQueue.record_many`
enqueues a whole gpfn array with the same per-flush cost accounting —
flushes fire in the order their triggering event would have arrived — as
the equivalent :meth:`PartitionedPageQueue.record` loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core import batch as batch_mode
from repro.errors import HypercallError


class PageOp(enum.Enum):
    """Operation recorded in a queue entry."""

    ALLOC = "alloc"
    RELEASE = "release"


@dataclass(frozen=True)
class PageEvent:
    """One (op, page) pair, oldest-first in a flushed queue."""

    op: PageOp
    gpfn: int


#: Array op codes (the wire format of a flushed batch).
OP_ALLOC = 0
OP_RELEASE = 1
_CODE_OF = {PageOp.ALLOC: OP_ALLOC, PageOp.RELEASE: OP_RELEASE}
_OP_OF = (PageOp.ALLOC, PageOp.RELEASE)


class PageEventBatch:
    """One flushed queue as parallel ``ops``/``gpfns`` arrays.

    Sequence-compatible with the list of :class:`PageEvent` the queue used
    to flush (iteration and indexing materialise events on demand), while
    the replay path reads the arrays directly.
    """

    __slots__ = ("ops", "gpfns")

    def __init__(self, ops: np.ndarray, gpfns: np.ndarray):
        self.ops = np.asarray(ops, dtype=np.uint8)
        self.gpfns = np.asarray(gpfns, dtype=np.int64)
        if self.ops.shape != self.gpfns.shape:
            raise HypercallError("batch needs matching op/gpfn arrays")

    def __len__(self) -> int:
        return int(self.ops.size)

    def __iter__(self) -> Iterator[PageEvent]:
        for code, gpfn in zip(self.ops.tolist(), self.gpfns.tolist()):
            yield PageEvent(_OP_OF[code], gpfn)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                PageEvent(_OP_OF[c], g)
                for c, g in zip(
                    self.ops[index].tolist(), self.gpfns[index].tolist()
                )
            ]
        return PageEvent(_OP_OF[int(self.ops[index])], int(self.gpfns[index]))

    @classmethod
    def from_events(cls, events: Sequence[PageEvent]) -> "PageEventBatch":
        ops = np.fromiter(
            (_CODE_OF[e.op] for e in events), dtype=np.uint8, count=len(events)
        )
        gpfns = np.fromiter(
            (e.gpfn for e in events), dtype=np.int64, count=len(events)
        )
        return cls(ops, gpfns)


#: Flush callback: receives the (oldest-first) events, returns nothing.
FlushFn = Callable[[Sequence[PageEvent]], None]
#: Cost callback: seconds one flush of n events takes (lock-hold time).
FlushCostFn = Callable[[int], float]


class QueueStats:
    """Accounting for one queue family (used by the batching experiments).

    Attribute-compatible with the dataclass this replaced; each field is
    a view over a metric cell registered with the active observability
    session (:mod:`repro.obs`), so the batching experiments keep reading
    the same numbers while an enabled session collects them.
    """

    __slots__ = ("_events", "_flushes", "_flushed", "_locks", "_flush_hold", "_append_hold")

    def __init__(self) -> None:
        reg = obs.registry()
        self._events = reg.counter("queue.events")
        self._flushes = reg.counter("queue.flushes")
        self._flushed = reg.counter("queue.flushed_events")
        self._locks = reg.counter("queue.lock_acquisitions")
        #: Seconds of lock hold time spent inside flush hypercalls.
        self._flush_hold = reg.counter("queue.flush_hold_seconds", value=0.0)
        #: Seconds spent appending entries (lock held, no hypercall).
        self._append_hold = reg.counter("queue.append_hold_seconds", value=0.0)

    @property
    def events(self) -> int:
        return self._events.value

    @events.setter
    def events(self, value: int) -> None:
        self._events.value = value

    @property
    def flushes(self) -> int:
        return self._flushes.value

    @flushes.setter
    def flushes(self, value: int) -> None:
        self._flushes.value = value

    @property
    def flushed_events(self) -> int:
        return self._flushed.value

    @flushed_events.setter
    def flushed_events(self, value: int) -> None:
        self._flushed.value = value

    @property
    def lock_acquisitions(self) -> int:
        return self._locks.value

    @lock_acquisitions.setter
    def lock_acquisitions(self, value: int) -> None:
        self._locks.value = value

    @property
    def flush_hold_seconds(self) -> float:
        return self._flush_hold.value

    @flush_hold_seconds.setter
    def flush_hold_seconds(self, value: float) -> None:
        self._flush_hold.value = value

    @property
    def append_hold_seconds(self) -> float:
        return self._append_hold.value

    @append_hold_seconds.setter
    def append_hold_seconds(self, value: float) -> None:
        self._append_hold.value = value

    @property
    def events_per_flush(self) -> float:
        return self.flushed_events / self.flushes if self.flushes else 0.0


def _accumulate(start: float, cost: float, count: int) -> float:
    """``count`` sequential ``start += cost`` adds, as one cumsum.

    ``np.cumsum`` is sequential left-to-right, so the final element is
    bit-identical to the scalar accumulation loop.
    """
    if count == 0:
        return start
    steps = np.empty(count + 1, dtype=np.float64)
    steps[0] = start
    steps[1:] = cost
    return float(np.cumsum(steps)[-1])


class PartitionedPageQueue:
    """The guest-side event queue, partitioned by the 2 low PFN bits.

    Args:
        flush_fn: delivers a full queue to the hypervisor (the hypercall).
        flush_cost_fn: duration of a flush of n events (lock-hold time).
        batch_size: entries per partition before a flush triggers.
        num_partitions: independent queues; the paper uses 4 (two LSBs of
            the page frame number). ``num_partitions=1`` is the single
            global queue of the intermediate design, kept for the ablation.
        append_cost_seconds: lock-held time for one enqueue.
    """

    def __init__(
        self,
        flush_fn: FlushFn,
        flush_cost_fn: Optional[FlushCostFn] = None,
        batch_size: int = 64,
        num_partitions: int = 4,
        append_cost_seconds: float = 20e-9,
    ):
        if batch_size < 1:
            raise HypercallError("batch_size must be at least 1")
        if num_partitions < 1:
            raise HypercallError("need at least one partition")
        self.flush_fn = flush_fn
        self.flush_cost_fn = flush_cost_fn or (lambda n: 0.0)
        self.batch_size = batch_size
        self.num_partitions = num_partitions
        self.append_cost_seconds = append_cost_seconds
        self._ops = [
            np.empty(batch_size, dtype=np.uint8) for _ in range(num_partitions)
        ]
        self._gpfns = [
            np.empty(batch_size, dtype=np.int64) for _ in range(num_partitions)
        ]
        self._fill = [0] * num_partitions
        self._pending = 0
        self.stats = QueueStats()

    def partition_of(self, gpfn: int) -> int:
        """Queue index for a page: the two least significant PFN bits."""
        return gpfn % self.num_partitions

    def record(self, op: PageOp, gpfn: int) -> None:
        """Append one event, flushing the partition if it fills.

        The flush happens while the partition lock is held (so a queued
        free page cannot be reallocated concurrently); the lock-hold time
        is accounted in :attr:`stats`.
        """
        idx = self.partition_of(gpfn)
        fill = self._fill[idx]
        self._ops[idx][fill] = _CODE_OF[op]
        self._gpfns[idx][fill] = gpfn
        self._fill[idx] = fill + 1
        self._pending += 1
        self.stats.events += 1
        self.stats.lock_acquisitions += 1
        self.stats.append_hold_seconds += self.append_cost_seconds
        if fill + 1 >= self.batch_size:
            self._flush(idx)

    def record_alloc(self, gpfn: int) -> None:
        """Shorthand for an allocation event."""
        self.record(PageOp.ALLOC, gpfn)

    def record_release(self, gpfn: int) -> None:
        """Shorthand for a release event."""
        self.record(PageOp.RELEASE, gpfn)

    def record_many(self, op: PageOp, gpfns: Union[Sequence[int], np.ndarray]) -> None:
        """Enqueue one op for a whole gpfn array.

        Equivalent — same flushes, in the same order, with the same stats
        — to calling :meth:`record` per gpfn; the flush of each partition
        fires at the position of the event that filled it.
        """
        gpfns = np.asarray(gpfns, dtype=np.int64)
        count = int(gpfns.size)
        if count == 0:
            return
        if not batch_mode.vectorized():
            for gpfn in gpfns.tolist():
                self.record(op, gpfn)
            return
        code = _CODE_OF[op]
        size = self.batch_size
        parts = gpfns % self.num_partitions
        order = np.argsort(parts, kind="stable")
        counts = np.bincount(parts, minlength=self.num_partitions)
        # All appends are accounted up front: append/flush hold times live
        # in separate accumulators, so the scalar interleaving does not
        # change either float result.
        self.stats.events += count
        self.stats.lock_acquisitions += count
        self.stats.append_hold_seconds = _accumulate(
            self.stats.append_hold_seconds, self.append_cost_seconds, count
        )
        self._pending += count
        # Per partition: its (ascending) positions in `gpfns`, and the
        # [start, end) chunks of that segment each flush covers. A flush
        # fires at the position of the event that filled the partition,
        # so flushes across partitions are emitted sorted by trigger.
        segments: List[np.ndarray] = []
        flushed_through = [0] * self.num_partitions
        flushes: List[Tuple[int, int, int, int]] = []
        offset = 0
        for idx in range(self.num_partitions):
            cnt = int(counts[idx])
            segments.append(order[offset : offset + cnt])
            offset += cnt
            start = 0
            trigger = (size - self._fill[idx]) - 1
            while trigger < cnt:
                flushes.append((int(segments[idx][trigger]), idx, start, trigger + 1))
                start = trigger + 1
                trigger += size
            flushed_through[idx] = start
        for _, idx, start, end in sorted(flushes):
            chunk = gpfns[segments[idx][start:end]]
            fill = self._fill[idx]
            ops = np.full(fill + chunk.size, code, dtype=np.uint8)
            out = np.empty(fill + chunk.size, dtype=np.int64)
            if fill:
                ops[:fill] = self._ops[idx][:fill]
                out[:fill] = self._gpfns[idx][:fill]
                self._fill[idx] = 0
            out[fill:] = chunk
            self._emit(PageEventBatch(ops, out))
        # Whatever did not trigger a flush stays buffered.
        for idx in range(self.num_partitions):
            rest = segments[idx][flushed_through[idx] :]
            if rest.size == 0:
                continue
            fill = self._fill[idx]
            self._ops[idx][fill : fill + rest.size] = code
            self._gpfns[idx][fill : fill + rest.size] = gpfns[rest]
            self._fill[idx] = fill + int(rest.size)

    def flush_all(self) -> None:
        """Force-flush every partition (e.g. before a policy switch)."""
        for idx in range(self.num_partitions):
            if self._fill[idx]:
                self._flush(idx)

    def pending(self) -> int:
        """Events recorded but not yet flushed (maintained, not scanned)."""
        return self._pending

    def _flush(self, idx: int) -> None:
        fill = self._fill[idx]
        events = PageEventBatch(
            self._ops[idx][:fill].copy(), self._gpfns[idx][:fill].copy()
        )
        self._fill[idx] = 0
        self._emit(events)

    def _emit(self, events: PageEventBatch) -> None:
        self._pending -= len(events)
        self.stats.flushes += 1
        self.stats.flushed_events += len(events)
        self.stats.flush_hold_seconds += self.flush_cost_fn(len(events))
        tr = obs.tracer()
        if tr.enabled:
            tr.instant("queue.flush", cat="guest", events=len(events))
        self.flush_fn(events)


def newest_wins(events: PageEventBatch) -> Tuple[np.ndarray, int]:
    """Newest-wins resolution of one batch (paper section 4.2.4).

    Returns ``(release_gpfns, skipped)``: the pages whose most recent
    event is a RELEASE — in the order a newest-first scalar walk would
    visit them — and the count whose most recent event is an ALLOC.
    """
    reversed_gpfns = events.gpfns[::-1]
    reversed_ops = events.ops[::-1]
    _, first_seen = np.unique(reversed_gpfns, return_index=True)
    newest_ops = reversed_ops[first_seen]
    release_positions = np.sort(first_seen[newest_ops == OP_RELEASE])
    skipped = int(np.count_nonzero(newest_ops == OP_ALLOC))
    return reversed_gpfns[release_positions], skipped


def replay_page_events(
    events: Sequence[PageEvent],
    invalidate: Callable[[int], bool],
) -> Tuple[int, int]:
    """Hypervisor-side replay of one flushed queue (paper section 4.2.4).

    Walk from the newest entry backwards, remembering visited pages; only
    the most recent operation per page counts:

    * newest op RELEASE -> the page is free: ``invalidate(gpfn)``;
    * newest op ALLOC -> the page may already be reused by a process:
      leave it on its current node (copying the old content would be too
      costly in the common case).

    Args:
        events: oldest-first event list, as flushed by the guest.
        invalidate: callback invalidating one gpfn (returns False if the
            entry was already invalid).

    Returns:
        (invalidated, skipped_reallocated): pages invalidated, and pages
        whose newest event was an allocation.
    """
    if isinstance(events, PageEventBatch) and batch_mode.vectorized():
        release_gpfns, skipped = newest_wins(events)
        invalidated = 0
        for gpfn in release_gpfns.tolist():
            if invalidate(gpfn):
                invalidated += 1
        return invalidated, skipped
    seen: set = set()
    invalidated = 0
    skipped = 0
    for event in reversed(events):
        if event.gpfn in seen:
            continue
        seen.add(event.gpfn)
        if event.op is PageOp.RELEASE:
            if invalidate(event.gpfn):
                invalidated += 1
        else:
            skipped += 1
    return invalidated, skipped


def lock_service_slowdown(
    per_thread_rate_per_s: float,
    num_threads: int,
    service_seconds: float,
    num_partitions: int = 1,
    rho_cap: float = 0.95,
) -> float:
    """Completion-time slowdown imposed by a lock-protected service point.

    Models the guest-wide effect of the queue lock — or of issuing one
    hypercall per release through a single serialisation point, the
    paper's strawman (section 4.2.3): with every thread producing events
    at ``per_thread_rate_per_s`` and each event holding a lock for
    ``service_seconds``, the offered load per partition is
    ``rho = rate * threads * service / partitions``.

    * At/beyond saturation (``rho >= 1``) the serialisation point caps the
      whole application's throughput: the slowdown is ``rho``. This is
      how an "empty hypercall per release" divides wrmem by ~3 (one
      release per 15 us per thread, 48 threads, ~1 us per hypercall).
    * Below saturation each event stalls its thread for the M/M/1
      effective service time ``service / (1 - rho)``.

    Returns:
        A multiplicative completion-time factor (>= 1).
    """
    if per_thread_rate_per_s <= 0 or service_seconds <= 0 or num_threads < 1:
        return 1.0
    rho = per_thread_rate_per_s * num_threads * service_seconds / num_partitions
    if rho >= 1.0:
        # Saturated: the app can only run as fast as events drain.
        return rho
    effective = service_seconds / (1.0 - min(rho, rho_cap))
    busy_fraction = per_thread_rate_per_s * effective
    if busy_fraction >= 1.0:
        return 1.0 / (1.0 - rho_cap)
    return 1.0 / (1.0 - busy_fraction)
