"""Batched page alloc/release event queues (paper sections 4.2.3-4.2.4).

First-touch needs to know when the guest releases a physical page so the
hypervisor can invalidate its p2m entry. Calling the hypervisor on *every*
release is ruinous (an empty hypercall per release divides wrmem's
performance by 3), so the guest batches events:

* each entry is a pair ``(op, page)`` — allocation or release of a
  physical page;
* entries accumulate in a queue protected by a lock; when the queue fills,
  the guest flushes it with one hypercall **while still holding the lock**,
  so no other core can reallocate a queued free page mid-flush;
* a single global queue bottlenecks on many cores, so the final design
  partitions it into independent queues selected by the two least
  significant bits of the page frame number;
* on receipt, the hypervisor replays the queue from the newest entry and
  only honours the *most recent* operation per page: a newest-release means
  the page is truly free (invalidate it); a newest-allocation means the
  page may already be reused (leave it where it is — copying would cost
  more than it saves).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HypercallError


class PageOp(enum.Enum):
    """Operation recorded in a queue entry."""

    ALLOC = "alloc"
    RELEASE = "release"


@dataclass(frozen=True)
class PageEvent:
    """One (op, page) pair, oldest-first in a flushed queue."""

    op: PageOp
    gpfn: int


#: Flush callback: receives the (oldest-first) events, returns nothing.
FlushFn = Callable[[Sequence[PageEvent]], None]
#: Cost callback: seconds one flush of n events takes (lock-hold time).
FlushCostFn = Callable[[int], float]


@dataclass
class QueueStats:
    """Accounting for one queue family (used by the batching experiments)."""

    events: int = 0
    flushes: int = 0
    flushed_events: int = 0
    lock_acquisitions: int = 0
    #: Seconds of lock hold time spent inside flush hypercalls.
    flush_hold_seconds: float = 0.0
    #: Seconds spent appending entries (lock held, no hypercall).
    append_hold_seconds: float = 0.0

    @property
    def events_per_flush(self) -> float:
        return self.flushed_events / self.flushes if self.flushes else 0.0


class PartitionedPageQueue:
    """The guest-side event queue, partitioned by the 2 low PFN bits.

    Args:
        flush_fn: delivers a full queue to the hypervisor (the hypercall).
        flush_cost_fn: duration of a flush of n events (lock-hold time).
        batch_size: entries per partition before a flush triggers.
        num_partitions: independent queues; the paper uses 4 (two LSBs of
            the page frame number). ``num_partitions=1`` is the single
            global queue of the intermediate design, kept for the ablation.
        append_cost_seconds: lock-held time for one enqueue.
    """

    def __init__(
        self,
        flush_fn: FlushFn,
        flush_cost_fn: Optional[FlushCostFn] = None,
        batch_size: int = 64,
        num_partitions: int = 4,
        append_cost_seconds: float = 20e-9,
    ):
        if batch_size < 1:
            raise HypercallError("batch_size must be at least 1")
        if num_partitions < 1:
            raise HypercallError("need at least one partition")
        self.flush_fn = flush_fn
        self.flush_cost_fn = flush_cost_fn or (lambda n: 0.0)
        self.batch_size = batch_size
        self.num_partitions = num_partitions
        self.append_cost_seconds = append_cost_seconds
        self._queues: List[List[PageEvent]] = [[] for _ in range(num_partitions)]
        self.stats = QueueStats()

    def partition_of(self, gpfn: int) -> int:
        """Queue index for a page: the two least significant PFN bits."""
        return gpfn % self.num_partitions

    def record(self, op: PageOp, gpfn: int) -> None:
        """Append one event, flushing the partition if it fills.

        The flush happens while the partition lock is held (so a queued
        free page cannot be reallocated concurrently); the lock-hold time
        is accounted in :attr:`stats`.
        """
        idx = self.partition_of(gpfn)
        queue = self._queues[idx]
        queue.append(PageEvent(op, gpfn))
        self.stats.events += 1
        self.stats.lock_acquisitions += 1
        self.stats.append_hold_seconds += self.append_cost_seconds
        if len(queue) >= self.batch_size:
            self._flush(idx)

    def record_alloc(self, gpfn: int) -> None:
        """Shorthand for an allocation event."""
        self.record(PageOp.ALLOC, gpfn)

    def record_release(self, gpfn: int) -> None:
        """Shorthand for a release event."""
        self.record(PageOp.RELEASE, gpfn)

    def flush_all(self) -> None:
        """Force-flush every partition (e.g. before a policy switch)."""
        for idx in range(self.num_partitions):
            if self._queues[idx]:
                self._flush(idx)

    def pending(self) -> int:
        """Events recorded but not yet flushed."""
        return sum(len(q) for q in self._queues)

    def _flush(self, idx: int) -> None:
        queue = self._queues[idx]
        events, self._queues[idx] = queue, []
        self.stats.flushes += 1
        self.stats.flushed_events += len(events)
        self.stats.flush_hold_seconds += self.flush_cost_fn(len(events))
        self.flush_fn(events)


def replay_page_events(
    events: Sequence[PageEvent],
    invalidate: Callable[[int], bool],
) -> Tuple[int, int]:
    """Hypervisor-side replay of one flushed queue (paper section 4.2.4).

    Walk from the newest entry backwards, remembering visited pages; only
    the most recent operation per page counts:

    * newest op RELEASE -> the page is free: ``invalidate(gpfn)``;
    * newest op ALLOC -> the page may already be reused by a process:
      leave it on its current node (copying the old content would be too
      costly in the common case).

    Args:
        events: oldest-first event list, as flushed by the guest.
        invalidate: callback invalidating one gpfn (returns False if the
            entry was already invalid).

    Returns:
        (invalidated, skipped_reallocated): pages invalidated, and pages
        whose newest event was an allocation.
    """
    seen: set = set()
    invalidated = 0
    skipped = 0
    for event in reversed(events):
        if event.gpfn in seen:
            continue
        seen.add(event.gpfn)
        if event.op is PageOp.RELEASE:
            if invalidate(event.gpfn):
                invalidated += 1
        else:
            skipped += 1
    return invalidated, skipped


def lock_service_slowdown(
    per_thread_rate_per_s: float,
    num_threads: int,
    service_seconds: float,
    num_partitions: int = 1,
    rho_cap: float = 0.95,
) -> float:
    """Completion-time slowdown imposed by a lock-protected service point.

    Models the guest-wide effect of the queue lock — or of issuing one
    hypercall per release through a single serialisation point, the
    paper's strawman (section 4.2.3): with every thread producing events
    at ``per_thread_rate_per_s`` and each event holding a lock for
    ``service_seconds``, the offered load per partition is
    ``rho = rate * threads * service / partitions``.

    * At/beyond saturation (``rho >= 1``) the serialisation point caps the
      whole application's throughput: the slowdown is ``rho``. This is
      how an "empty hypercall per release" divides wrmem by ~3 (one
      release per 15 us per thread, 48 threads, ~1 us per hypercall).
    * Below saturation each event stalls its thread for the M/M/1
      effective service time ``service / (1 - rho)``.

    Returns:
        A multiplicative completion-time factor (>= 1).
    """
    if per_thread_rate_per_s <= 0 or service_seconds <= 0 or num_threads < 1:
        return 1.0
    rho = per_thread_rate_per_s * num_threads * service_seconds / num_partitions
    if rho >= 1.0:
        # Saturated: the app can only run as fast as events drain.
        return rho
    effective = service_seconds / (1.0 - min(rho, rho_cap))
    busy_fraction = per_thread_rate_per_s * effective
    if busy_fraction >= 1.0:
        return 1.0 / (1.0 - rho_cap)
    return 1.0 / (1.0 - busy_fraction)
