"""Per-domain NUMA policy selection and the hypercall handlers.

Implements the external interface's semantics (paper section 4.2):

* a domain boots with **round-4K** by default; **round-1G** is available
  only as a boot option (it is rarely the best policy — section 5.4.1 —
  so no runtime switch to it exists);
* at run time, the ``NUMA_SET_POLICY`` hypercall can switch the domain to
  **first-touch** and can activate/deactivate **Carrefour**;
* the ``NUMA_PAGE_EVENTS`` hypercall delivers batched alloc/release queues
  to the active policy (only first-touch consumes them);
* the ``CARREFOUR_CONTROL`` hypercall carries the dom0 user component's
  decision batches into the in-hypervisor system component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.carrefour.engine import CarrefourConfig
from repro.core.interface import InternalInterface
from repro.core.page_queue import PageEventBatch
from repro.core.policies.base import NumaPolicy, PolicyName, PolicySpec
from repro.core.policies.carrefour import CarrefourPolicy
from repro.core.policies.factory import make_policy
from repro.errors import HypercallError, PolicyError
from repro.hypervisor.domain import Domain
from repro.hypervisor.hypercalls import Hypercall, HypercallTable


@dataclass
class PolicyChange:
    """Audit record of one policy switch."""

    domain_id: int
    old: Optional[str]
    new: str


class PolicyManager:
    """Owns the policy objects of every domain and the NUMA hypercalls."""

    def __init__(
        self,
        internal: InternalInterface,
        hypercalls: HypercallTable,
        carrefour_config: Optional[CarrefourConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.internal = internal
        self.hypercalls = hypercalls
        self.carrefour_config = carrefour_config or CarrefourConfig()
        self.rng = rng or np.random.default_rng(
            internal.machine.config.rng_seed
        )
        self._domains: Dict[int, Domain] = {}
        self.changes: list = []
        #: Page-event flushes that arrived while no policy wanted them.
        self.ignored_event_flushes = 0
        hypercalls.register(Hypercall.NUMA_SET_POLICY, self._hc_set_policy)
        hypercalls.register(Hypercall.NUMA_PAGE_EVENTS, self._hc_page_events)
        hypercalls.register(Hypercall.CARREFOUR_CONTROL, self._hc_carrefour)

    # ------------------------------------------------------------------
    # Domain lifecycle

    def boot_domain(
        self, domain: Domain, boot_policy: Optional[PolicySpec] = None
    ) -> None:
        """Install the boot policy and populate the domain's memory.

        ``boot_policy`` defaults to round-4K (section 4.2.1); round-1G is
        accepted here (the boot option) but not at run time.
        """
        if domain.domain_id in self._domains:
            raise PolicyError(f"domain {domain.domain_id} already booted")
        spec = boot_policy or PolicySpec(PolicyName.ROUND_4K)
        policy = self._build(spec, first_touch_lazy=True, domain_id=domain.domain_id)
        domain.numa_policy = policy
        policy.populate(domain)
        self._domains[domain.domain_id] = domain
        self.changes.append(PolicyChange(domain.domain_id, None, policy.name))

    def forget_domain(self, domain: Domain) -> None:
        """Drop a destroyed domain (shutting down its Carrefour engine)."""
        stored = self._domains.pop(domain.domain_id, None)
        if stored is not None and isinstance(stored.numa_policy, CarrefourPolicy):
            stored.numa_policy.shutdown()

    def domain(self, domain_id: int) -> Domain:
        try:
            return self._domains[domain_id]
        except KeyError:
            raise PolicyError(f"unknown domain {domain_id}") from None

    # ------------------------------------------------------------------
    # Runtime switching (the NUMA_SET_POLICY semantics)

    def set_policy(
        self,
        domain_id: int,
        base: Optional[PolicyName] = None,
        carrefour: Optional[bool] = None,
    ) -> NumaPolicy:
        """Switch a running domain's policy.

        Args:
            domain_id: target domain.
            base: new static base; only first-touch and round-4K are legal
                at run time (round-1G is boot-only). None keeps the
                current base.
            carrefour: activate/deactivate Carrefour; None keeps the
                current state.
        """
        domain = self.domain(domain_id)
        current = domain.numa_policy
        current_base, current_carrefour = self._split(current)
        if base is None:
            base = current_base
        if base is PolicyName.ROUND_1G and current_base is not PolicyName.ROUND_1G:
            raise PolicyError(
                "round-1g is a boot option, not a runtime policy (section 4.2.1)"
            )
        if carrefour is None:
            carrefour = current_carrefour
        if carrefour and base is PolicyName.ROUND_1G:
            raise PolicyError("Carrefour does not run on top of round-1g")
        spec = PolicySpec(base, carrefour)
        if current is not None and isinstance(current, CarrefourPolicy):
            current.shutdown()
        # A runtime switch keeps the current mapping: only pages released
        # *after* the switch drift toward first-touch placement.
        policy = self._build(spec, first_touch_lazy=False, domain_id=domain_id)
        old_name = current.name if current is not None else None
        domain.numa_policy = policy
        self.changes.append(PolicyChange(domain_id, old_name, policy.name))
        return policy

    # ------------------------------------------------------------------
    # Hypercall handlers

    def _hc_set_policy(self, domain_id: int, vcpu_id: int, args: Any) -> str:
        if not isinstance(args, dict) or "policy" not in args:
            raise HypercallError("NUMA_SET_POLICY needs a {'policy': ...} dict")
        raw = args["policy"]
        try:
            base = PolicyName(raw) if raw is not None else None
        except ValueError:
            raise HypercallError(f"unknown NUMA policy {raw!r}") from None
        policy = self.set_policy(domain_id, base, args.get("carrefour"))
        return policy.name

    def _hc_page_events(self, domain_id: int, vcpu_id: int, args: Any):
        if args is not None and not isinstance(
            args, (list, tuple, PageEventBatch)
        ):
            raise HypercallError("NUMA_PAGE_EVENTS needs a list of events")
        domain = self.domain(domain_id)
        policy = domain.numa_policy
        if policy is None or not policy.wants_page_events:
            self.ignored_event_flushes += 1
            return (0, 0)
        return policy.on_page_events(domain, args or [])

    def _hc_carrefour(self, domain_id: int, vcpu_id: int, args: Any) -> int:
        """Route a dom0 command batch to the target domain's engine.

        The paper's user component runs in dom0 and its hypercall is
        forwarded into Xen — so the *caller* is dom0 and the target domain
        travels in the arguments.
        """
        if domain_id != 0:
            raise HypercallError("CARREFOUR_CONTROL may only come from dom0")
        if not isinstance(args, dict):
            raise HypercallError("CARREFOUR_CONTROL needs a dict payload")
        if "target_domain" not in args or "decisions" not in args:
            raise HypercallError(
                "CARREFOUR_CONTROL needs target_domain and decisions"
            )
        target = self.domain(args["target_domain"])
        policy = target.numa_policy
        if not isinstance(policy, CarrefourPolicy):
            raise HypercallError(
                f"domain {target.domain_id} does not run Carrefour"
            )
        return policy.apply_commands(args["decisions"])

    # ------------------------------------------------------------------
    # Internals

    def _build(
        self, spec: PolicySpec, first_touch_lazy: bool, domain_id: int
    ) -> NumaPolicy:
        command_channel = None
        if spec.carrefour:
            # Carrefour's user component runs in dom0 and its command
            # batches enter the hypervisor through CARREFOUR_CONTROL.
            def command_channel(decisions, _domid=domain_id):
                return self.hypercalls.dispatch(
                    Hypercall.CARREFOUR_CONTROL,
                    0,
                    0,
                    {"target_domain": _domid, "decisions": list(decisions)},
                )

        return make_policy(
            spec,
            self.internal,
            first_touch_lazy=first_touch_lazy,
            carrefour_config=self.carrefour_config,
            rng=self.rng,
            command_channel=command_channel,
        )

    @staticmethod
    def _split(policy: Optional[NumaPolicy]):
        if policy is None:
            return PolicyName.ROUND_4K, False
        if isinstance(policy, CarrefourPolicy):
            return PolicyName(policy.base.name), True
        return PolicyName(policy.name), False
