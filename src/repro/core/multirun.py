"""Multi-run batched engine: N independent worlds as one numpy program.

PRs 2 and 4 vectorized *inside* one run (the congestion solver, the page
path); a parameter sweep still executed its hundreds of ``RunRequest``s
one world at a time, paying the per-epoch numpy dispatch cost once per
world. This module amortizes it across worlds: a group of requests with
a compatible topology/config signature is built into K live worlds whose
fixed-point solve advances in one structure-of-arrays program —

* per-thread inputs of every active run are flattened into one
  ``(T_total,)`` / ``(T_total, n)`` family of arrays;
* per-run access matrices land in one ``np.add.at`` scatter over a
  ``(R_total, n, n)`` stack, world totals in a ``(W, n, n)`` stack;
* one :meth:`~repro.sim.engine.CongestionSolver.solve_many` call turns
  the stack into per-world utilisations and latency matrices (the
  latency model broadcasts over the world axis; the topology constants —
  hops, route matrix, link bandwidths — are shared by the whole group);
* each world keeps its own exact-fixed-point early exit: a converged
  world's latency matrix is masked out of the damped update (which would
  be the identity on it anyway — an exact fixed point reproduces itself,
  the same argument :data:`~repro.sim.engine.SOLVER_EPSILON` makes for
  the scalar early exit), and the loop stops once every world converged.

Everything per-world stays per-world: commit, observations, policies,
churn, hardware counters and teardown run per run in the scalar order,
so results are **bit-identical** to serial execution — the parity tests
(tests/core, tests/properties) and the ``results_match`` check of the
``bench_multi_run`` perfbench section hold the line.

Fallback rules (a request executes through plain
:func:`~repro.runner.exec.execute_request` instead of a group) —

* ``cluster`` requests: one world per host, driven in lockstep by the
  cluster scheduler; there is no single world to stack.
* ``config.sanitize_p2m`` requests: the sanitizer is a check knob
  excluded from cache keys; runs that arm it per request stay on the
  scalar path so a trapped violation surfaces with an uncluttered
  single-world stack.
* an active observability session: trace events are ordered by one
  simulated clock per world — interleaving K worlds would reorder them,
  so tracing keeps the serial path (the experiment CLI already forces
  ``--jobs 1`` under ``--trace`` for the same reason).
* :func:`scalar_multirun` — the committed oracle switch, used by the
  perfbench serial leg and the parity tests.
* a group (or chunk) of one: nothing to batch.

Worlds that end (all runs finished, or the epoch cap) are masked out of
the group at their exact scalar exit time and finalized with the same
``finish(now)`` the scalar driver would have called.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import MultiRunError
from repro.hardware.machine import record_node_traffic_many
from repro.runner.exec import build_world, execute_request
from repro.sim.engine import (
    DEFAULT_MAX_EPOCHS,
    SOLVER_DAMPING,
    SOLVER_EPSILON,
    SOLVER_ITERATIONS,
    CongestionSolver,
    EpochStepper,
    _migrations_of,
    run_world,
)
from repro.sim.environment import World
from repro.sim.instance import AppRun
from repro.sim.results import EpochRecord, RunResult
from repro.sim.runspec import RunRequest


class _MultiRunMode:
    """Holds the process-wide multi-run switch (cf. ``core.batch``)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


_MODE = _MultiRunMode()


def multirun_enabled() -> bool:
    """True when groups may take the structure-of-arrays path."""
    return _MODE.enabled


def set_multirun(on: bool) -> None:
    """Flip the batched engine globally (the oracle turns it off)."""
    _MODE.enabled = bool(on)


@contextmanager
def scalar_multirun() -> Iterator[None]:
    """Run a block with the batched engine disabled.

    Inside the block :func:`run_worlds` and :func:`execute_batch` take
    the committed per-world scalar path — the oracle the perfbench
    serial leg times and the parity tests compare against.
    """
    previous = _MODE.enabled
    set_multirun(False)
    try:
        yield
    finally:
        set_multirun(previous)


# ----------------------------------------------------------------------
# Grouping

def group_signature(request: RunRequest) -> Optional[str]:
    """The compatibility key of a request, or None when it cannot batch.

    Requests with equal signatures build worlds on the same machine
    preset with the same epoch length and model knobs, so their solver
    constants can be shared. ``rng_seed`` is deliberately excluded — it
    seeds per-world state but never the topology — which is what lets a
    seed sweep batch into one group. Cluster and ``sanitize_p2m``
    requests return None (see the module docstring's fallback rules).
    """
    if request.environment not in ("linux", "xen"):
        return None
    if request.config.sanitize_p2m:
        return None
    config = dict(request.config.result_fields())
    config.pop("rng_seed", None)
    return json.dumps(
        {
            "environment": request.environment,
            "features": request.features,
            "unbatched_hypercalls": request.unbatched_hypercalls,
            "config": config,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


@dataclass
class BatchOutcome:
    """What :func:`execute_batch` did.

    Attributes:
        results: one result list per request, in request order —
            element-wise identical to mapping ``execute_request``.
        batched_runs: requests executed inside SoA groups.
        fallback_runs: requests executed per request (incompatible,
            ungroupable, or left alone in their chunk).
    """

    results: List[List[RunResult]]
    batched_runs: int
    fallback_runs: int


def _chunks(indices: List[int], size: int) -> Iterator[List[int]]:
    for start in range(0, len(indices), size):
        yield indices[start : start + size]


def execute_batch(
    requests: Sequence[RunRequest], batch_worlds: int
) -> BatchOutcome:
    """Execute ``requests``, grouping compatible ones K worlds at a time.

    The results (and therefore the store entries the runner writes) are
    byte-identical to executing each request alone; only the wall clock
    differs. Requests that cannot batch fall back to
    :func:`~repro.runner.exec.execute_request` — execution order across
    requests is irrelevant because request execution is pure.
    """
    batch_worlds = max(1, int(batch_worlds))
    results: List[Optional[List[RunResult]]] = [None] * len(requests)
    groups: dict = {}
    fallback: List[int] = []
    can_batch = batch_worlds > 1 and multirun_enabled() and not obs.enabled()
    for i, request in enumerate(requests):
        signature = group_signature(request) if can_batch else None
        if signature is None:
            fallback.append(i)
        else:
            groups.setdefault(signature, []).append(i)
    for i in fallback:
        results[i] = execute_request(requests[i])
    batched = 0
    for indices in groups.values():
        for chunk in _chunks(indices, batch_worlds):
            if len(chunk) == 1:
                results[chunk[0]] = execute_request(requests[chunk[0]])
                continue
            worlds = [build_world(requests[i]) for i in chunk]
            for i, produced in zip(chunk, run_worlds(worlds)):
                results[i] = produced
            batched += len(chunk)
    return BatchOutcome(
        results=list(results),  # type: ignore[arg-type]
        batched_runs=batched,
        fallback_runs=len(requests) - batched,
    )


# ----------------------------------------------------------------------
# The structure-of-arrays group driver

@dataclass
class _Lane:
    """One live world's slot in the current group epoch."""

    __slots__ = ("pos", "stepper", "active_runs", "dests")

    pos: int
    stepper: EpochStepper
    active_runs: List[AppRun]
    dests: List[Tuple[np.ndarray, np.ndarray, np.ndarray]]


class _Flat:
    """Per-thread inputs of every active run, flattened run-major."""

    __slots__ = (
        "D", "src", "active", "shares", "cpu", "tlb", "io",
        "one_minus_sync", "churn", "pending", "avail", "t_run", "t_world",
        "thread_bounds", "runs_per_world", "num_runs",
    )


def _gather_key(lanes: List[_Lane]) -> Tuple:
    """Identity of everything :func:`_gather` reads, cheap to rebuild.

    Steady-state epochs reuse the previous epoch's flattened arrays: the
    key pins the lane partition (which worlds, in which order), each
    run's cached destination arrays (``id`` — the dest memo hands out a
    *new* frozen array whenever placements or threads changed), the
    pending policy cost, and the CPU-share epoch of the run's scheduler
    (shares can only change when a runqueue does, which bumps
    ``Scheduler.version``; native-Linux runs have no scheduler and fixed
    shares). Every other gathered input is immutable after world build.
    """
    sig: List[Tuple] = []
    for lane in lanes:
        sig.append((id(lane.stepper),))
        for run, dests in zip(lane.active_runs, lane.dests):
            sched = getattr(
                getattr(run.context, "hypervisor", None), "scheduler", None
            )
            sig.append((
                id(run),
                id(dests[0]),
                run.pending_policy_cost,
                id(sched),
                getattr(sched, "version", 0),
            ))
    return tuple(sig)


def _check_compatible(worlds: Sequence[World]) -> None:
    ref = worlds[0]
    ref_topo = ref.machine.topology
    ref_route = ref_topo.route_link_matrix()
    ref_bw = [link.bandwidth_gib_s for link in ref_topo.links]
    for world in worlds[1:]:
        topo = world.machine.topology
        if (
            world.epoch_seconds != ref.epoch_seconds
            or world.machine.num_nodes != ref.machine.num_nodes
            or world.machine.config.traffic_burstiness
            != ref.machine.config.traffic_burstiness
            or topo.memory_controller_gib_s != ref_topo.memory_controller_gib_s
            or [link.bandwidth_gib_s for link in topo.links] != ref_bw
            or not np.array_equal(topo.route_link_matrix(), ref_route)
        ):
            raise MultiRunError(
                f"worlds {ref.label!r} and {world.label!r} are not "
                f"group-compatible (topology/epoch/model mismatch); "
                f"group by repro.core.multirun.group_signature first"
            )


def _gather(lanes: List[_Lane], epoch_seconds: float) -> _Flat:
    """Flatten the group's active runs into structure-of-arrays form.

    Scalar per-run values (op cost, sync fraction, pending policy cost)
    are broadcast to per-thread arrays with ``np.repeat``; using them
    elementwise performs the same float operation the scalar engine's
    scalar-with-array broadcasting does, so nothing changes bitwise.
    The per-thread time budget (``avail``) never depends on the latency
    matrix, so it is folded in here — evaluated once per gather, with
    the same two expressions the scalar engine evaluates per epoch.
    """
    D_parts: List[np.ndarray] = []
    src_parts: List[np.ndarray] = []
    active_parts: List[np.ndarray] = []
    shares_parts: List[np.ndarray] = []
    counts: List[int] = []
    run_world_idx: List[int] = []
    cpu: List[float] = []
    tlb: List[float] = []
    io: List[float] = []
    one_minus_sync: List[float] = []
    churn: List[float] = []
    pending: List[float] = []
    for lane in lanes:
        for run, (D, src, active) in zip(lane.active_runs, lane.dests):
            ctx = run.context
            D_parts.append(D)
            src_parts.append(src)
            active_parts.append(active)
            shares_parts.append(np.array([t.cpu_share for t in run.threads]))
            counts.append(len(run.threads))
            run_world_idx.append(lane.pos)
            cpu.append(run.op_model.cpu_seconds)
            tlb.append(getattr(ctx, "tlb_seconds_per_op", 0.0))
            io.append(ctx.io_seconds_per_op)
            one_minus_sync.append(1.0 - ctx.sync_fraction)
            churn.append(ctx.churn_slowdown)
            pending.append(run.pending_policy_cost)
    flat = _Flat()
    counts_arr = np.array(counts)
    flat.num_runs = len(counts)
    flat.D = np.concatenate(D_parts, axis=0)
    flat.src = np.concatenate(src_parts)
    flat.active = np.concatenate(active_parts)
    flat.shares = np.concatenate(shares_parts)
    flat.cpu = np.repeat(np.array(cpu), counts_arr)
    flat.tlb = np.repeat(np.array(tlb), counts_arr)
    flat.io = np.repeat(np.array(io), counts_arr)
    flat.one_minus_sync = np.repeat(np.array(one_minus_sync), counts_arr)
    flat.churn = np.repeat(np.array(churn), counts_arr)
    flat.pending = np.repeat(np.array(pending), counts_arr)
    flat.t_run = np.repeat(np.arange(flat.num_runs), counts_arr)
    flat.t_world = np.repeat(np.array(run_world_idx), counts_arr)
    flat.thread_bounds = np.concatenate(([0], np.cumsum(counts_arr)))
    flat.runs_per_world = [len(lane.active_runs) for lane in lanes]
    avail = epoch_seconds * flat.shares * flat.one_minus_sync / flat.churn
    flat.avail = np.maximum(0.0, avail - flat.pending)
    return flat


def _world_totals(
    run_mats: np.ndarray, flat: _Flat, num_worlds: int, n: int
) -> np.ndarray:
    """Per-world access totals from the per-run stack.

    Single-run worlds (the common sweep shape) alias their run matrix
    directly: the scalar engine's ``zeros + matrix`` accumulation is
    bit-identical to the matrix itself because traffic contributions are
    never ``-0.0``. Multi-run worlds accumulate their run matrices in
    run order — the scalar loop's exact summation order.
    """
    if flat.num_runs == num_worlds:
        return run_mats
    totals = np.zeros((num_worlds, n, n))
    r = 0
    for w, count in enumerate(flat.runs_per_world):
        for _ in range(count):
            totals[w] += run_mats[r]
            r += 1
    return totals


def _step_lanes(
    lanes: List[_Lane],
    solver: CongestionSolver,
    epoch_seconds: float,
    now: float,
    solver_epsilon: Optional[float],
    gather_cache: dict,
) -> None:
    """Advance every lane's world by one epoch, solved as one batch.

    ``gather_cache`` is the driver's single-slot memo, mutated in place
    here: steady-state epochs (same lanes, same destination arrays,
    same pending costs and CPU shares — see :func:`_gather_key`) reuse
    the previous epoch's flattened arrays instead of re-gathering.
    """
    n = solver.num_nodes
    num_worlds = len(lanes)
    key = _gather_key(lanes)
    if gather_cache.get("key") == key:
        flat = gather_cache["flat"]
    else:
        flat = _gather(lanes, epoch_seconds)
        gather_cache["key"] = key
        gather_cache["flat"] = flat
    latm = np.stack([lane.stepper.latm for lane in lanes])
    unconverged = np.ones(num_worlds, dtype=bool)
    avail = flat.avail
    ops_flat = totals = rho_c = rho_l = None
    run_mats = np.zeros((flat.num_runs, n, n))
    first_pass = True
    for _ in range(SOLVER_ITERATIONS):
        lat_rows = latm[flat.t_world, flat.src]
        mem_s = (flat.D * lat_rows).sum(axis=1)
        time_per_op = flat.cpu + mem_s + flat.tlb + flat.io
        ops_flat = np.where(flat.active, avail / time_per_op, 0.0)
        if first_pass:
            first_pass = False
        else:
            run_mats.fill(0.0)
        np.add.at(run_mats, (flat.t_run, flat.src), flat.D * ops_flat[:, None])
        totals = _world_totals(run_mats, flat, num_worlds, n)
        rho_c, rho_l, lat_new = solver.solve_many(totals, epoch_seconds)
        damped = SOLVER_DAMPING * latm + (1.0 - SOLVER_DAMPING) * lat_new
        diff = np.abs(damped - latm).reshape(num_worlds, -1).max(axis=1)
        # Early-exit masking: a converged world's matrix is frozen. The
        # damped update would reproduce it bit-for-bit anyway (an exact
        # fixed point reproduces itself), so masking only saves work and
        # keeps per-world results identical to the scalar early exit.
        if unconverged.all():
            latm = damped
        else:
            latm = np.where(unconverged[:, None, None], damped, latm)
        if solver_epsilon is not None:
            unconverged &= diff > solver_epsilon
            if not unconverged.any():
                break

    # ---- commit per run, in scalar order, with batched per-run math
    run_mats.setflags(write=False)
    rho_c.setflags(write=False)
    run_rho_l = solver.congestion_many(run_mats, epoch_seconds)[1]
    ops_by_node = np.zeros((flat.num_runs, n))
    np.add.at(ops_by_node, (flat.t_run, flat.src), ops_flat)
    # The per-run EpochRecord metrics are reductions over each run's
    # matrix slice; computing them over the stack reduces the same
    # contiguous elements with the same accumulation order as the scalar
    # EpochObservation properties, so every float matches (ops_done stays
    # a per-slice ``.sum()`` below: reduceat's sequential accumulation
    # differs from ndarray.sum's pairwise blocking past 8 threads):
    #   local_fraction— trace / total, 1.0 on a zero matrix
    #   imbalance     — std / mean of column sums, 0.0 on zero mean
    #   max_link_rho  — order-free max reduction
    acc_total = run_mats.sum(axis=(1, 2))
    traces = np.trace(run_mats, axis1=1, axis2=2)
    local_frac = np.where(
        acc_total == 0.0,
        1.0,
        traces / np.where(acc_total == 0.0, 1.0, acc_total),
    )
    counts = run_mats.sum(axis=1)
    counts_mean = counts.mean(axis=1)
    imbalance = np.where(
        counts_mean == 0.0,
        0.0,
        counts.std(axis=1) / np.where(counts_mean == 0.0, 1.0, counts_mean),
    )
    if run_rho_l.shape[1]:
        max_run_rho_l = run_rho_l.max(axis=1)
    else:
        max_run_rho_l = np.zeros(flat.num_runs)
    world_max_rho_l = rho_l.max(axis=1) if rho_l.shape[1] else np.zeros(num_worlds)
    r = 0
    for lane in lanes:
        stepper = lane.stepper
        epoch = stepper.epoch
        world_rho_c = rho_c[lane.pos]
        world_max = float(world_max_rho_l[lane.pos])
        for run in lane.active_runs:
            t0 = flat.thread_bounds[r]
            t1 = flat.thread_bounds[r + 1]
            ops = ops_flat[t0:t1]
            run.commit_work(ops, now, epoch_seconds)
            observation = run.build_observation(
                access_matrix=run_mats[r],
                controller_rho=world_rho_c,
                max_link_rho=world_max,
                epoch_seconds=epoch_seconds,
                ops_by_node=ops_by_node[r],
            )
            cost = run.context.policy_on_epoch(run, observation)
            run.pending_policy_cost = cost
            migrations = 0
            if run.context.policy_is_dynamic:
                migrations = _migrations_of(run)
            run.records.append(
                EpochRecord(
                    epoch=epoch,
                    ops_done=float(ops.sum()),
                    imbalance=float(imbalance[r]),
                    max_link_rho=float(max_run_rho_l[r]),
                    local_fraction=float(local_frac[r]),
                    policy_cost_seconds=cost,
                    migrations=migrations,
                )
            )
            run.churn_step()
            r += 1
    # Hardware accounting is per-world state: batching it after every
    # lane's runs committed keeps each world's ordering (policies ran,
    # then traffic recorded, then the epoch archived) while paying the
    # numpy overhead once for the whole group.
    record_node_traffic_many(
        [lane.stepper.machine for lane in lanes], totals
    )
    for lane in lanes:
        stepper = lane.stepper
        stepper.machine.end_epoch()
        stepper.latm = latm[lane.pos]
        stepper.epoch = stepper.epoch + 1


def run_worlds(
    worlds: Sequence[World],
    max_epochs: int = DEFAULT_MAX_EPOCHS,
    solver_epsilon: Optional[float] = SOLVER_EPSILON,
) -> List[List[RunResult]]:
    """Simulate compatible worlds together; one result list per world.

    Bit-identical to calling :func:`~repro.sim.engine.run_world` on each
    world alone. Falls back to exactly that under
    :func:`scalar_multirun`, under an active observability session (per-
    world trace/metric ordering), or for a single world.
    """
    worlds = list(worlds)
    if not worlds:
        return []
    if not multirun_enabled() or obs.enabled() or len(worlds) == 1:
        return [
            run_world(w, max_epochs=max_epochs, solver_epsilon=solver_epsilon)
            for w in worlds
        ]
    _check_compatible(worlds)
    steppers = [
        EpochStepper(world, solver_epsilon=solver_epsilon) for world in worlds
    ]
    for stepper in steppers:
        stepper.initialize()
    solver = steppers[0].solver
    epoch_seconds = worlds[0].epoch_seconds
    results: List[Optional[List[RunResult]]] = [None] * len(worlds)
    live = list(range(len(worlds)))
    gather_cache: dict = {}
    now = 0.0
    while live:
        lanes: List[_Lane] = []
        still: List[int] = []
        for index in live:
            stepper = steppers[index]
            if stepper.epoch >= max_epochs:
                results[index] = stepper.finish(now)
                continue
            # Scalar order: hooks fire before the active-runs check, and
            # a world with nothing to run exits *without* consuming the
            # epoch — finish() sees the same clock the scalar loop would.
            for hook in stepper.world.epoch_hooks.get(stepper.epoch, ()):
                hook(stepper.world)
            active = [run for run in stepper.world.runs if not run.finished]
            if not active:
                results[index] = stepper.finish(now)
                continue
            lanes.append(
                _Lane(
                    pos=len(lanes),
                    stepper=stepper,
                    active_runs=active,
                    dests=[
                        run.destination_matrix(solver.num_nodes)
                        for run in active
                    ],
                )
            )
            still.append(index)
        if not lanes:
            break
        _step_lanes(
            lanes, solver, epoch_seconds, now, solver_epsilon, gather_cache
        )
        now += epoch_seconds
        live = still
    return results  # type: ignore[return-value]
