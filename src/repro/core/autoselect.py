"""Automatic NUMA policy selection — the paper's open problem (section 7).

"Finally, automatically selecting the most efficient NUMA policy in an
hypervisor or in an operating system remains an open subject."

Two selectors are provided:

* :class:`ProbingSelector` — run the application briefly under every
  candidate policy (a few epochs each) and keep the one with the highest
  operation throughput. Exhaustive and workload-agnostic, but pays the
  probing time.
* :class:`CounterHeuristicSelector` — the paper's own analysis (section
  3.5.2) turned into a decision procedure: probe *first-touch only*,
  read the hardware counters, classify the application by its access
  imbalance, and apply the class rule:

  - **low** imbalance  -> first-touch (locality is already right);
  - **moderate**       -> first-touch / Carrefour;
  - **high**           -> round-4K / Carrefour;

  with two hypervisor-specific overrides: a disk-heavy domain avoids
  first-touch (it would forfeit the passthrough driver, section 4.4.1),
  and a page-churning domain avoids first-touch in the hypervisor (every
  realloc faults, section 4.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import classify_imbalance
from repro.core.policies.base import PolicyName, PolicySpec
from repro.sim.results import RunResult

#: Default candidate set: everything a running domain can switch to.
DEFAULT_CANDIDATES: Tuple[PolicySpec, ...] = (
    PolicySpec(PolicyName.FIRST_TOUCH),
    PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True),
    PolicySpec(PolicyName.ROUND_4K),
    PolicySpec(PolicyName.ROUND_4K, carrefour=True),
)

#: Runs an application under a policy for a bounded number of epochs and
#: returns the RunResult (the selectors never see the simulator directly).
ProbeFn = Callable[[PolicySpec, int], RunResult]


@dataclass
class SelectionReport:
    """Outcome of one automatic selection.

    Attributes:
        chosen: the selected policy.
        probes: (policy, throughput ops/s) pairs, in probe order.
        rationale: one-line human-readable justification.
    """

    chosen: PolicySpec
    probes: List[Tuple[PolicySpec, float]] = field(default_factory=list)
    rationale: str = ""


def _throughput(result: RunResult) -> float:
    """Average operation throughput of a (possibly truncated) run."""
    if not result.records:
        return 0.0
    total_ops = sum(r.ops_done for r in result.records)
    return total_ops / max(1, len(result.records))


class ProbingSelector:
    """Pick the policy with the best probed throughput.

    Args:
        probe: executes one bounded probe run.
        probe_epochs: epochs per candidate (enough for Carrefour to act).
        candidates: policies to try.
    """

    def __init__(
        self,
        probe: ProbeFn,
        probe_epochs: int = 6,
        candidates: Sequence[PolicySpec] = DEFAULT_CANDIDATES,
    ):
        self.probe = probe
        self.probe_epochs = probe_epochs
        self.candidates = tuple(candidates)

    def select(self) -> SelectionReport:
        """Probe every candidate; keep the fastest."""
        report = SelectionReport(chosen=self.candidates[0])
        best_rate = -1.0
        for spec in self.candidates:
            result = self.probe(spec, self.probe_epochs)
            rate = _throughput(result)
            report.probes.append((spec, rate))
            if rate > best_rate:
                best_rate = rate
                report.chosen = spec
        report.rationale = (
            f"probed {len(self.candidates)} policies for "
            f"{self.probe_epochs} epochs each; best throughput "
            f"{best_rate:.3g} ops/s"
        )
        return report


class CounterHeuristicSelector:
    """Classify from counters, then apply the section 3.5.2 rule.

    Args:
        probe: executes one bounded probe run.
        probe_epochs: epochs of the single first-touch probe.
        disk_mb_s: the domain's disk rate (observable from the I/O rings).
        churn_per_thread_s: its page release rate (observable from the
            page-event hypercall traffic).
        hypervisor_mode: apply the hypervisor-specific overrides.
    """

    #: Disk rate above which first-touch's passthrough loss dominates.
    DISK_THRESHOLD_MB_S = 50.0
    #: Release rate above which hypervisor first-touch pays too many faults.
    CHURN_THRESHOLD_PER_S = 5000.0
    #: Safety margin on the low/moderate boundary: a probe landing close
    #: to it gets Carrefour anyway — the paper measures Carrefour within
    #: 1-2% of the best policy for low applications, so erring toward it
    #: is cheap, while missing a moderate application is not.
    CLASS_MARGIN = 0.12

    def __init__(
        self,
        probe: ProbeFn,
        probe_epochs: int = 3,
        disk_mb_s: float = 0.0,
        churn_per_thread_s: float = 0.0,
        hypervisor_mode: bool = True,
    ):
        self.probe = probe
        self.probe_epochs = probe_epochs
        self.disk_mb_s = disk_mb_s
        self.churn_per_thread_s = churn_per_thread_s
        self.hypervisor_mode = hypervisor_mode

    def select(self) -> SelectionReport:
        """One first-touch probe, one classification, one rule."""
        from repro.analysis.metrics import LOW_THRESHOLD

        ft = PolicySpec(PolicyName.FIRST_TOUCH)
        result = self.probe(ft, self.probe_epochs)
        imbalance = result.mean_imbalance
        klass = classify_imbalance(imbalance)
        if klass == "low" and imbalance > LOW_THRESHOLD * (1.0 - self.CLASS_MARGIN):
            klass = "moderate"
        if klass == "low":
            chosen = PolicySpec(PolicyName.FIRST_TOUCH)
        elif klass == "moderate":
            chosen = PolicySpec(PolicyName.FIRST_TOUCH, carrefour=True)
        else:
            chosen = PolicySpec(PolicyName.ROUND_4K, carrefour=True)
        rationale = (
            f"first-touch imbalance {imbalance * 100:.0f}% -> class "
            f"'{klass}'"
        )
        if self.hypervisor_mode and chosen.base is PolicyName.FIRST_TOUCH:
            if self.disk_mb_s > self.DISK_THRESHOLD_MB_S:
                chosen = PolicySpec(PolicyName.ROUND_4K, chosen.carrefour)
                rationale += (
                    f"; disk {self.disk_mb_s:.0f} MB/s forbids first-touch "
                    "(would forfeit the passthrough driver)"
                )
            elif self.churn_per_thread_s > self.CHURN_THRESHOLD_PER_S:
                chosen = PolicySpec(PolicyName.ROUND_4K, chosen.carrefour)
                rationale += (
                    f"; {self.churn_per_thread_s:.0f} releases/s/thread "
                    "forbids hypervisor first-touch (refault cost)"
                )
        report = SelectionReport(chosen=chosen, rationale=rationale)
        report.probes.append((ft, _throughput(result)))
        return report


def make_xen_probe(app, env_factory=None) -> ProbeFn:
    """Build a ProbeFn running ``app`` in a fresh single-VM Xen world.

    Args:
        app: the application to probe.
        env_factory: optional zero-arg callable producing the
            :class:`~repro.sim.environment.XenEnvironment` to probe in.
    """
    from repro.sim.engine import run_app
    from repro.sim.environment import VmSpec, XenEnvironment

    def probe(spec: PolicySpec, epochs: int) -> RunResult:
        env = env_factory() if env_factory is not None else XenEnvironment()
        return run_app(env, VmSpec(app=app, policy=spec), max_epochs=epochs)

    return probe
