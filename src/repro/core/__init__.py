"""The paper's contribution: the NUMA policy interface and the policies.

Two interfaces (paper Figure 3):

* the **internal interface** (:class:`repro.core.interface.InternalInterface`)
  lets a NUMA policy map a guest-physical page to a NUMA node and migrate a
  page to a new node, through the hypervisor page table;
* the **external interface** (:class:`repro.core.interface.ExternalInterface`)
  lets the guest select a policy and report batched page alloc/release
  events — the two new hypercalls.
"""

from repro.core.interface import InternalInterface, ExternalInterface
from repro.core.page_queue import (
    PageOp,
    PageEvent,
    PartitionedPageQueue,
    replay_page_events,
)
from repro.core.policies import (
    PolicyName,
    NumaPolicy,
    Round1GPolicy,
    Round4KPolicy,
    FirstTouchPolicy,
    CarrefourPolicy,
    make_policy,
)
from repro.core.policy_manager import PolicyManager

__all__ = [
    "InternalInterface",
    "ExternalInterface",
    "PageOp",
    "PageEvent",
    "PartitionedPageQueue",
    "replay_page_events",
    "PolicyName",
    "NumaPolicy",
    "Round1GPolicy",
    "Round4KPolicy",
    "FirstTouchPolicy",
    "CarrefourPolicy",
    "make_policy",
    "PolicyManager",
]
