"""Global switch for the vectorized page path.

The page path (P2M, page-event queues, segment touch loops, Carrefour
decision filtering) has two implementations with identical observable
behaviour: the scalar per-page loops the model was written with, and
NumPy batch operations over the same state. The batch entry points all
consult :func:`vectorized` and fall back to the scalar loops when it is
off, which is how the perfbench oracle (``perfbench/oracle.py``) times
the old path and how the parity tests drive both sides.

Vectorization is on by default; it is an implementation detail, not a
modelling knob, which is why it lives here rather than on ``SimConfig``
(it must never reach a cache key). The switch lives on a module-level
holder object (not a rebound module global), so flipping it is an
attribute write the dataflow lint can see is confined to one object.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class _BatchMode:
    """Holds the process-wide fast-path switch."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


_MODE = _BatchMode()


def vectorized() -> bool:
    """True when batch entry points may take the NumPy fast path."""
    return _MODE.enabled


def set_vectorized(on: bool) -> None:
    """Flip the fast path globally (the oracle turns it off)."""
    _MODE.enabled = bool(on)


@contextmanager
def scalar_mode() -> Iterator[None]:
    """Run a block with the vectorized page path disabled."""
    previous = _MODE.enabled
    set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)
