"""Global switch for the vectorized page path.

The page path (P2M, page-event queues, segment touch loops, Carrefour
decision filtering) has two implementations with identical observable
behaviour: the scalar per-page loops the model was written with, and
NumPy batch operations over the same state. The batch entry points all
consult :func:`vectorized` and fall back to the scalar loops when it is
off, which is how the perfbench oracle (``perfbench/oracle.py``) times
the old path and how the parity tests drive both sides.

Vectorization is on by default; it is an implementation detail, not a
modelling knob, which is why it lives here rather than on ``SimConfig``
(it must never reach a cache key).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_VECTORIZED = True


def vectorized() -> bool:
    """True when batch entry points may take the NumPy fast path."""
    return _VECTORIZED


def set_vectorized(on: bool) -> None:
    """Flip the fast path globally (the oracle turns it off)."""
    global _VECTORIZED
    _VECTORIZED = bool(on)


@contextmanager
def scalar_mode() -> Iterator[None]:
    """Run a block with the vectorized page path disabled."""
    previous = _VECTORIZED
    set_vectorized(False)
    try:
        yield
    finally:
        set_vectorized(previous)
