"""The two interfaces between NUMA policies, hypervisor and guest.

Paper Figure 3 splits the world in two:

* the **internal interface** is how a policy manipulates memory *inside*
  the hypervisor — two functions (section 4.1):

  1. map the physical page of a virtual machine to a machine page of a
     chosen NUMA node (``map_page``);
  2. migrate a physical page to a new NUMA node (``migrate_page``): write
     protect the entry, copy the frame, remap, free the old frame.

* the **external interface** is how a policy communicates with the *guest*
  — two hypercalls (section 4.2):

  1. select/switch the NUMA policy of the virtual machine
     (``NUMA_SET_POLICY``);
  2. report a queue of recently allocated and released physical pages
     (``NUMA_PAGE_EVENTS``), needed by first-touch to trap first accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.core import batch
from repro.core.page_queue import PageEventBatch
from repro.errors import P2MError
from repro.hardware.machine import Machine
from repro.hypervisor.allocator import XenHeapAllocator
from repro.hypervisor.domain import Domain
from repro.hypervisor.hypercalls import Hypercall, HypercallTable


@dataclass
class MigrationRecord:
    """Bookkeeping for one completed page migration."""

    domain_id: int
    gpfn: int
    src_node: int
    dst_node: int


class InternalInterface:
    """Policy-side handle on the hypervisor's memory machinery.

    All placement goes through the hypervisor page table: the guest keeps
    mapping virtual pages to whatever physical pages it likes; the policy
    maps/migrates those *physical* pages onto machine frames of the nodes
    it chooses (paper section 4.1).

    Args:
        machine: the hardware (frame allocation, node lookup, copy cost).
        allocator: the Xen heap.
        page_copy_seconds: cost of copying one (simulated) page during a
            migration; derived from the controller bandwidth when omitted.
    """

    def __init__(
        self,
        machine: Machine,
        allocator: XenHeapAllocator,
        page_copy_seconds: Optional[float] = None,
    ):
        self.machine = machine
        self.allocator = allocator
        if page_copy_seconds is None:
            # One read + one write of the page through a controller.
            bw = machine.topology.memory_controller_gib_s * (1 << 30)
            page_copy_seconds = 2.0 * machine.config.page_bytes / bw
        self.page_copy_seconds = page_copy_seconds
        self.migration_log: List[MigrationRecord] = []
        #: Seconds spent copying pages (charged to the run by the engine).
        self.migration_seconds = 0.0

    # ------------------------------------------------------------------
    # Function 1: map a physical page to a NUMA node

    def map_page(self, domain: Domain, gpfn: int, node: int) -> int:
        """Back ``gpfn`` with a fresh frame on ``node``; returns the mfn.

        The entry must not currently be valid (use :meth:`migrate_page` to
        move an in-use page).
        """
        if domain.p2m.is_valid(gpfn):
            raise P2MError(f"gpfn {gpfn:#x} is already mapped; migrate instead")
        mfn = self.allocator.alloc_page_on(node)
        domain.p2m.set_entry(gpfn, mfn)
        return mfn

    def invalidate_page(self, domain: Domain, gpfn: int) -> bool:
        """Invalidate ``gpfn`` and return its frame to the heap.

        This is the building block of first-touch (section 4.2.3): the next
        guest access faults into the hypervisor. Returns False if the entry
        was already invalid (e.g. a double release).
        """
        mfn = domain.p2m.invalidate(gpfn)
        if mfn is None:
            return False
        self.allocator.free_page(mfn)
        return True

    def invalidate_pages(self, domain: Domain, gpfns: Sequence[int]) -> int:
        """Bulk :meth:`invalidate_page` over a gpfn array.

        Returns how many entries were actually invalidated (already
        invalid entries are skipped, exactly like the scalar loop). Falls
        back to the per-page loop when a sanitizer is attached so traps
        keep their scalar ordering.
        """
        if domain.p2m.sanitizer is not None or not batch.vectorized():
            return sum(
                1
                for gpfn in np.asarray(gpfns, dtype=np.int64).tolist()
                if self.invalidate_page(domain, gpfn)
            )
        _, mfns = domain.p2m.invalidate_many(gpfns)
        if mfns.size:
            self.allocator.free_pages(mfns)
        return int(mfns.size)

    # ------------------------------------------------------------------
    # Whole-domain population (map_page applied wholesale): the static
    # boot-time policies use these so they never touch the heap directly.

    def populate_round_1g(self, domain: Domain) -> None:
        """Eagerly back the domain in 1 GiB regions (Xen's default)."""
        self.allocator.populate_round_1g(domain)

    def populate_round_4k(self, domain: Domain) -> None:
        """Eagerly back the domain page-by-page round-robin."""
        self.allocator.populate_round_4k(domain)

    def populate_empty(self, domain: Domain) -> None:
        """Leave the domain unmapped so every first access faults."""
        self.allocator.populate_empty(domain)

    # ------------------------------------------------------------------
    # Function 2: migrate a physical page to a new NUMA node

    def migrate_page(self, domain: Domain, gpfn: int, dst_node: int) -> bool:
        """Move the frame backing ``gpfn`` to ``dst_node``.

        Sequence (paper section 4.1): write-protect the entry so concurrent
        guest writes trap, copy the page, update the entry, free the old
        frame. Returns False when the page cannot or need not move
        (invalid entry, already on the target node, or allocation failure).
        """
        entry = domain.p2m.lookup(gpfn)
        if entry is None or not entry.valid:
            return False
        src_node = self.machine.node_of_frame(entry.mfn)
        if src_node == dst_node:
            return False
        new_mfn = self.machine.memory.alloc_frames(dst_node, 1)
        if new_mfn is None:
            return False
        domain.p2m.write_protect(gpfn)
        # The copy happens while the entry is read-only; we only account
        # its duration.
        self.migration_seconds += self.page_copy_seconds
        old_mfn = domain.p2m.remap(gpfn, new_mfn)
        self.allocator.free_page(old_mfn)
        self.migration_log.append(
            MigrationRecord(domain.domain_id, gpfn, src_node, dst_node)
        )
        return True

    # ------------------------------------------------------------------
    # Queries

    def node_of_gpfn(self, domain: Domain, gpfn: int) -> Optional[int]:
        """NUMA node currently backing ``gpfn`` (None if unmapped/invalid)."""
        entry = domain.p2m.lookup(gpfn)
        if entry is None or not entry.valid:
            return None
        return self.machine.node_of_frame(entry.mfn)

    def nodes_of_gpfns(self, domain: Domain, gpfns) -> Optional[np.ndarray]:
        """Batch :meth:`node_of_gpfn`: node per gpfn, -1 where unmapped.

        Returns None when the domain's p2m has no frame geometry attached
        (callers then fall back to per-page lookups).
        """
        if domain.p2m.frames_per_node is None:
            return None
        return domain.p2m.nodes_of(gpfns)

    def take_migration_seconds(self) -> float:
        """Return and reset the accumulated migration copy time."""
        seconds, self.migration_seconds = self.migration_seconds, 0.0
        return seconds


class ExternalInterface:
    """Guest-side stub of the two new hypercalls.

    The guest kernel (our :mod:`repro.guest.pv_patch`) holds one of these;
    calls go through the hypervisor's hypercall table exactly like any
    other hypercall, and their cost is accounted by the cost model.

    Args:
        hypercalls: the hypervisor's dispatch table.
        domain_id: the calling domain.
    """

    def __init__(self, hypercalls: HypercallTable, domain_id: int):
        self.hypercalls = hypercalls
        self.domain_id = domain_id

    def set_policy(
        self,
        policy: str,
        carrefour: Optional[bool] = None,
        vcpu_id: int = 0,
    ) -> Any:
        """Select the domain's NUMA policy / toggle Carrefour.

        Mirrors section 4.2.1: the hypercall can switch to first-touch and
        activate/deactivate Carrefour; round-1G is boot-time only.
        """
        args = {"policy": policy, "carrefour": carrefour}
        return self.hypercalls.dispatch(
            Hypercall.NUMA_SET_POLICY, self.domain_id, vcpu_id, args
        )

    def flush_page_events(self, events: Sequence[Any], vcpu_id: int = 0) -> Any:
        """Send one batched queue of page alloc/release events."""
        if not isinstance(events, PageEventBatch):
            events = list(events)
        return self.hypercalls.dispatch(
            Hypercall.NUMA_PAGE_EVENTS, self.domain_id, vcpu_id, events
        )

    def flush_cost(self, num_events: int) -> float:
        """Predicted duration of one flush (used by the queue's lock model)."""
        return self.hypercalls.costs.flush_cost(num_events)
