"""Xen's default NUMA policy: round-robin allocation of 1 GiB regions."""

from __future__ import annotations

from repro.core.interface import InternalInterface
from repro.core.policies.base import NumaPolicy
from repro.hypervisor.domain import Domain
from repro.util import RoundRobin


class Round1GPolicy(NumaPolicy):
    """Eager 1 GiB-granularity placement over the home nodes (section 3.3).

    Xen packs the domain's memory on its home nodes in 1 GiB regions,
    falling back to 2 MiB then 4 KiB on fragmentation; the first and last
    guest-physical GiB are always fragmented (BIOS / I/O windows). The
    policy is static: it never reacts to faults in normal operation (all
    pages are populated eagerly), and a stray fault is served round-robin
    from the home nodes.
    """

    name = "round-1g"

    def __init__(self, internal: InternalInterface):
        self.internal = internal
        self._fallback_rr: dict = {}

    def populate(self, domain: Domain) -> None:
        """Eagerly back the whole guest-physical space, 1 GiB at a time."""
        self.internal.populate_round_1g(domain)

    def on_hypervisor_fault(
        self, domain: Domain, vcpu_id: int, gpfn: int, vcpu_node: int
    ) -> int:
        rr = self._fallback_rr.setdefault(
            domain.domain_id, RoundRobin(domain.home_nodes)
        )
        return rr.next()

    def describe(self) -> str:
        return "round-1g: eager 1 GiB regions round-robin over home nodes"
