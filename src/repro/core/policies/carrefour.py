"""Carrefour as a hypervisor NUMA policy, stacked on a static base policy.

The paper evaluates "first-touch / Carrefour" and "round-4K / Carrefour":
the static base decides initial placement, Carrefour then migrates hot
pages each epoch. The engine's system component lives in the hypervisor
and migrates pages through the internal interface; the user component
(conceptually a dom0 process) sends command batches through the
``CARREFOUR_CONTROL`` hypercall when a hypercall channel is provided.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.carrefour.engine import (
    CarrefourConfig,
    CarrefourEngine,
    SystemComponent,
)
from repro.carrefour.heuristics import PageDecision
from repro.core.interface import InternalInterface
from repro.core.page_queue import PageEvent
from repro.core.policies.base import EpochObservation, NumaPolicy
from repro.hypervisor.domain import Domain


class CarrefourPolicy(NumaPolicy):
    """Dynamic page migration on top of a static base policy.

    Args:
        base: the static policy providing initial placement and fault
            handling (round-4K or first-touch; never round-1G).
        internal: the hypervisor-side interface used for migrations.
        config: Carrefour thresholds.
        rng: deterministic randomness for the interleave heuristic.
        command_channel: optional callable carrying decision batches — the
            policy manager wires this to the CARREFOUR_CONTROL hypercall.
    """

    def __init__(
        self,
        base: NumaPolicy,
        internal: InternalInterface,
        config: CarrefourConfig = CarrefourConfig(),
        rng: Optional[np.random.Generator] = None,
        command_channel=None,
    ):
        self.base = base
        self.internal = internal
        self.name = f"{base.name}/carrefour"
        self._current_domain: Optional[Domain] = None
        system = SystemComponent(
            counters=internal.machine.counters,
            placement=self._placement,
            apply_fn=self._apply_decision,
            placement_many=self._placement_many,
        )
        self.engine = CarrefourEngine(
            system=system,
            config=config,
            rng=rng or np.random.default_rng(internal.machine.config.rng_seed),
            command_channel=command_channel,
        )

    # ------------------------------------------------------------------
    # Static behaviour delegates to the base policy

    @property
    def is_dynamic(self) -> bool:
        return True

    @property
    def wants_page_events(self) -> bool:
        return self.base.wants_page_events

    @property
    def requires_iommu_disabled(self) -> bool:
        return self.base.requires_iommu_disabled

    def populate(self, domain: Domain) -> None:
        self.base.populate(domain)

    def on_hypervisor_fault(
        self, domain: Domain, vcpu_id: int, gpfn: int, vcpu_node: int
    ) -> int:
        return self.base.on_hypervisor_fault(domain, vcpu_id, gpfn, vcpu_node)

    def on_page_events(
        self, domain: Domain, events: Sequence[PageEvent]
    ) -> Tuple[int, int]:
        return self.base.on_page_events(domain, events)

    # ------------------------------------------------------------------
    # Dynamic behaviour

    def on_epoch(self, domain: Domain, observation: EpochObservation) -> float:
        """Run one Carrefour iteration; returns the overhead in seconds."""
        self._current_domain = domain
        result = self.engine.run_iteration(observation)
        cost = self.engine.iteration_cost_seconds(result)
        cost += self.internal.take_migration_seconds()
        return cost

    def apply_commands(self, decisions: Sequence[PageDecision]) -> int:
        """Entry point for the CARREFOUR_CONTROL hypercall handler."""
        return self.engine.system.apply(decisions)

    def shutdown(self) -> None:
        """Release the performance counters."""
        self.engine.shutdown()

    def describe(self) -> str:
        return f"carrefour on top of {self.base.name}"

    # ------------------------------------------------------------------
    # System component callbacks

    def _placement(self, page: int) -> Optional[int]:
        if self._current_domain is None:
            return None
        return self.internal.node_of_gpfn(self._current_domain, page)

    def _placement_many(self, pages) -> Optional[np.ndarray]:
        if self._current_domain is None:
            return None
        return self.internal.nodes_of_gpfns(self._current_domain, pages)

    def _apply_decision(self, decision: PageDecision) -> bool:
        if self._current_domain is None:
            return False
        # The port discards replication (section 3.4): treat a replicate
        # decision as a no-op if one slips through with replication off.
        from repro.carrefour.heuristics import Action

        if decision.action is Action.REPLICATE:
            return False
        return self.internal.migrate_page(
            self._current_domain, decision.page, decision.dst_node
        )
