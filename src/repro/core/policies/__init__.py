"""The four NUMA policies of the paper, implemented on the interface.

* :class:`Round1GPolicy` — Xen's default: eager allocation in 1 GiB regions
  round-robin over the home nodes (section 3.3).
* :class:`Round4KPolicy` — static 4 KiB round-robin (section 3.2); the boot
  default of our modified Xen (section 4.2.1).
* :class:`FirstTouchPolicy` — allocate on the first toucher's node, driven
  by the page-event hypercall (sections 3.1, 4.2.3).
* :class:`CarrefourPolicy` — dynamic migration/interleave on top of a
  static base policy, ported into the hypervisor (sections 3.4, 4.3).
"""

from repro.core.policies.base import (
    EpochObservation,
    NumaPolicy,
    PolicyName,
    PolicySpec,
)
from repro.core.policies.round1g import Round1GPolicy
from repro.core.policies.round4k import Round4KPolicy
from repro.core.policies.first_touch import FirstTouchPolicy
from repro.core.policies.carrefour import CarrefourPolicy
from repro.core.policies.factory import make_policy

__all__ = [
    "EpochObservation",
    "NumaPolicy",
    "PolicyName",
    "PolicySpec",
    "Round1GPolicy",
    "Round4KPolicy",
    "FirstTouchPolicy",
    "CarrefourPolicy",
    "make_policy",
]
