"""Construct policy objects from a :class:`PolicySpec`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.carrefour.engine import CarrefourConfig
from repro.core.interface import InternalInterface
from repro.core.policies.base import NumaPolicy, PolicyName, PolicySpec
from repro.core.policies.carrefour import CarrefourPolicy
from repro.core.policies.first_touch import FirstTouchPolicy
from repro.core.policies.round1g import Round1GPolicy
from repro.core.policies.round4k import Round4KPolicy
from repro.errors import PolicyError


def make_policy(
    spec: PolicySpec,
    internal: InternalInterface,
    first_touch_lazy: bool = True,
    carrefour_config: Optional[CarrefourConfig] = None,
    rng: Optional[np.random.Generator] = None,
    command_channel=None,
) -> NumaPolicy:
    """Build the policy object for ``spec``.

    Args:
        spec: base policy + Carrefour flag.
        internal: the hypervisor-side interface.
        first_touch_lazy: whether a first-touch domain starts unmapped
            (boot-time first-touch) or keeps its current mapping (runtime
            switch).
        carrefour_config: thresholds for the Carrefour engine.
        rng: randomness for the interleave heuristic.
        command_channel: decision transport (the CARREFOUR_CONTROL path).
    """
    if spec.base is PolicyName.ROUND_1G:
        base: NumaPolicy = Round1GPolicy(internal)
    elif spec.base is PolicyName.ROUND_4K:
        base = Round4KPolicy(internal)
    elif spec.base is PolicyName.FIRST_TOUCH:
        base = FirstTouchPolicy(internal, populate_lazily=first_touch_lazy)
    else:  # pragma: no cover - exhaustive over the enum
        raise PolicyError(f"unknown base policy {spec.base!r}")
    if not spec.carrefour:
        return base
    return CarrefourPolicy(
        base=base,
        internal=internal,
        config=carrefour_config or CarrefourConfig(),
        rng=rng,
        command_channel=command_channel,
    )
