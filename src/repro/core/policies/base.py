"""NUMA policy base class, policy names and the per-epoch observation."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.page_queue import PageEvent
from repro.errors import PolicyError
from repro.hardware.counters import HotPageSample
from repro.hypervisor.domain import Domain


class PolicyName(str, enum.Enum):
    """The static placement policies studied in the paper."""

    ROUND_1G = "round-1g"
    ROUND_4K = "round-4k"
    FIRST_TOUCH = "first-touch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PolicySpec:
    """A full policy selection: a static base, optionally plus Carrefour.

    The paper evaluates round-1g, round-4k, first-touch,
    round-4k/carrefour and first-touch/carrefour (Carrefour never runs on
    top of round-1g).
    """

    base: PolicyName
    carrefour: bool = False

    @classmethod
    def parse(cls, text: str) -> "PolicySpec":
        """Parse ``"first-touch/carrefour"``-style policy strings."""
        parts = [p.strip().lower() for p in text.split("/") if p.strip()]
        if not parts:
            raise PolicyError("empty policy string")
        carrefour = False
        if parts[-1] == "carrefour":
            carrefour = True
            parts = parts[:-1]
        if len(parts) != 1:
            raise PolicyError(f"cannot parse policy {text!r}")
        try:
            base = PolicyName(parts[0])
        except ValueError:
            raise PolicyError(f"unknown base policy {parts[0]!r}") from None
        if carrefour and base is PolicyName.ROUND_1G:
            raise PolicyError("Carrefour does not run on top of round-1g")
        return cls(base=base, carrefour=carrefour)

    @property
    def label(self) -> str:
        """Human-readable label ("First-Touch / Carrefour" style)."""
        names = {
            PolicyName.ROUND_1G: "Round-1G",
            PolicyName.ROUND_4K: "Round-4K",
            PolicyName.FIRST_TOUCH: "First-Touch",
        }
        text = names[self.base]
        if self.carrefour:
            text += " / Carrefour"
        return text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


@dataclass
class EpochObservation:
    """What the hardware counters showed during one epoch.

    Built by the simulation engine and fed to dynamic policies — this is
    the information real Carrefour gets from IBS sampling and the
    northbridge counters.

    Attributes:
        epoch_seconds: epoch length.
        access_matrix: accesses[src_node, dst_node] this epoch.
        controller_rho: per-node memory controller utilisation.
        max_link_rho: utilisation of the most loaded interconnect link.
        hot_pages: sampled hot pages with per-node access profiles
            (page ids are gpfns in hypervisor mode).
    """

    epoch_seconds: float
    access_matrix: np.ndarray
    controller_rho: np.ndarray
    max_link_rho: float
    hot_pages: List[HotPageSample] = field(default_factory=list)

    @property
    def total_accesses(self) -> float:
        return float(self.access_matrix.sum())

    @property
    def local_fraction(self) -> float:
        total = self.total_accesses
        if total == 0:
            return 1.0
        return float(np.trace(self.access_matrix) / total)

    @property
    def imbalance(self) -> float:
        """Relative std-dev of per-node access counts (Table 1 metric)."""
        counts = self.access_matrix.sum(axis=0)
        mean = counts.mean()
        if mean == 0:
            return 0.0
        return float(counts.std() / mean)


class NumaPolicy(abc.ABC):
    """A hypervisor-level NUMA placement policy.

    Lifecycle:

    * :meth:`populate` runs once at domain build and decides the initial
      guest-physical -> machine mapping (or leaves it to faults);
    * :meth:`on_hypervisor_fault` answers "which node?" for a faulting
      page;
    * :meth:`on_page_events` receives flushed alloc/release queues (only
      called when :attr:`wants_page_events` is True);
    * :meth:`on_epoch` lets dynamic policies act on counter observations;
      it returns the seconds of overhead the action cost (migration
      copies, engine time).
    """

    #: Policy identifier used in hypercalls and reports.
    name: str = "abstract"

    @property
    def is_dynamic(self) -> bool:
        """True when the policy acts on per-epoch observations."""
        return False

    @property
    def wants_page_events(self) -> bool:
        """True when the guest must report page alloc/release events."""
        return False

    @property
    def requires_iommu_disabled(self) -> bool:
        """True when the policy invalidates entries (breaks the IOMMU)."""
        return False

    @abc.abstractmethod
    def populate(self, domain: Domain) -> None:
        """Build the domain's initial memory placement."""

    @abc.abstractmethod
    def on_hypervisor_fault(
        self, domain: Domain, vcpu_id: int, gpfn: int, vcpu_node: int
    ) -> int:
        """Pick the node backing a faulting page."""

    def on_page_events(
        self, domain: Domain, events: Sequence[PageEvent]
    ) -> Tuple[int, int]:
        """Consume one flushed event queue; returns (invalidated, skipped)."""
        return (0, 0)

    def on_epoch(self, domain: Domain, observation: EpochObservation) -> float:
        """React to one epoch of counter data; returns overhead seconds."""
        return 0.0

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.name
