"""The first-touch policy at the hypervisor level.

First-touch allocates a page on the node of the thread that first accesses
it (section 3.1). In a hypervisor this requires trapping the first access
of a *process* to a page, while the hypervisor only sees *physical* pages
of a VM — the mismatch of Figure 4. The fix (sections 4.2.2-4.2.4):

* the guest reports batched queues of page alloc/release events through
  the second hypercall of the external interface;
* on a release (newest-wins replay), the hypervisor invalidates the p2m
  entry and frees the machine frame;
* the next guest access to that physical page takes a *hypervisor* page
  fault; the fault handler asks this policy, which answers with the node
  of the faulting vCPU.

Because the policy deliberately keeps invalid p2m entries around, it is
incompatible with the IOMMU (section 4.4.1): :attr:`requires_iommu_disabled`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core import batch
from repro.core.interface import InternalInterface
from repro.core.page_queue import (
    PageEvent,
    PageEventBatch,
    newest_wins,
    replay_page_events,
)
from repro.core.policies.base import NumaPolicy
from repro.hypervisor.domain import Domain


class FirstTouchPolicy(NumaPolicy):
    """Hypervisor-level first-touch via the page-event hypercall."""

    name = "first-touch"

    #: The fault answer is always the faulting vCPU's node (see
    #: :meth:`on_hypervisor_fault`), which lets the fault handler resolve
    #: a whole array of init faults from one vCPU in a single batch.
    fault_node_is_vcpu_node = True

    def __init__(self, internal: InternalInterface, populate_lazily: bool = True):
        """
        Args:
            internal: the policy-side hypervisor interface.
            populate_lazily: when True, :meth:`populate` maps nothing and
                every first access faults (a domain *booted* under
                first-touch). When False the domain keeps whatever mapping
                it already has — the paper's common case, where a domain
                boots under round-4K and switches at run time; only pages
                released after the switch migrate to first-touch placement.
        """
        self.internal = internal
        self.populate_lazily = populate_lazily
        #: Pages invalidated through the event queue so far.
        self.pages_invalidated = 0
        #: Release events ignored because the page was re-allocated.
        self.reallocations_skipped = 0

    @property
    def wants_page_events(self) -> bool:
        return True

    @property
    def requires_iommu_disabled(self) -> bool:
        return True

    def populate(self, domain: Domain) -> None:
        """Leave the address space unmapped so first accesses fault."""
        if self.populate_lazily:
            self.internal.populate_empty(domain)
        else:
            domain.built = True

    def on_hypervisor_fault(
        self, domain: Domain, vcpu_id: int, gpfn: int, vcpu_node: int
    ) -> int:
        """First-touch proper: place the page on the faulting vCPU's node."""
        return vcpu_node

    def on_page_events(
        self, domain: Domain, events: Sequence[PageEvent]
    ) -> Tuple[int, int]:
        """Replay one flushed queue, newest entry first (section 4.2.4)."""
        if isinstance(events, PageEventBatch) and batch.vectorized():
            release_gpfns, skipped = newest_wins(events)
            invalidated = self.internal.invalidate_pages(domain, release_gpfns)
        else:
            invalidated, skipped = replay_page_events(
                events, lambda gpfn: self.internal.invalidate_page(domain, gpfn)
            )
        self.pages_invalidated += invalidated
        self.reallocations_skipped += skipped
        return invalidated, skipped

    def describe(self) -> str:
        return (
            "first-touch: invalidate released pages, place faulting pages "
            "on the toucher's node"
        )
