"""The round-4K policy: static page-granularity round-robin."""

from __future__ import annotations

from repro.core.interface import InternalInterface
from repro.core.policies.base import NumaPolicy
from repro.hypervisor.domain import Domain
from repro.util import RoundRobin


class Round4KPolicy(NumaPolicy):
    """Static 4 KiB round-robin over the home nodes (section 3.2).

    Balances load on all memory controllers at the price of many remote
    accesses. In our modified Xen this is the *boot default* of every
    domain (section 4.2.1); it is implemented with the internal interface
    by statically allocating pages round-robin at domain creation
    (section 4.3).
    """

    name = "round-4k"

    def __init__(self, internal: InternalInterface):
        self.internal = internal
        self._fault_rr: dict = {}

    def populate(self, domain: Domain) -> None:
        """Back every guest-physical page, one page per node in turn."""
        self.internal.populate_round_4k(domain)

    def on_hypervisor_fault(
        self, domain: Domain, vcpu_id: int, gpfn: int, vcpu_node: int
    ) -> int:
        # All pages are eagerly populated; a fault only happens for pages
        # invalidated by a previous first-touch phase. Keep the round-robin
        # invariant for those.
        rr = self._fault_rr.setdefault(
            domain.domain_id, RoundRobin(domain.home_nodes)
        )
        return rr.next()

    def describe(self) -> str:
        return "round-4k: static page round-robin over home nodes"
