"""Exception hierarchy shared by all subsystems."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TopologyError(ReproError):
    """The NUMA topology is malformed (disconnected, bad ids, ...)."""


class OutOfMemoryError(ReproError):
    """A machine node or guest allocator ran out of frames."""


class P2MError(ReproError):
    """Invalid operation on the hypervisor page table."""


class DomainError(ReproError):
    """A domain was configured with invalid parameters."""


class SanitizerError(ReproError):
    """The runtime P2M sanitizer caught a protocol violation.

    Raised when instrumented hypervisor state is manipulated outside the
    paper's invariants: double-mapping a machine frame, mapping a freed
    frame, or running the migration protocol (write-protect -> copy ->
    remap, section 4.1) out of order.
    """


class HypercallError(ReproError):
    """A hypercall was malformed or rejected by the hypervisor."""


class GuestFaultError(ReproError):
    """A guest access could not be resolved (bad virtual address, ...)."""


class IommuFault(ReproError):
    """A DMA translation hit an invalid hypervisor page table entry.

    The hardware reports this *asynchronously* (paper section 4.4.1), which
    is why first-touch cannot be combined with the IOMMU: by the time the
    hypervisor learns about the fault, the guest has already failed the I/O.
    """

    def __init__(self, gpfn: int, message: str = ""):
        self.gpfn = gpfn
        super().__init__(message or f"IOMMU translation fault on guest pfn {gpfn:#x}")


class PolicyError(ReproError):
    """Invalid NUMA policy selection or configuration."""


class SchedulerError(ReproError):
    """Invalid vCPU placement or pinning request."""


class WorkloadError(ReproError):
    """Unknown application or invalid workload parameters."""


class RunSpecError(ReproError):
    """A declarative run request is malformed.

    Raised when a :class:`repro.sim.runspec.RunRequest` names an unknown
    environment or policy, combines options the evaluation never runs
    (Carrefour on round-1G, MCS locks in a domU request), or cannot be
    reconstructed from its serialized form.
    """


class MultiRunError(ReproError):
    """A batched multi-run group was built from incompatible worlds.

    The structure-of-arrays driver (:mod:`repro.core.multirun`) shares
    one set of topology constants across every world of a group; worlds
    with different node counts, link layouts, epoch lengths or latency
    parameters cannot be stacked and must execute per request instead.
    """


class ObsError(ReproError):
    """Invalid use of the observability layer.

    Raised on nested :func:`repro.obs.session` activations and on trace
    files that do not conform to the trace schema when a CLI command
    requires one.
    """


class ExperimentError(ReproError):
    """An experiment was invoked with arguments it does not support.

    The scenario registry uses this to keep experiment signatures honest:
    a scenario that does not run per-application sweeps (Figure 5, the
    microbenchmarks) rejects an ``apps`` restriction instead of silently
    ignoring it."""


class ServeError(ReproError):
    """A serving-layer failure surfaced to a client.

    Carries a stable machine-readable ``code`` (``queue-full``,
    ``shutting-down``, ``timeout``, ``worker-died``, ``bad-request``,
    ``protocol``) alongside the human-readable message, so clients can
    distinguish backpressure rejections from execution failures.
    """

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(message or code)
        self.code = code
