"""Global simulation constants.

The simulator keeps 4 KiB page *semantics* but can coarsen the unit it
tracks: with ``PAGE_SCALE = 256`` one simulated page stands for 256 real
pages (1 MiB), which keeps the paper's largest footprints (~39 GiB, Table 2)
around 40k tracked pages. All mechanisms (p2m entries, page faults, release
queues, migrations) operate on individual simulated pages; unit tests also
run with ``PAGE_SCALE = 1``.
"""

from dataclasses import dataclass

#: Real page size in bytes (x86 small page).
REAL_PAGE_SIZE = 4096

#: Default number of real pages represented by one simulated page.
DEFAULT_PAGE_SCALE = 256


@dataclass(frozen=True)
class SimConfig:
    """Knobs shared across the stack.

    Attributes:
        page_scale: real pages per simulated page.
        epoch_seconds: wall-clock length of one simulation epoch.
        rng_seed: base seed for all stochastic components.
    """

    page_scale: int = DEFAULT_PAGE_SCALE
    epoch_seconds: float = 1.0
    rng_seed: int = 42
    #: Peak-to-average ratio of memory traffic. Applications do not spread
    #: their accesses evenly over an epoch; queueing happens at the bursts.
    #: The engine multiplies measured utilisations by this factor before
    #: feeding them to the latency model (the model still caps at rho_cap,
    #: and the Table 3 microbenchmarks bypass this knob).
    traffic_burstiness: float = 2.0
    #: Model nested-TLB miss costs (the large-page perspective of the
    #: paper's section 7). Off by default: the paper's own evaluation has
    #: no TLB dimension, so the baseline reproduction keeps it out.
    model_tlb: bool = False
    #: Attach the runtime P2M sanitizer (:mod:`repro.lint.sanitizer`) to
    #: every hypervisor booted with this config: double maps, maps of
    #: freed frames and out-of-order migrations raise immediately. The
    #: test suite also enables it globally via
    #: :func:`repro.lint.sanitizer.enable`.
    sanitize_p2m: bool = False

    def result_fields(self) -> dict:
        """The fields that can change simulation *results*, as a dict.

        This is the configuration part of a run's cache identity
        (:meth:`repro.sim.runspec.RunRequest.cache_key`). ``sanitize_p2m``
        is deliberately excluded: the sanitizer only checks invariants —
        it either raises or leaves every number untouched — so toggling it
        must not invalidate stored runs.
        """
        return {
            "page_scale": self.page_scale,
            "epoch_seconds": self.epoch_seconds,
            "rng_seed": self.rng_seed,
            "traffic_burstiness": self.traffic_burstiness,
            "model_tlb": self.model_tlb,
        }

    @property
    def page_bytes(self) -> int:
        """Bytes covered by one simulated page."""
        return REAL_PAGE_SIZE * self.page_scale

    def pages_for_bytes(self, nbytes: float) -> int:
        """Number of simulated pages needed to back ``nbytes`` (at least 1)."""
        return max(1, int(round(nbytes / self.page_bytes)))


DEFAULT_CONFIG = SimConfig()
