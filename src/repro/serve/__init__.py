"""The serving layer: many clients, one store, one drain pipeline.

``python -m repro.serve`` turns the repository's single-process pipeline
into a long-lived server: clients submit
:class:`~repro.sim.runspec.RunRequest` batches over an NDJSON socket
protocol (:mod:`repro.serve.protocol`), the server deduplicates them
against a shared — optionally sharded — run store and against each
other (:mod:`repro.serve.jobs`), and a bounded pool of workers drains
the misses through the existing :class:`~repro.runner.Runner`
(:mod:`repro.serve.workers`), grouping compatible requests from
different clients into structure-of-arrays multi-run executions.
Results stream back per connection as keys resolve; backpressure,
per-attempt timeouts, retry-on-worker-death and drain-on-shutdown live
in :mod:`repro.serve.server`.

Client side, :class:`~repro.serve.client.ClientRunner` duck-types the
runner surface scenarios consume, so
``python -m repro.experiments submit fig2`` prints reports
byte-identical to a local ``run``.
"""

from repro.serve.client import ClientRunner, ServeClient
from repro.serve.jobs import Job, JobQueue
from repro.serve.server import ReproServer, ServeConfig
from repro.serve.workers import (
    ExecutionBackend,
    InlineBackend,
    ProcessBackend,
    WorkerDied,
)

__all__ = [
    "ClientRunner",
    "ExecutionBackend",
    "InlineBackend",
    "Job",
    "JobQueue",
    "ProcessBackend",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "WorkerDied",
]
