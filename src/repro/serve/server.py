"""The asyncio serving layer: admission → dedup → grouped drain → stream.

One :class:`ReproServer` owns four pieces:

* an **admission path** (:meth:`ReproServer.admit`): every submitted
  :class:`~repro.sim.runspec.RunRequest` is keyed, checked against the
  store (hits stream back immediately), deduplicated against queued and
  in-flight work (attach, don't re-execute), and only then enqueued —
  or explicitly rejected when the bounded queue is full;
* a **worker pool** of asyncio tasks draining the queue. Each worker
  takes up to ``batch_worlds`` queued jobs at once — jobs from different
  clients included — and hands them to the execution backend, where the
  existing :class:`~repro.runner.Runner` groups compatible requests into
  one structure-of-arrays multi-run program. Results are published to
  every waiter and written to the durable store from the event loop;
* a **failure policy**: each execution attempt runs under the configured
  per-request timeout; a timeout or a dead worker process recycles the
  backend and requeues the group at the front, up to ``retries`` times,
  after which waiters get a terminal ``failed`` message;
* a **control plane**: NDJSON connections (see
  :mod:`repro.serve.protocol`) with per-connection response streaming in
  resolution order, ``stats``/``metrics`` snapshots of the live
  :mod:`repro.obs` registry, and a graceful shutdown that stops
  admitting, drains every admitted job, and only then stops the workers.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import RunSpecError, ServeError
from repro.obs.trace import build_payload
from repro.runstore.base import RunStore
from repro.runstore.memory import MemoryRunStore
from repro.serve import protocol
from repro.serve.jobs import ATTACHED, CLOSED, FULL, QUEUED, Job, JobQueue
from repro.serve.workers import ExecutionBackend, ProcessBackend, WorkerDied
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest

#: Admission outcomes of :meth:`ReproServer.admit`.
HIT = "hit"
REJECTED = "rejected"


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance.

    Attributes:
        host: bind address.
        port: bind port (0 picks an ephemeral one; ``start`` returns it).
        workers: concurrent drain tasks (and the process-pool width).
        queue_size: max *queued* jobs before admission rejects.
        batch_worlds: max jobs one worker hands to the backend at once —
            the cross-client analogue of ``--batch-worlds``.
        timeout_seconds: per-attempt execution budget for one group
            (None: no timeout).
        retries: re-executions after a timeout or worker death before a
            job fails terminally.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_size: int = 256
    batch_worlds: int = 1
    timeout_seconds: Optional[float] = None
    retries: int = 1


class ServeCounters:
    """The serve layer's observability cells (``serve.*`` names)."""

    __slots__ = (
        "submitted",
        "hits",
        "queued",
        "attached",
        "rejected",
        "executed",
        "failed",
        "retries",
        "timeouts",
        "worker_deaths",
        "streamed",
        "queue_depth",
        "in_flight",
        "connections",
    )

    def __init__(self) -> None:
        reg = obs.registry()
        self.submitted = reg.counter("serve.submitted")
        self.hits = reg.counter("serve.hits")
        self.queued = reg.counter("serve.queued")
        self.attached = reg.counter("serve.attached")
        self.rejected = reg.counter("serve.rejected")
        self.executed = reg.counter("serve.executed")
        self.failed = reg.counter("serve.failed")
        self.retries = reg.counter("serve.retries")
        self.timeouts = reg.counter("serve.timeouts")
        self.worker_deaths = reg.counter("serve.worker_deaths")
        self.streamed = reg.counter("serve.streamed")
        self.queue_depth = reg.gauge("serve.queue_depth")
        self.in_flight = reg.gauge("serve.in_flight")
        self.connections = reg.gauge("serve.connections")

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name).value for name in self.__slots__}


class ReproServer:
    """Admits run requests over NDJSON and drains them through a store."""

    def __init__(
        self,
        store: Optional[RunStore] = None,
        config: Optional[ServeConfig] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.store = store if store is not None else MemoryRunStore()
        self.backend = backend if backend is not None else ProcessBackend(
            self.config.workers
        )
        self.jobs = JobQueue(self.config.queue_size)
        self.counters = ServeCounters()
        self._draining = False
        self._stopped = asyncio.Event()
        self._worker_tasks: List["asyncio.Task[None]"] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._handler_tasks: Set["asyncio.Task[None]"] = set()

    # ------------------------------------------------------------------
    # Lifecycle

    def start_workers(self) -> None:
        """Start the drain tasks (idempotent; needs a running loop)."""
        if self._worker_tasks:
            return
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"serve-worker-{i}")
            for i in range(max(1, self.config.workers))
        ]

    async def start(self) -> Tuple[str, int]:
        """Start workers and the listener; returns the bound address."""
        self.start_workers()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Block until a graceful shutdown completed, then force-close."""
        await self._stopped.wait()
        # Grace period: let connected clients receive the final messages
        # (the shutdown ``bye``) and hang up from their side before the
        # remaining handlers are force-cancelled.
        if self._handler_tasks:
            await asyncio.wait(list(self._handler_tasks), timeout=5.0)
        for task in list(self._handler_tasks):
            task.cancel()
        for writer in list(self._connections):
            writer.close()
        if self._handler_tasks:
            await asyncio.gather(*list(self._handler_tasks), return_exceptions=True)

    async def run(self) -> Tuple[str, int]:
        """``start`` + ``serve_forever`` (the ``__main__`` entry)."""
        address = await self.start()
        await self.serve_forever()
        return address

    async def shutdown(self) -> None:
        """Graceful: stop admitting, drain admitted work, stop workers.

        Every job admitted before the call resolves (or fails
        terminally) and its responses are published *before* the workers
        stop — the drain-before-stop ordering the protocol's ``bye``
        acknowledges. Idempotent; concurrent callers wait for the first.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        await self.jobs.drained()
        self.jobs.close()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        await self.backend.close()
        if self._server is not None:
            await self._server.wait_closed()
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Admission (also the direct, socket-free API the tests drive)

    def admit(
        self, request: RunRequest
    ) -> Tuple[str, object]:
        """Admit one request.

        Returns one of::

            (HIT,      (key, results))   # store hit, results immediate
            (QUEUED,   (key, future))    # new job enqueued
            (ATTACHED, (key, future))    # joined a queued/in-flight job
            (REJECTED, (key, code))      # backpressure or draining

        Futures resolve to ``("ok", results)`` or ``("failed", info)``.
        """
        self.counters.submitted.inc()
        key = request.cache_key()
        if self._draining:
            self.counters.rejected.inc()
            return REJECTED, (key, protocol.ERR_SHUTTING_DOWN)
        cached = self.store.get(key)
        if cached is not None:
            self.counters.hits.inc()
            return HIT, (key, cached)
        status, future = self.jobs.offer(key, request)
        if status == QUEUED:
            self.counters.queued.inc()
            self._update_gauges()
            return QUEUED, (key, future)
        if status == ATTACHED:
            self.counters.attached.inc()
            return ATTACHED, (key, future)
        self.counters.rejected.inc()
        code = (
            protocol.ERR_SHUTTING_DOWN if status == CLOSED else protocol.ERR_QUEUE_FULL
        )
        return REJECTED, (key, code)

    def _update_gauges(self) -> None:
        self.counters.queue_depth.set(self.jobs.depth())
        self.counters.in_flight.set(self.jobs.in_flight())

    # ------------------------------------------------------------------
    # Drain (worker tasks)

    async def _worker_loop(self) -> None:
        while True:
            job = await self.jobs.next_job()
            if job is None:
                return
            group = [job] + self.jobs.take_extra(self.config.batch_worlds - 1)
            self._update_gauges()
            await self._execute_group(group)
            self._update_gauges()

    async def _execute_group(self, group: Sequence[Job]) -> None:
        requests = [job.request for job in group]
        try:
            call = self.backend.execute(requests, self.config.batch_worlds)
            if self.config.timeout_seconds is not None:
                produced = await asyncio.wait_for(call, self.config.timeout_seconds)
            else:
                produced = await call
        except asyncio.TimeoutError:
            self.counters.timeouts.inc()
            await self.backend.reset()
            self._retry_or_fail(group, protocol.ERR_TIMEOUT)
            return
        except WorkerDied:
            self.counters.worker_deaths.inc()
            await self.backend.reset()
            self._retry_or_fail(group, protocol.ERR_WORKER_DIED)
            return
        except asyncio.CancelledError:
            task = asyncio.current_task()
            cancelling = getattr(task, "cancelling", None)
            if cancelling is not None and cancelling() == 0:
                # The executor future was cancelled out from under us (a
                # sibling's timeout recycled the pool before our group
                # started) — the worker *task* itself was not cancelled,
                # so treat it like a worker death and retry.
                self.counters.worker_deaths.inc()
                self._retry_or_fail(group, protocol.ERR_WORKER_DIED)
                return
            raise
        for job, results in zip(group, produced):
            self.store.put(job.key, results, request=job.request)
            self.counters.executed.inc()
            self.jobs.finish(job, results)

    def _retry_or_fail(self, group: Sequence[Job], code: str) -> None:
        # reversed: requeue prepends, so the group keeps its FIFO order.
        for job in reversed(group):
            job.attempts += 1
            if job.attempts <= self.config.retries:
                self.counters.retries.inc()
                self.jobs.requeue(job)
            else:
                self.counters.failed.inc()
                self.jobs.fail(job, code)

    # ------------------------------------------------------------------
    # Introspection

    def stats_counters(self) -> Dict[str, float]:
        counters = self.counters.as_dict()
        store = self.store.stats()
        counters.update(
            {
                "store.hits": store.hits,
                "store.misses": store.misses,
                "store.entries": store.entries,
            }
        )
        return counters

    def summary(self) -> str:
        c = self.counters
        line = (
            f"serve: {c.submitted.value} submitted, {c.hits.value} hits, "
            f"{c.executed.value} executed, {c.rejected.value} rejected"
        )
        if c.retries.value or c.failed.value:
            line += f", {c.retries.value} retried, {c.failed.value} failed"
        return line

    def metrics_payload(self) -> Dict[str, object]:
        """The live obs snapshot in the validated trace-file shape."""
        return build_payload(obs.tracer(), obs.registry())

    # ------------------------------------------------------------------
    # Connection handling

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        self.counters.connections.set(len(self._connections))
        out_queue: "asyncio.Queue[Optional[Dict[str, object]]]" = asyncio.Queue()
        flusher = asyncio.create_task(self._write_outgoing(writer, out_queue))
        responders: Set["asyncio.Task[None]"] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await out_queue.put(
                        protocol.error_message(protocol.ERR_PROTOCOL, "line too long")
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = protocol.decode(line)
                except ServeError as exc:
                    await out_queue.put(protocol.error_message(exc.code, str(exc)))
                    continue
                await self._dispatch(message, out_queue, responders)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            for responder in responders:
                responder.cancel()
            await out_queue.put(None)
            try:
                await flusher
            except (ConnectionError, asyncio.CancelledError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._connections.discard(writer)
            self.counters.connections.set(len(self._connections))
            if task is not None:
                self._handler_tasks.discard(task)

    async def _write_outgoing(
        self,
        writer: asyncio.StreamWriter,
        out_queue: "asyncio.Queue[Optional[Dict[str, object]]]",
    ) -> None:
        while True:
            message = await out_queue.get()
            if message is None:
                return
            writer.write(protocol.encode(message))
            await writer.drain()

    async def _dispatch(
        self,
        message: Dict[str, object],
        out_queue: "asyncio.Queue[Optional[Dict[str, object]]]",
        responders: Set["asyncio.Task[None]"],
    ) -> None:
        op = message.get("op")
        if op == "submit":
            await self._dispatch_submit(message, out_queue, responders)
        elif op == "stats":
            await out_queue.put(
                protocol.stats_message(self.stats_counters(), self.summary())
            )
        elif op == "metrics":
            await out_queue.put(protocol.metrics_message(self.metrics_payload()))
        elif op == "shutdown":
            responder = asyncio.create_task(self._ack_shutdown(out_queue))
            responders.add(responder)
            responder.add_done_callback(responders.discard)
        else:
            await out_queue.put(
                protocol.error_message(protocol.ERR_PROTOCOL, f"unknown op {op!r}")
            )

    async def _dispatch_submit(
        self,
        message: Dict[str, object],
        out_queue: "asyncio.Queue[Optional[Dict[str, object]]]",
        responders: Set["asyncio.Task[None]"],
    ) -> None:
        request_id = protocol.request_id_of(message)
        payload = message.get("request")
        try:
            if not isinstance(payload, dict):
                raise RunSpecError("submit carries no request object")
            request = RunRequest.from_json(payload)
        except RunSpecError as exc:
            self.counters.rejected.inc()
            await out_queue.put(
                protocol.reject_message(request_id, protocol.ERR_BAD_REQUEST, str(exc))
            )
            return
        kind, detail = self.admit(request)
        if kind == HIT:
            key, results = detail
            self.counters.streamed.inc()
            await out_queue.put(
                protocol.result_message(
                    request_id, key, [r.to_json() for r in results], cached=True
                )
            )
        elif kind == REJECTED:
            key, code = detail
            await out_queue.put(protocol.reject_message(request_id, code))
        else:
            key, future = detail
            responder = asyncio.create_task(
                self._respond_when_resolved(request_id, key, future, out_queue)
            )
            responders.add(responder)
            responder.add_done_callback(responders.discard)

    async def _respond_when_resolved(
        self,
        request_id: object,
        key: str,
        future: "asyncio.Future[Tuple[str, object]]",
        out_queue: "asyncio.Queue[Optional[Dict[str, object]]]",
    ) -> None:
        status, payload = await future
        if status == "ok":
            results: List[RunResult] = payload  # type: ignore[assignment]
            self.counters.streamed.inc()
            await out_queue.put(
                protocol.result_message(
                    request_id, key, [r.to_json() for r in results], cached=False
                )
            )
        else:
            await out_queue.put(
                protocol.failed_message(
                    request_id,
                    str(payload),
                    attempts=self.config.retries + 1,
                )
            )

    async def _ack_shutdown(
        self, out_queue: "asyncio.Queue[Optional[Dict[str, object]]]"
    ) -> None:
        await self.shutdown()
        await out_queue.put(protocol.bye_message())
