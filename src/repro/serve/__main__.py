"""Command-line entry point of the serving layer.

Start a server (ephemeral port, address advertised through a ready
file)::

    python -m repro.serve --store .runstore --sharded \\
        --workers 4 --batch-worlds 4 --ready-file serve.json

Clients then resolve scenarios against it with
``python -m repro.experiments submit fig2 --ready-file serve.json`` and
stop it with ``--shutdown`` (graceful: every admitted job drains first).

The whole process runs inside one :func:`repro.obs.session`, so the
``metrics`` protocol op snapshots a live registry — store hit/miss
cells, per-runner execution counters from the worker pool, and the
``serve.*`` admission/drain counters — in the validated trace-payload
shape.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.errors import ReproError
from repro.runstore import open_store
from repro.serve.server import ReproServer, ServeConfig
from repro.serve.workers import InlineBackend, ProcessBackend


def _write_ready_file(path: Path, host: str, port: int) -> None:
    # Staged through a temp file: a polling client must never read a
    # half-written address.
    payload = json.dumps({"host": host, "port": port}, sort_keys=True)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload + "\n")
        os.replace(tmp_name, path)
    finally:
        if os.path.exists(tmp_name):  # the write or rename failed mid-way
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


async def _amain(args: argparse.Namespace) -> int:
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        batch_worlds=args.batch_worlds,
        timeout_seconds=args.timeout,
        retries=args.retries,
    )
    backend = InlineBackend() if args.inline else ProcessBackend(config.workers)
    store = open_store(args.store, sharded=args.sharded)
    server = ReproServer(store=store, config=config, backend=backend)
    host, port = await server.start()
    if args.ready_file:
        _write_ready_file(Path(args.ready_file), host, port)
    print(f"serving on {host}:{port}", flush=True)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(server.shutdown())
            )
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
    await server.serve_forever()
    print(store.stats().summary())
    print(server.summary())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve run requests from many clients through one store.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (default: ephemeral)"
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="run store directory ('memory' or omitted: in-memory)",
    )
    parser.add_argument(
        "--sharded", action="store_true",
        help="shard the on-disk store by cache-key prefix (concurrent writers)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent drain workers (default: 2)",
    )
    parser.add_argument(
        "--queue-size", type=int, default=256, metavar="N",
        help="max queued jobs before admission rejects (default: 256)",
    )
    parser.add_argument(
        "--batch-worlds", type=int, default=1, metavar="K",
        help="group up to K queued misses (across clients) into one "
        "batched multi-run execution",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt execution budget for one group (default: none)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-executions after a timeout/worker death (default: 1)",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the bound {host, port} as JSON once listening",
    )
    parser.add_argument(
        "--inline", action="store_true",
        help="execute in-process threads instead of a process pool "
        "(no timeout isolation; debugging only)",
    )
    args = parser.parse_args(argv)
    try:
        with obs.session():
            return asyncio.run(_amain(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
