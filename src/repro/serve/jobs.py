"""The bounded admission queue: dedup, backpressure, drain.

One :class:`Job` is one *distinct* cache key awaiting execution. Any
number of submissions — from the same client or different ones — attach
to the job as waiter futures, so a key executes at most once no matter
how many clients ask for it while it is queued or in flight (the
cross-client analogue of the runner's per-batch dedup). A job stays in
the ``pending`` index from admission until its results (or its failure)
are published, which is what makes the attach window cover in-flight
execution, not just the queue.

Backpressure is explicit: :meth:`JobQueue.offer` returns ``"full"`` when
the number of *queued* jobs has reached ``maxsize`` — the caller turns
that into a protocol-level rejection rather than an unbounded buffer.
Retries requeue at the front and bypass the bound (a retried job was
admitted once; bouncing it on a full queue would drop work the server
already accepted).

Waiter futures always resolve to a tuple, never an exception:
``("ok", results)`` or ``("failed", error_code)`` — a waiter whose
client disconnected mid-flight is simply never awaited, and tuple
results keep that from warning about unretrieved exceptions.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest

#: Admission outcomes of :meth:`JobQueue.offer`.
QUEUED = "queued"
ATTACHED = "attached"
FULL = "full"
CLOSED = "closed"

WaiterResult = Tuple[str, object]


class Job:
    """One distinct cache key on its way through the queue."""

    __slots__ = ("key", "request", "waiters", "attempts")

    def __init__(self, key: str, request: RunRequest) -> None:
        self.key = key
        self.request = request
        self.waiters: List["asyncio.Future[WaiterResult]"] = []
        self.attempts = 0

    def add_waiter(self) -> "asyncio.Future[WaiterResult]":
        future: "asyncio.Future[WaiterResult]" = (
            asyncio.get_running_loop().create_future()
        )
        self.waiters.append(future)
        return future

    def publish(self, outcome: WaiterResult) -> None:
        for waiter in self.waiters:
            if not waiter.done():
                waiter.set_result(outcome)


class JobQueue:
    """Bounded, deduplicating FIFO of jobs plus the pending index."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(1, int(maxsize))
        self._ready: Deque[Job] = deque()
        self._pending: Dict[str, Job] = {}
        self._wakeup = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = False

    # ------------------------------------------------------------------
    # Admission (connection handlers)

    def offer(
        self, key: str, request: RunRequest
    ) -> Tuple[str, Optional["asyncio.Future[WaiterResult]"]]:
        """Admit ``request`` under ``key``.

        Returns ``(ATTACHED, future)`` when the key is already queued or
        in flight, ``(QUEUED, future)`` when a new job was enqueued,
        ``(FULL, None)`` on backpressure and ``(CLOSED, None)`` once the
        queue stopped admitting.
        """
        job = self._pending.get(key)
        if job is not None:
            return ATTACHED, job.add_waiter()
        if self._closed:
            return CLOSED, None
        if len(self._ready) >= self.maxsize:
            return FULL, None
        job = Job(key, request)
        future = job.add_waiter()
        self._pending[key] = job
        self._ready.append(job)
        self._idle.clear()
        self._wakeup.set()
        return QUEUED, future

    # ------------------------------------------------------------------
    # Draining (worker tasks)

    async def next_job(self) -> Optional[Job]:
        """The next queued job; None once closed and fully drained."""
        while True:
            if self._ready:
                return self._ready.popleft()
            if self._closed:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    def take_extra(self, limit: int) -> List[Job]:
        """Up to ``limit`` more queued jobs, for batched execution."""
        extra: List[Job] = []
        while len(extra) < limit and self._ready:
            extra.append(self._ready.popleft())
        return extra

    def requeue(self, job: Job) -> None:
        """Put a job back at the front for a retry (bypasses the bound)."""
        self._ready.appendleft(job)
        self._wakeup.set()

    def finish(self, job: Job, results: List[RunResult]) -> None:
        """Publish results to every waiter and drop the pending entry."""
        self._forget(job)
        job.publish(("ok", results))

    def fail(self, job: Job, error_code: str) -> None:
        """Publish a terminal failure to every waiter."""
        self._forget(job)
        job.publish(("failed", error_code))

    def _forget(self, job: Job) -> None:
        self._pending.pop(job.key, None)
        if not self._pending:
            self._idle.set()

    # ------------------------------------------------------------------
    # Introspection and lifecycle

    def depth(self) -> int:
        """Jobs queued but not yet picked up by a worker."""
        return len(self._ready)

    def in_flight(self) -> int:
        """Jobs picked up by a worker and not yet published."""
        return len(self._pending) - len(self._ready)

    def pending(self) -> int:
        """Jobs admitted and not yet published (queued + in flight)."""
        return len(self._pending)

    async def drained(self) -> None:
        """Wait until every admitted job has been published."""
        await self._idle.wait()

    def close(self) -> None:
        """Stop admitting; queued jobs still drain, workers then stop."""
        self._closed = True
        self._wakeup.set()

    @property
    def closed(self) -> bool:
        return self._closed
