"""Execution backends: how the serve layer turns misses into results.

A backend executes a *group* of distinct run requests and returns one
result list per request, in request order. Both backends reuse the
existing :class:`~repro.runner.Runner` — handed a private in-memory
store and the server's ``batch_worlds`` — so a group of compatible
requests from *different clients* executes as one structure-of-arrays
program through :mod:`repro.core.multirun`, exactly like a single
``--batch-worlds`` CLI invocation would. The serve layer owns the
durable store; backends stay pure executors (results come back, the
event loop publishes them and writes the store), which is what makes a
worker process dying mid-batch retryable without a half-written store.

:class:`ProcessBackend` is the production backend: a process pool sized
to the worker count, so per-request timeouts have teeth (a hung or dead
worker process surfaces as :class:`WorkerDied`/``TimeoutError`` and
:meth:`ProcessBackend.reset` replaces the pool). :class:`InlineBackend`
executes on the default thread executor — no process boundary, used by
tests and ``--inline`` debugging where determinism matters more than
isolation.
"""

from __future__ import annotations

import abc
import asyncio
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Sequence

from repro.errors import ServeError
from repro.runner.runner import Runner
from repro.runstore.memory import MemoryRunStore
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest


class WorkerDied(ServeError):
    """The execution worker process died under a group."""

    def __init__(self, detail: str = "") -> None:
        super().__init__("worker-died", detail or "execution worker process died")


def execute_group(
    requests: Sequence[RunRequest], batch_worlds: int
) -> List[List[RunResult]]:
    """Execute distinct ``requests``; one result list per request, in order.

    Module-level so the process pool can pickle the reference. The
    private runner gives the group multi-run batching and (defensive)
    same-key dedup; its memory store is discarded with the process —
    the caller owns the durable store.
    """
    runner = Runner(store=MemoryRunStore(), batch_worlds=batch_worlds)
    resolved = runner.resolve(list(requests))
    return [list(resolved.get(request)) for request in requests]


class ExecutionBackend(abc.ABC):
    """Executes request groups on behalf of the serve worker tasks."""

    @abc.abstractmethod
    async def execute(
        self, requests: Sequence[RunRequest], batch_worlds: int
    ) -> List[List[RunResult]]:
        """Run ``requests`` to completion (raises WorkerDied on death)."""

    async def reset(self) -> None:
        """Recover after a death/timeout (default: nothing to recycle)."""

    async def close(self) -> None:
        """Release executor resources on shutdown."""


class ProcessBackend(ExecutionBackend):
    """Executes groups on a replaceable process pool.

    The pool is shared by every serve worker task; ``reset`` abandons it
    (without waiting on hung workers) and starts a fresh one. Groups that
    were in flight on the abandoned pool surface as :class:`WorkerDied`
    and take the server's retry path — a deliberate collateral: after a
    timeout the old pool's state is unknown, and re-executing a pure
    request is always safe.
    """

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max(1, int(max_workers))
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)

    async def execute(
        self, requests: Sequence[RunRequest], batch_worlds: int
    ) -> List[List[RunResult]]:
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._pool, execute_group, list(requests), batch_worlds
            )
        except BrokenProcessPool as exc:
            raise WorkerDied(str(exc)) from exc

    async def reset(self) -> None:
        old = self._pool
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        old.shutdown(wait=False, cancel_futures=True)

    async def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


class InlineBackend(ExecutionBackend):
    """Executes groups on the default thread executor (no isolation).

    Timeouts cannot interrupt a running group here (there is no process
    to abandon) — use it where requests are trusted to terminate: tests,
    ``--inline`` debugging, single-tenant batch jobs.
    """

    async def execute(
        self, requests: Sequence[RunRequest], batch_worlds: int
    ) -> List[List[RunResult]]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, execute_group, list(requests), batch_worlds)
