"""The NDJSON wire protocol between serve clients and the server.

One message per line, UTF-8 JSON with sorted keys. Client → server::

    {"op": "submit", "id": 7, "request": {<RunRequest.to_json()>}}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "shutdown"}

Server → client (streamed as each key resolves, not in submit order)::

    {"ok": true,  "op": "result", "id": 7, "key": "<sha256>",
     "cached": true, "results": [<RunResult.to_json()>, ...]}
    {"ok": false, "op": "reject", "id": 7, "error": "queue-full"}
    {"ok": false, "op": "failed", "id": 7, "error": "timeout", "attempts": 3}
    {"ok": true,  "op": "stats", "counters": {...}, "summary": "server: ..."}
    {"ok": true,  "op": "metrics", "payload": {<obs trace payload>}}
    {"ok": true,  "op": "bye"}

``id`` is client-assigned and only meaningful per connection; the server
echoes it so a client can reassemble out-of-order streams. Responses to
``stats``/``metrics``/``shutdown`` are emitted in request order relative
to each other, interleaved with whatever results resolve in between.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.errors import ServeError

#: Stream-reader line limit. Result payloads for many-epoch runs reach
#: hundreds of KiB; the default 64 KiB asyncio limit would truncate them.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Stable rejection/failure codes (the client switches on these).
ERR_QUEUE_FULL = "queue-full"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_BAD_REQUEST = "bad-request"
ERR_TIMEOUT = "timeout"
ERR_WORKER_DIED = "worker-died"
ERR_PROTOCOL = "protocol"


def encode(message: Dict[str, object]) -> bytes:
    """One wire line: canonical JSON plus the newline terminator."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode(line: bytes) -> Dict[str, object]:
    """Parse one wire line.

    Raises:
        ServeError: with code ``protocol`` when the line is not a JSON
            object (a malformed client must get a deterministic error,
            not a stack trace).
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(ERR_PROTOCOL, f"undecodable message: {exc}") from exc
    if not isinstance(message, dict):
        raise ServeError(ERR_PROTOCOL, "message is not a JSON object")
    return message


# ----------------------------------------------------------------------
# Response builders (the single place response shapes are defined)


def result_message(
    request_id: object, key: str, results_json: list, cached: bool
) -> Dict[str, object]:
    return {
        "ok": True,
        "op": "result",
        "id": request_id,
        "key": key,
        "cached": cached,
        "results": results_json,
    }


def reject_message(request_id: object, error: str, detail: str = "") -> Dict[str, object]:
    message: Dict[str, object] = {
        "ok": False,
        "op": "reject",
        "id": request_id,
        "error": error,
    }
    if detail:
        message["detail"] = detail
    return message


def failed_message(request_id: object, error: str, attempts: int) -> Dict[str, object]:
    return {
        "ok": False,
        "op": "failed",
        "id": request_id,
        "error": error,
        "attempts": attempts,
    }


def stats_message(counters: Dict[str, object], summary: str) -> Dict[str, object]:
    return {"ok": True, "op": "stats", "counters": counters, "summary": summary}


def metrics_message(payload: Dict[str, object]) -> Dict[str, object]:
    return {"ok": True, "op": "metrics", "payload": payload}


def bye_message() -> Dict[str, object]:
    return {"ok": True, "op": "bye"}


def error_message(error: str, detail: str = "") -> Dict[str, object]:
    """A connection-level error (no request id to attach it to)."""
    return reject_message(None, error, detail)


def request_id_of(message: Dict[str, object]) -> Optional[object]:
    return message.get("id")
