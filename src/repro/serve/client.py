"""Synchronous serve clients: raw protocol access plus a runner facade.

:class:`ServeClient` speaks the NDJSON protocol over one blocking
socket — submit batches, stats/metrics snapshots, graceful shutdown.
:class:`ClientRunner` wraps a client in the duck-typed surface a
:class:`~repro.runner.runner.ResultSet` drives (``_resolve_into``), so
scenario ``assemble`` hooks — and therefore the printed reports — are
byte-identical whether requests resolve through a local
:class:`~repro.runner.Runner` or over the wire.

The runner facade keeps *client-side* counters. The server's counters
are cumulative across every client it ever served; the summary line a
submission prints must describe that submission alone (tooling greps it
for substrings like ``0 executed``), so hits/executed are counted here
from the ``cached`` flag of each result message.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ServeError
from repro.runner.runner import ResultSet
from repro.serve import protocol
from repro.sim.results import RunResult
from repro.sim.runspec import RunRequest


class ServeClient:
    """One blocking NDJSON connection to a repro serve server."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = None) -> None:
        self.host = host
        self.port = int(port)
        self._sock = socket.create_connection((host, int(port)), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    @classmethod
    def from_ready_file(
        cls, path: Union[str, Path], timeout: Optional[float] = None
    ) -> "ServeClient":
        """Connect to the address a server's ``--ready-file`` advertised."""
        info = json.loads(Path(path).read_text())
        return cls(str(info["host"]), int(info["port"]), timeout=timeout)

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire primitives

    def _send(self, message: Dict[str, object]) -> None:
        self._sock.sendall(protocol.encode(message))

    def _recv(self) -> Dict[str, object]:
        line = self._reader.readline()
        if not line:
            raise ServeError(protocol.ERR_PROTOCOL, "server closed the connection")
        return protocol.decode(line)

    def _await_op(self, op: str) -> Dict[str, object]:
        # This client never leaves submissions outstanding across ops, so
        # the next line must be the matching response.
        message = self._recv()
        if message.get("op") != op:
            raise ServeError(
                protocol.ERR_PROTOCOL, f"expected {op!r}, got {message!r}"
            )
        return message

    # ------------------------------------------------------------------
    # Operations

    def submit_many(self, requests: Sequence[RunRequest]) -> List[Dict[str, object]]:
        """Submit ``requests``; one response per request, in request order.

        All submissions go out before any response is read, so the server
        streams results as keys resolve (out of submit order); responses
        are reassembled by the echoed ``id``.
        """
        for ident, request in enumerate(requests):
            self._send({"op": "submit", "id": ident, "request": request.to_json()})
        responses: List[Optional[Dict[str, object]]] = [None] * len(requests)
        remaining = len(requests)
        while remaining:
            message = self._recv()
            ident = message.get("id")
            if (
                not isinstance(ident, int)
                or not 0 <= ident < len(requests)
                or responses[ident] is not None
            ):
                raise ServeError(
                    protocol.ERR_PROTOCOL, f"unexpected response {message!r}"
                )
            responses[ident] = message
            remaining -= 1
        return responses  # type: ignore[return-value]

    def stats(self) -> Dict[str, object]:
        self._send({"op": "stats"})
        return self._await_op("stats")

    def metrics(self) -> Dict[str, object]:
        """The server's live obs snapshot (a validated trace payload)."""
        self._send({"op": "metrics"})
        message = self._await_op("metrics")
        payload = message.get("payload")
        if not isinstance(payload, dict):
            raise ServeError(protocol.ERR_PROTOCOL, "metrics response has no payload")
        return payload

    def shutdown(self) -> None:
        """Ask for a graceful shutdown; returns once the server said bye
        (every job admitted before this call has been drained)."""
        self._send({"op": "shutdown"})
        self._await_op("bye")


class ClientRunner:
    """The ``Runner`` surface scenarios need, resolved over the wire.

    ``ResultSet`` only ever calls ``_resolve_into``, so handing one of
    these to ``Scenario.run`` executes the whole pipeline — including
    two-stage follow-up resolution — against the server.
    """

    def __init__(self, client: ServeClient) -> None:
        self.client = client
        self.requested = 0
        self.deduplicated = 0
        self.hits = 0
        self.executed = 0

    def resolve(self, requests: Sequence[RunRequest]) -> ResultSet:
        results = ResultSet(self)
        results.resolve(requests)
        return results

    def _resolve_into(
        self, requests: Sequence[RunRequest], out: Dict[str, List[RunResult]]
    ) -> None:
        todo: Dict[str, RunRequest] = {}
        for request in requests:
            self.requested += 1
            key = request.cache_key()
            if key in todo or key in out:
                self.deduplicated += 1
            else:
                todo[key] = request
        if not todo:
            return
        order = list(todo)
        responses = self.client.submit_many([todo[key] for key in order])
        for key, message in zip(order, responses):
            if message.get("op") != "result":
                code = str(message.get("error", protocol.ERR_PROTOCOL))
                raise ServeError(
                    code, f"server did not resolve {key[:12]}…: {code}"
                )
            if message.get("cached"):
                self.hits += 1
            else:
                self.executed += 1
            out[key] = [
                RunResult.from_json(entry) for entry in message.get("results", [])
            ]

    def summary(self) -> str:
        # Shaped like the runner's line but "server:"-prefixed, so report
        # diffing can strip both with one grep each; keep ", N executed"
        # greppable (the serve smoke checks ", 0 executed" on a re-run).
        return (
            f"server: {self.requested} requests, "
            f"{self.deduplicated} duplicates coalesced, "
            f"{self.hits} hits, {self.executed} executed"
        )
