"""Machine memory: per-node frame ranges and an extent-based frame allocator.

The machine address space is statically partitioned into per-node NUMA
regions (paper section 3): node ``n`` owns the contiguous machine frame
range ``[n * frames_per_node, (n+1) * frames_per_node)``. The allocator
tracks free extents per node, which lets the Xen heap allocator above it ask
for *contiguous* runs (1 GiB / 2 MiB regions) and observe fragmentation.

Frame numbers here are *simulated* frames (see :mod:`repro.config`): the
mechanics are 4 KiB-page mechanics, applied to a configurable granularity.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import OutOfMemoryError, TopologyError

Mfn = int  # machine frame number
NodeId = int


@dataclass
class MemoryController:
    """Per-node memory controller with a peak throughput.

    The latency model turns per-epoch access byte counts into a utilisation
    ``rho`` of this controller; a contended controller is the dominant NUMA
    slowdown on AMD48 (Table 3: 156 -> 697 cycles for a local access).
    """

    node: NodeId
    bandwidth_gib_s: float
    bytes_served: int = 0

    def serve(self, nbytes: int) -> None:
        """Account ``nbytes`` of traffic for the current epoch."""
        self.bytes_served += nbytes

    def utilization(self, seconds: float) -> float:
        """Fraction of peak bandwidth used over ``seconds`` (may exceed 1

        when demand outstrips capacity; callers clamp as needed).
        """
        if seconds <= 0:
            return 0.0
        capacity = self.bandwidth_gib_s * (1 << 30) * seconds
        return self.bytes_served / capacity

    def reset(self) -> None:
        """Clear per-epoch accounting."""
        self.bytes_served = 0


class _ExtentList:
    """Free extents of one node, kept sorted and coalesced.

    Extents are ``(start, length)`` pairs over machine frame numbers. This
    is the textbook first-fit extent allocator: enough to model the
    fragmentation behaviour that drives Xen's 1G -> 2M -> 4K fallback.
    """

    def __init__(self, start: Mfn, length: int):
        self._starts: List[Mfn] = [start]
        self._lengths: List[int] = [length]
        self.free_frames = length

    def alloc(self, count: int, align: int = 1) -> Optional[Mfn]:
        """First-fit allocate ``count`` contiguous frames, optionally aligned.

        Returns the first frame number, or None if no extent fits.
        """
        for i, (start, length) in enumerate(zip(self._starts, self._lengths)):
            aligned = -(-start // align) * align
            waste = aligned - start
            if length - waste < count:
                continue
            # Split the extent: [start, aligned) stays free, the allocation
            # is [aligned, aligned+count), the tail stays free.
            tail_start = aligned + count
            tail_len = start + length - tail_start
            del self._starts[i]
            del self._lengths[i]
            if tail_len > 0:
                self._starts.insert(i, tail_start)
                self._lengths.insert(i, tail_len)
            if waste > 0:
                self._starts.insert(i, start)
                self._lengths.insert(i, waste)
            self.free_frames -= count
            return aligned
        return None

    def free(self, start: Mfn, count: int) -> None:
        """Return ``count`` frames starting at ``start``, coalescing."""
        i = bisect.bisect_left(self._starts, start)
        # Guard against double frees / overlaps.
        if i > 0 and self._starts[i - 1] + self._lengths[i - 1] > start:
            raise OutOfMemoryError(f"double free of frame {start:#x}")
        if i < len(self._starts) and start + count > self._starts[i]:
            raise OutOfMemoryError(f"double free of frame {start:#x}")
        self._starts.insert(i, start)
        self._lengths.insert(i, count)
        self.free_frames += count
        # Coalesce with successor, then predecessor.
        if i + 1 < len(self._starts) and start + count == self._starts[i + 1]:
            self._lengths[i] += self._lengths[i + 1]
            del self._starts[i + 1]
            del self._lengths[i + 1]
        if i > 0 and self._starts[i - 1] + self._lengths[i - 1] == start:
            self._lengths[i - 1] += self._lengths[i]
            del self._starts[i]
            del self._lengths[i]

    def alloc_singles(self, count: int) -> Optional["np.ndarray"]:
        """Allocate ``count`` single frames, as repeated ``alloc(1)`` would.

        Repeated one-frame first-fit allocations drain the sorted extent
        list front to back, so the result is simply the first ``count``
        free frames in ascending order. Returns None (allocating nothing)
        if fewer than ``count`` frames are free.
        """
        if count > self.free_frames:
            return None
        out = np.empty(count, dtype=np.int64)
        filled = 0
        consumed = 0
        while filled < count:
            start = self._starts[consumed]
            length = self._lengths[consumed]
            take = min(length, count - filled)
            out[filled : filled + take] = np.arange(
                start, start + take, dtype=np.int64
            )
            filled += take
            if take == length:
                consumed += 1
            else:
                self._starts[consumed] = start + take
                self._lengths[consumed] = length - take
        del self._starts[:consumed]
        del self._lengths[:consumed]
        self.free_frames -= count
        return out

    def largest_extent(self) -> int:
        """Length of the largest free extent (0 when exhausted)."""
        return max(self._lengths, default=0)


@dataclass
class NodeMemoryStats:
    """Snapshot of one node's frame usage."""

    node: NodeId
    total_frames: int
    free_frames: int
    largest_extent: int

    @property
    def used_frames(self) -> int:
        return self.total_frames - self.free_frames


class MachineMemory:
    """All machine frames, partitioned into per-node NUMA regions.

    Args:
        num_nodes: NUMA node count.
        frames_per_node: simulated frames in each node's bank.
        controller_gib_s: per-node memory controller throughput.
    """

    def __init__(self, num_nodes: int, frames_per_node: int, controller_gib_s: float):
        if frames_per_node < 1:
            raise TopologyError("frames_per_node must be positive")
        self.num_nodes = num_nodes
        self.frames_per_node = frames_per_node
        self._extents: Dict[NodeId, _ExtentList] = {
            n: _ExtentList(n * frames_per_node, frames_per_node)
            for n in range(num_nodes)
        }
        self.controllers: Tuple[MemoryController, ...] = tuple(
            MemoryController(n, controller_gib_s) for n in range(num_nodes)
        )
        #: Optional :class:`repro.lint.sanitizer.P2MSanitizer` tracking
        #: frame ownership; attached by the hypervisor when sanitizing.
        self.sanitizer: Optional[object] = None

    # ------------------------------------------------------------------
    # Address geometry

    @property
    def total_frames(self) -> int:
        return self.num_nodes * self.frames_per_node

    def node_of_frame(self, mfn: Mfn) -> NodeId:
        """NUMA node owning machine frame ``mfn`` (the static hardware map)."""
        if not 0 <= mfn < self.total_frames:
            raise TopologyError(f"mfn {mfn:#x} out of range")
        return mfn // self.frames_per_node

    def nodes_of_frames(self, mfns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_of_frame` over a whole mfn array."""
        mfns = np.asarray(mfns, dtype=np.int64)
        if mfns.size:
            bad = (mfns < 0) | (mfns >= self.total_frames)
            if bad.any():
                raise TopologyError(
                    f"mfn {int(mfns[bad][0]):#x} out of range"
                )
        return mfns // self.frames_per_node

    # ------------------------------------------------------------------
    # Allocation

    def alloc_frames(self, node: NodeId, count: int = 1, align: int = 1) -> Optional[Mfn]:
        """Allocate ``count`` contiguous frames on ``node``.

        Returns the first mfn, or None if the node cannot satisfy the
        request (the caller decides on fallback, like Xen's heap).
        """
        self._check_node(node)
        if count < 1:
            raise OutOfMemoryError("allocation count must be positive")
        mfn = self._extents[node].alloc(count, align)
        if mfn is not None and self.sanitizer is not None:
            self.sanitizer.frames_allocated(mfn, count)
        return mfn

    def free_frames(self, mfn: Mfn, count: int = 1) -> None:
        """Free ``count`` contiguous frames starting at ``mfn``.

        The run must not cross a node boundary (callers free per-node runs).
        """
        node = self.node_of_frame(mfn)
        if self.node_of_frame(mfn + count - 1) != node:
            raise OutOfMemoryError("free range crosses a NUMA node boundary")
        if self.sanitizer is not None:
            self.sanitizer.frames_freed(mfn, count)
        self._extents[node].free(mfn, count)

    def alloc_singles(self, node: NodeId, count: int) -> Optional[np.ndarray]:
        """Allocate ``count`` single frames on ``node`` in one call.

        State-identical to ``count`` successive ``alloc_frames(node, 1)``
        calls (single-frame first-fit drains extents front to back);
        returns the ascending mfn array, or None — allocating nothing —
        when the node has fewer than ``count`` free frames.
        """
        self._check_node(node)
        if count < 1:
            raise OutOfMemoryError("allocation count must be positive")
        mfns = self._extents[node].alloc_singles(count)
        if mfns is not None and self.sanitizer is not None:
            for mfn in mfns.tolist():
                self.sanitizer.frames_allocated(int(mfn), 1)
        return mfns

    def free_frames_many(self, mfns: Union[Sequence[int], np.ndarray]) -> None:
        """Free a set of single frames in one call.

        The final extent state after a set of frees is order-independent
        (extents are kept sorted and coalesced), so this sorts the frames,
        splits them into per-node contiguous runs and frees each run —
        state-identical to freeing them one by one, including raising
        the same double-free error on duplicates.
        """
        mfns = np.sort(np.asarray(mfns, dtype=np.int64))
        if mfns.size == 0:
            return
        if self.sanitizer is not None:
            for mfn in mfns.tolist():
                self.free_frames(int(mfn), 1)
            return
        if int(mfns[0]) < 0 or int(mfns[-1]) >= self.total_frames:
            bad = int(mfns[0]) if int(mfns[0]) < 0 else int(mfns[-1])
            raise TopologyError(f"mfn {bad:#x} out of range")
        nodes = mfns // self.frames_per_node
        breaks = np.nonzero((np.diff(mfns) != 1) | (np.diff(nodes) != 0))[0] + 1
        starts = np.concatenate(([0], breaks))
        ends = np.concatenate((breaks, [mfns.size]))
        for run_start, run_end in zip(starts.tolist(), ends.tolist()):
            first = int(mfns[run_start])
            self._extents[first // self.frames_per_node].free(
                first, run_end - run_start
            )

    def free_frames_on(self, node: NodeId) -> int:
        """Number of free frames on ``node``."""
        self._check_node(node)
        return self._extents[node].free_frames

    def stats(self, node: NodeId) -> NodeMemoryStats:
        """Usage snapshot for ``node``."""
        self._check_node(node)
        ext = self._extents[node]
        return NodeMemoryStats(
            node=node,
            total_frames=self.frames_per_node,
            free_frames=ext.free_frames,
            largest_extent=ext.largest_extent(),
        )

    def reset_controllers(self) -> None:
        """Clear per-epoch controller accounting."""
        for controller in self.controllers:
            controller.reset()

    def _check_node(self, node: NodeId) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range")
