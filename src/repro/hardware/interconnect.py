"""Interconnect load accounting.

Tracks, per epoch, how many bytes crossed each HyperTransport link. The
latency model converts link byte counts into utilisations; the analysis
module reports the paper's "interconnect load" metric (average utilisation
of the most loaded link, Table 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.hardware.topology import Link, NumaTopology

LinkKey = Tuple[int, int]


class Interconnect:
    """Per-epoch byte counters for every link of a topology."""

    def __init__(self, topology: NumaTopology):
        self.topology = topology
        self._bytes: Dict[LinkKey, int] = {l.key: 0 for l in topology.links}
        self._keys: Tuple[LinkKey, ...] = tuple(l.key for l in topology.links)
        self._route_incidence: Optional[np.ndarray] = None

    def record_access(self, src: int, dst: int, nbytes: int) -> None:
        """Account ``nbytes`` flowing along the route from ``src`` to ``dst``.

        Local accesses (src == dst) touch no link.
        """
        if src == dst or nbytes == 0:
            return
        for link in self.topology.route(src, dst):
            self._bytes[link.key] += nbytes

    def route_incidence(self) -> np.ndarray:
        """0/1 matrix mapping flattened ``(src, dst)`` pairs to links.

        Built lazily from the topology's routes and cached; multiplying a
        flattened byte matrix against it yields per-link byte totals in
        ``topology.links`` order.
        """
        if self._route_incidence is None:
            incidence = self.topology.route_link_matrix().astype(np.int64)
            incidence.setflags(write=False)
            self._route_incidence = incidence
        return self._route_incidence

    def record_link_bytes(self, link_bytes: Iterable[int]) -> None:
        """Add precomputed per-link byte counts (``topology.links`` order)."""
        for key, nbytes in zip(self._keys, link_bytes):
            if nbytes:
                self._bytes[key] += nbytes

    def record_access_matrix(self, byte_matrix: np.ndarray) -> None:
        """Account a whole ``(n, n)`` matrix of per-route byte counts.

        State-identical to calling :meth:`record_access` on every
        ``(src, dst)`` pair: per-link totals are integer sums of the same
        per-pair byte counts (integer addition is order-free), computed
        as one integer matrix product against the 0/1 route-incidence
        matrix instead of ``n**2`` python route walks. This is the engine
        hot path — one call per world per epoch.
        """
        if not self._keys:
            return
        link_bytes = byte_matrix.reshape(-1) @ self.route_incidence()
        self.record_link_bytes(link_bytes.tolist())

    def record_route(self, route: Iterable[Link], nbytes: int) -> None:
        """Account traffic on a precomputed route (hot path for the engine)."""
        for link in route:
            self._bytes[link.key] += nbytes

    def bytes_on(self, link: Link) -> int:
        """Bytes accounted on ``link`` this epoch."""
        return self._bytes[link.key]

    def utilization(self, link: Link, seconds: float) -> float:
        """Fraction of ``link`` bandwidth used over ``seconds`` (unclamped)."""
        if seconds <= 0:
            return 0.0
        capacity = link.bandwidth_gib_s * (1 << 30) * seconds
        return self._bytes[link.key] / capacity

    def utilizations(self, seconds: float) -> Dict[LinkKey, float]:
        """Utilisation of every link this epoch."""
        return {
            link.key: self.utilization(link, seconds)
            for link in self.topology.links
        }

    def max_utilization(self, seconds: float) -> float:
        """Utilisation of the most loaded link (the paper's congestion signal)."""
        utils = self.utilizations(seconds)
        return max(utils.values(), default=0.0)

    def route_utilization(self, src: int, dst: int, seconds: float) -> float:
        """Max utilisation along the route ``src`` -> ``dst`` (0 if local)."""
        route = self.topology.route(src, dst)
        if not route:
            return 0.0
        return max(self.utilization(link, seconds) for link in route)

    def reset(self) -> None:
        """Clear per-epoch counters."""
        for key in self._bytes:
            self._bytes[key] = 0
