"""Machine presets, foremost the paper's evaluation machine "AMD48".

AMD48 (paper section 5.1): four Opteron 6174 sockets, each containing two
NUMA nodes — 8 nodes, 6 CPUs per node (48 cores), 16 GiB per node (128 GiB
total). Each node's memory controller peaks at 13 GiB/s. Nodes are joined
by HyperTransport links with asymmetric bandwidth (max 6 GiB/s) and a hop
diameter of 2. Nodes 0 and 6 carry the two PCI express buses. Caches:
per-core L1 64 KiB (5 cycles) and L2 512 KiB (16 cycles), per-node L3
5 MiB (48 cycles) shared by the node's 6 cores. Cores run at 2.2 GHz.

The exact HT wiring of the Magny-Cours platform is not public in enough
detail to copy; we use a plausible graph with the right diameter:
intra-socket sibling links (6 GiB/s), plus a clique among even nodes and a
clique among odd nodes (4 GiB/s), giving every pair a route of at most two
hops — matching Table 3's "maximum distance of two hops".
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimConfig, DEFAULT_CONFIG
from repro.hardware.cache import CacheHierarchy, CacheLevel
from repro.hardware.latency import LatencyModel
from repro.hardware.machine import Machine
from repro.hardware.topology import Link, NumaTopology

#: Bandwidth of an intra-socket HT link (GiB/s).
INTRA_SOCKET_GIB_S = 6.0
#: Bandwidth of an inter-socket HT link (GiB/s) — the asymmetric, slower class.
INTER_SOCKET_GIB_S = 4.0
#: Per-node memory controller throughput (GiB/s).
CONTROLLER_GIB_S = 13.0
#: Memory per node (GiB).
NODE_MEMORY_GIB = 16.0


def amd48_topology() -> NumaTopology:
    """The 8-node, 48-core AMD48 topology."""
    links = []
    # Intra-socket sibling links: sockets are {0,1} {2,3} {4,5} {6,7}.
    for socket in range(4):
        links.append(Link(2 * socket, 2 * socket + 1, INTRA_SOCKET_GIB_S))
    # Cross-socket links: clique over even nodes and clique over odd nodes.
    evens = [0, 2, 4, 6]
    odds = [1, 3, 5, 7]
    for group in (evens, odds):
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                links.append(Link(a, b, INTER_SOCKET_GIB_S))
    return NumaTopology(
        num_nodes=8,
        cpus_per_node=6,
        links=links,
        memory_controller_gib_s=CONTROLLER_GIB_S,
        node_memory_gib=NODE_MEMORY_GIB,
        pci_nodes=(0, 6),
    )


def amd48_caches() -> CacheHierarchy:
    """The Opteron 6174 cache hierarchy (Table 3 latencies)."""
    return CacheHierarchy(
        levels=(
            CacheLevel("L1", 64 * 1024, 5.0),
            CacheLevel("L2", 512 * 1024, 16.0),
            CacheLevel("L3", 5 * 1024 * 1024, 48.0),
        ),
        l3_sharers=6,
    )


def amd48(
    config: SimConfig = DEFAULT_CONFIG,
    iommu_enabled: bool = True,
    latency: Optional[LatencyModel] = None,
) -> Machine:
    """Build the paper's AMD48 machine.

    Args:
        config: simulation knobs (page scale, epoch length, seed).
        iommu_enabled: whether the AMD IOMMU is available.
        latency: override the Table 3-calibrated latency model.
    """
    return Machine(
        topology=amd48_topology(),
        caches=amd48_caches(),
        latency=latency or LatencyModel(freq_ghz=2.2),
        config=config,
        iommu_enabled=iommu_enabled,
    )


def small_machine(
    num_nodes: int = 2,
    cpus_per_node: int = 2,
    frames_per_node: int = 1024,
    config: SimConfig = DEFAULT_CONFIG,
) -> Machine:
    """A tiny fully-connected machine for unit tests."""
    links = [
        Link(a, b, INTER_SOCKET_GIB_S)
        for a in range(num_nodes)
        for b in range(a + 1, num_nodes)
    ]
    topo = NumaTopology(
        num_nodes=num_nodes,
        cpus_per_node=cpus_per_node,
        links=links,
        memory_controller_gib_s=CONTROLLER_GIB_S,
        node_memory_gib=NODE_MEMORY_GIB,
        pci_nodes=(0,),
    )
    return Machine(
        topology=topo,
        caches=amd48_caches(),
        latency=LatencyModel(),
        frames_per_node=frames_per_node,
        config=config,
    )
