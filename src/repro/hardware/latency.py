"""Contention-aware memory latency model, calibrated to the paper's Table 3.

Table 3 (AMD48):

===============  =========  ===========
Access           1 thread   48 threads
===============  =========  ===========
Local            156 cyc    697 cyc
Remote (1 hop)   276 cyc    740 cyc
Remote (2 hops)  383 cyc    863 cyc
===============  =========  ===========

The uncontended column gives the base latencies. The contended column is
measured with 48 threads hammering a single node, i.e. with the memory
controller (local case) or the controller-plus-links path (remote cases)
saturated. We model the queueing delay with the M/M/1-style term
``q(rho) = rho / (1 - rho)`` capped at ``rho_cap`` and calibrate one
coefficient per hop count so that the saturated latency reproduces the
contended column exactly.

Two empirical observations from Table 3 are preserved:

* the hop distance matters little when uncontended (156 -> 383 cycles) but a
  saturated controller dominates everything (697 cycles *local*);
* remote contended accesses queue slightly *less* than local ones because
  the links throttle requests before they reach the controller — hence the
  per-hop coefficients rather than a single one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

import numpy as np

#: Scalar or ndarray — the model's latency functions broadcast over both.
Rho = Union[float, np.ndarray]


@dataclass
class LatencyModel:
    """Memory access latency as a function of hops and congestion.

    All latency functions accept scalars or ndarrays (broadcast together):
    scalar inputs return a plain float, array inputs an ndarray. The array
    path performs the exact same elementwise arithmetic as the scalar one.

    Args:
        base_cycles: uncontended latency for 0, 1, 2 hops.
        contended_cycles: latency at full saturation for 0, 1, 2 hops.
        rho_cap: utilisation cap applied inside the queueing term (an open
            queue diverges at rho = 1; real hardware back-pressures instead).
        freq_ghz: CPU frequency used to convert cycles to seconds.
    """

    base_cycles: Tuple[float, float, float] = (156.0, 276.0, 383.0)
    contended_cycles: Tuple[float, float, float] = (697.0, 740.0, 863.0)
    rho_cap: float = 0.95
    freq_ghz: float = 2.2
    _coeffs: Tuple[float, ...] = field(init=False, repr=False)
    _base_arr: np.ndarray = field(init=False, repr=False)
    _coeff_arr: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if len(self.base_cycles) != len(self.contended_cycles):
            raise ValueError("base and contended latency tuples must align")
        # Calibration anchor: the Table 3 contended microbenchmark sits at
        # the queueing knee (one fully saturated node).
        qmax = self.queueing(self.rho_cap)
        self._coeffs = tuple(
            (contended - base) / qmax
            for base, contended in zip(self.base_cycles, self.contended_cycles)
        )
        if any(c < 0 for c in self._coeffs):
            raise ValueError("contended latencies must exceed base latencies")
        self._base_arr = np.asarray(self.base_cycles, dtype=np.float64)
        self._coeff_arr = np.asarray(self._coeffs, dtype=np.float64)

    # ------------------------------------------------------------------

    def queueing(self, rho: Rho) -> Rho:
        """Queueing delay factor for utilisation ``rho`` (scalar or ndarray).

        M/M/1 (``rho / (1 - rho)``) up to ``rho_cap``; beyond the knee the
        curve continues *linearly* with the knee's slope. An open M/M/1
        queue diverges at rho = 1, which a simulator cannot evaluate, but
        a hard cap would let over-demanded controllers serve unbounded
        throughput at bounded latency. The linear tail makes over-demand
        self-limiting: latency keeps growing until the offered load drops
        to what the controller can actually serve — i.e. bandwidth
        saturation, the behaviour behind the paper's worst slowdowns.
        """
        rho = np.maximum(np.asarray(rho, dtype=np.float64), 0.0)
        cap = self.rho_cap
        # Evaluate the M/M/1 branch on utilisations clamped to the cap so
        # the rejected branch never divides by (1 - rho) near or past 1.
        clamped = np.minimum(rho, cap)
        knee = cap / (1.0 - cap)
        slope = 1.0 / (1.0 - cap) ** 2
        out = np.where(
            rho <= cap,
            clamped / (1.0 - clamped),
            knee + slope * (rho - cap),
        )
        if out.ndim == 0:
            return float(out)
        return out

    def hop_coefficients(self, hops) -> Tuple[np.ndarray, np.ndarray]:
        """``(base, coeff)`` cycle terms per entry of ``hops``.

        Exactly the table lookups :meth:`memory_latency_cycles` performs;
        hops are constant per topology, so solvers precompute these once
        and keep the per-iteration latency math purely elementwise.
        """
        hops = np.asarray(hops)
        idx = np.minimum(hops, len(self.base_cycles) - 1)
        return self._base_arr[idx], self._coeff_arr[idx]

    def memory_latency_cycles(
        self, hops, rho_controller: Rho, rho_link: Rho = 0.0
    ) -> Rho:
        """Latency in cycles of one memory access (scalar or ndarray).

        Args:
            hops: interconnect hops between the issuing CPU's node and the
                node owning the frame (0 = local).
            rho_controller: utilisation of the target node's memory
                controller this epoch.
            rho_link: max utilisation along the route's links (ignored for
                local accesses).
        """
        hops = np.asarray(hops)
        idx = np.minimum(hops, len(self.base_cycles) - 1)
        base = self._base_arr[idx]
        coeff = self._coeff_arr[idx]
        # The request queues wherever the path is most congested; links
        # throttle traffic before it reaches the controller.
        congestion = np.where(
            hops == 0,
            rho_controller,
            np.maximum(rho_controller, rho_link),
        )
        out = base + coeff * self.queueing(congestion)
        if np.ndim(out) == 0:
            return float(out)
        return out

    def memory_latency_seconds(
        self, hops, rho_controller: Rho, rho_link: Rho = 0.0
    ) -> Rho:
        """Same as :meth:`memory_latency_cycles`, in seconds."""
        return self.cycles_to_seconds(
            self.memory_latency_cycles(hops, rho_controller, rho_link)
        )

    def cycles_to_seconds(self, cycles: Rho) -> Rho:
        """Convert CPU cycles to seconds at the model's frequency."""
        return cycles / (self.freq_ghz * 1e9)

    def seconds_to_cycles(self, seconds: Rho) -> Rho:
        """Convert seconds to CPU cycles at the model's frequency."""
        return seconds * self.freq_ghz * 1e9
