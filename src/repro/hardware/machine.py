"""The :class:`Machine` facade bundling every hardware component.

A ``Machine`` owns a topology, the machine memory with its per-node
controllers, the interconnect, a cache hierarchy, the calibrated latency
model, performance counters and the IOMMU. The simulation engine records
all memory traffic through :meth:`record_node_traffic` so that controllers,
links and counters stay consistent.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.config import SimConfig, DEFAULT_CONFIG
from repro.hardware.cache import CacheHierarchy
from repro.hardware.counters import CACHE_LINE_BYTES, PerfCounters
from repro.hardware.interconnect import Interconnect
from repro.hardware.iommu import Iommu
from repro.hardware.latency import LatencyModel
from repro.hardware.memory import MachineMemory
from repro.hardware.topology import NumaTopology


class Machine:
    """A simulated NUMA machine.

    Args:
        topology: node/CPU/link layout.
        frames_per_node: simulated frames per node (derived from the
            topology's bank size and the config's page scale when omitted).
        caches: cache hierarchy shared by all CPUs.
        latency: the contention-aware latency model.
        config: global simulation knobs.
        iommu_enabled: whether the machine has a usable IOMMU.
    """

    def __init__(
        self,
        topology: NumaTopology,
        caches: CacheHierarchy,
        latency: Optional[LatencyModel] = None,
        frames_per_node: Optional[int] = None,
        config: SimConfig = DEFAULT_CONFIG,
        iommu_enabled: bool = True,
    ):
        self.topology = topology
        self.caches = caches
        self.latency = latency or LatencyModel()
        self.config = config
        if frames_per_node is None:
            bank_bytes = topology.node_memory_gib * (1 << 30)
            frames_per_node = max(1, int(bank_bytes // config.page_bytes))
        self.memory = MachineMemory(
            num_nodes=topology.num_nodes,
            frames_per_node=frames_per_node,
            controller_gib_s=topology.memory_controller_gib_s,
        )
        self.interconnect = Interconnect(topology)
        self.counters = PerfCounters(topology.num_nodes)
        self.iommu = Iommu(enabled=iommu_enabled)

    # ------------------------------------------------------------------
    # Geometry shortcuts

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    @property
    def num_cpus(self) -> int:
        return self.topology.num_cpus

    def node_of_frame(self, mfn: int) -> int:
        """NUMA node owning machine frame ``mfn``."""
        return self.memory.node_of_frame(mfn)

    def nodes_of_frames(self, mfns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_of_frame` over an mfn array."""
        return self.memory.nodes_of_frames(mfns)

    # ------------------------------------------------------------------
    # Epoch accounting

    def record_node_traffic(self, matrix: np.ndarray) -> None:
        """Account one epoch's access matrix on every hardware component.

        ``matrix[src, dst]`` is the number of memory accesses issued from
        node ``src`` to frames of node ``dst``. Each access moves one cache
        line over the route and through the destination controller.
        """
        if matrix.shape != (self.num_nodes, self.num_nodes):
            raise ValueError("access matrix shape mismatch")
        self.counters.record_matrix(matrix)
        col_bytes = matrix.sum(axis=0) * CACHE_LINE_BYTES
        for node, nbytes in enumerate(col_bytes.tolist()):
            if nbytes:
                self.memory.controllers[node].serve(int(nbytes))
        # Truncation per pair matches the old per-pair int() exactly
        # (access counts are non-negative), and per-link integer sums are
        # order-free, so the vectorized recording is state-identical to
        # the old per-(src, dst) record_access loop.
        byte_matrix = (matrix * CACHE_LINE_BYTES).astype(np.int64)
        np.fill_diagonal(byte_matrix, 0)
        self.interconnect.record_access_matrix(byte_matrix)

    def record_link_traffic(self, link_bytes: Iterable[int]) -> None:
        """Add precomputed per-link byte counts (``topology.links`` order)."""
        self.interconnect.record_link_bytes(link_bytes)

    def congestion(self, seconds: float) -> Tuple[np.ndarray, Dict[Tuple[int, int], float]]:
        """Controller and link utilisations for the traffic recorded so far.

        Returns:
            (rho_controllers, rho_links): per-node controller utilisation
            array and per-link utilisation dict, both unclamped.
        """
        rho_c = np.array(
            [c.utilization(seconds) for c in self.memory.controllers]
        )
        rho_l = self.interconnect.utilizations(seconds)
        return rho_c, rho_l

    def access_latency_matrix(self, seconds: float) -> np.ndarray:
        """Per-(src, dst) memory latency (cycles) under current congestion."""
        rho_c, _ = self.congestion(seconds)
        out = np.zeros((self.num_nodes, self.num_nodes))
        for src in range(self.num_nodes):
            for dst in range(self.num_nodes):
                hops = self.topology.hops(src, dst)
                rho_link = self.interconnect.route_utilization(src, dst, seconds)
                out[src, dst] = self.latency.memory_latency_cycles(
                    hops, float(rho_c[dst]), rho_link
                )
        return out

    def end_epoch(self) -> np.ndarray:
        """Archive counters and reset per-epoch accounting on all parts."""
        snapshot = self.counters.end_epoch()
        self.memory.reset_controllers()
        self.interconnect.reset()
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Machine({self.num_nodes} nodes x {self.topology.cpus_per_node} CPUs, "
            f"{self.memory.frames_per_node} frames/node)"
        )


def record_node_traffic_many(
    machines: Sequence[Machine], stacked: np.ndarray
) -> None:
    """Account one epoch of traffic on many machines at once.

    ``stacked[w]`` is machine ``w``'s access matrix. State-identical to
    calling :meth:`Machine.record_node_traffic` per machine — the same
    per-world arithmetic, with the fixed numpy overheads (dtype cast,
    diagonal clear, route matmul) paid once per epoch instead of once
    per world. Callers must have checked the machines share a topology
    (routes and link order), as the multi-run grouper does; the route
    incidence of the first machine is reused for all of them.
    """
    num_worlds = len(machines)
    n = machines[0].num_nodes
    if stacked.shape != (num_worlds, n, n):
        raise ValueError("access matrix stack shape mismatch")
    # Column sums over the stack reduce the same contiguous elements in
    # the same order as each slice's ``matrix.sum(axis=0)``.
    col_stack = stacked.sum(axis=1) * CACHE_LINE_BYTES
    byte_stack = (stacked * CACHE_LINE_BYTES).astype(np.int64)
    idx = np.arange(n)
    byte_stack[:, idx, idx] = 0
    incidence = machines[0].interconnect.route_incidence()
    link_stack = byte_stack.reshape(num_worlds, -1) @ incidence
    for w, machine in enumerate(machines):
        machine.counters.record_matrix(stacked[w])
        for node, nbytes in enumerate(col_stack[w].tolist()):
            if nbytes:
                machine.memory.controllers[node].serve(int(nbytes))
        machine.record_link_traffic(link_stack[w].tolist())
