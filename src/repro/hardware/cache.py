"""Cache hierarchy model.

AMD48 CPUs (Opteron 6174) have per-core L1 (64 KiB data, 5 cycles) and L2
(512 KiB, 16 cycles) caches and a per-node L3 (5 MiB, 48 cycles) shared by
the 6 cores of the node (paper section 5.1, Table 3).

Applications in the simulator do not issue individual addresses, so the
hierarchy is modelled statistically: given a thread's working-set size, the
model estimates the fraction of accesses served by each level, and the
remainder goes to memory. The estimate uses the classic ``size / working
set`` occupancy approximation with a reuse exponent — crude, but it yields
the right qualitative behaviour: small working sets are cache-resident and
NUMA-insensitive, large ones hammer memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class CacheLevel:
    """One cache level.

    Attributes:
        name: "L1" / "L2" / "L3".
        size_bytes: capacity available to one thread (L3 is divided among
            sharers by the hierarchy before building profiles).
        latency_cycles: access latency on a hit.
    """

    name: str
    size_bytes: int
    latency_cycles: float


@dataclass(frozen=True)
class HitProfile:
    """Fraction of accesses served by each level and by memory.

    ``level_fractions`` aligns with the hierarchy's levels; all fractions
    plus ``memory_fraction`` sum to 1.
    """

    level_fractions: Tuple[float, ...]
    memory_fraction: float

    def average_cycles(self, levels: Tuple[CacheLevel, ...], memory_cycles: float) -> float:
        """Average access cost given a memory latency in cycles."""
        total = self.memory_fraction * memory_cycles
        for frac, level in zip(self.level_fractions, levels):
            total += frac * level.latency_cycles
        return total


class CacheHierarchy:
    """A stack of cache levels with a statistical hit model.

    Args:
        levels: ordered from closest (L1) to farthest (L3).
        l3_sharers: number of cores sharing the last level.
        reuse_exponent: shapes the hit-ratio curve ``(size/ws) ** exponent``;
            values < 1 favour caches (temporal locality), > 1 punish them.
    """

    def __init__(
        self,
        levels: Tuple[CacheLevel, ...],
        l3_sharers: int = 1,
        reuse_exponent: float = 0.5,
    ):
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = levels
        self.l3_sharers = max(1, l3_sharers)
        self.reuse_exponent = reuse_exponent

    def hit_profile(self, working_set_bytes: float, l3_contended: bool = True) -> HitProfile:
        """Estimate per-level hit fractions for a working set.

        Args:
            working_set_bytes: bytes the thread actively touches.
            l3_contended: divide L3 capacity among its sharers (the common
                case when all cores of a node run threads of the same app).
        """
        remaining = 1.0
        fractions = []
        ws = max(1.0, working_set_bytes)
        for level in self.levels:
            size = level.size_bytes
            if level.name == "L3" and l3_contended:
                size = size / self.l3_sharers
            if ws <= size:
                ratio = 1.0
            else:
                ratio = (size / ws) ** self.reuse_exponent
            hit = remaining * min(1.0, ratio)
            fractions.append(hit)
            remaining -= hit
            if remaining <= 1e-12:
                remaining = 0.0
                break
        # Pad fractions if we exited early.
        while len(fractions) < len(self.levels):
            fractions.append(0.0)
        return HitProfile(tuple(fractions), remaining)

    def average_access_cycles(
        self, working_set_bytes: float, memory_cycles: float, l3_contended: bool = True
    ) -> float:
        """Average cycles per access for a working set and memory latency."""
        profile = self.hit_profile(working_set_bytes, l3_contended)
        return profile.average_cycles(self.levels, memory_cycles)
