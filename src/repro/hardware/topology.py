"""NUMA topology: nodes, CPUs, interconnect links and routing.

A NUMA machine is a set of nodes, each holding CPUs and a memory bank,
connected by point-to-point links (HyperTransport on the paper's AMD48
machine). The hardware statically routes a memory access from the node of
the issuing CPU to the node owning the target machine page; this module
computes those routes (shortest path, like the HT routing tables) and the
hop distance matrix used by the latency model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError

NodeId = int
CpuId = int


@dataclass(frozen=True)
class Link:
    """A bidirectional interconnect link between two NUMA nodes.

    Attributes:
        a, b: endpoint node ids, normalised so that ``a < b``.
        bandwidth_gib_s: peak usable bandwidth in GiB/s.
    """

    a: NodeId
    b: NodeId
    bandwidth_gib_s: float

    def __post_init__(self):
        if self.a == self.b:
            raise TopologyError(f"link endpoints must differ, got {self.a}")
        if self.a > self.b:
            low, high = self.b, self.a
            object.__setattr__(self, "a", low)
            object.__setattr__(self, "b", high)
        if self.bandwidth_gib_s <= 0:
            raise TopologyError("link bandwidth must be positive")

    @property
    def key(self) -> Tuple[NodeId, NodeId]:
        """Canonical (small, large) endpoint pair identifying this link."""
        return (self.a, self.b)

    def other(self, node: NodeId) -> NodeId:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"node {node} is not an endpoint of {self.key}")


class NumaTopology:
    """Immutable description of nodes, CPUs and links, with routing.

    Args:
        num_nodes: number of NUMA nodes.
        cpus_per_node: CPUs in each node. CPU ids are assigned densely:
            node ``n`` owns CPUs ``[n * cpus_per_node, (n+1) * cpus_per_node)``.
        links: interconnect links. The graph must be connected.
        memory_controller_gib_s: per-node memory controller peak throughput.
        node_memory_gib: memory bank size of each node, in GiB.
        pci_nodes: nodes physically attached to a PCI express bus.
    """

    def __init__(
        self,
        num_nodes: int,
        cpus_per_node: int,
        links: Sequence[Link],
        memory_controller_gib_s: float,
        node_memory_gib: float,
        pci_nodes: Sequence[NodeId] = (),
    ):
        if num_nodes < 1:
            raise TopologyError("need at least one node")
        if cpus_per_node < 1:
            raise TopologyError("need at least one CPU per node")
        self.num_nodes = num_nodes
        self.cpus_per_node = cpus_per_node
        self.memory_controller_gib_s = memory_controller_gib_s
        self.node_memory_gib = node_memory_gib
        self.pci_nodes = tuple(pci_nodes)
        for n in self.pci_nodes:
            self._check_node(n)

        self._links: Dict[Tuple[NodeId, NodeId], Link] = {}
        self._adjacency: Dict[NodeId, List[NodeId]] = {n: [] for n in range(num_nodes)}
        for link in links:
            self._check_node(link.a)
            self._check_node(link.b)
            if link.key in self._links:
                raise TopologyError(f"duplicate link {link.key}")
            self._links[link.key] = link
            self._adjacency[link.a].append(link.b)
            self._adjacency[link.b].append(link.a)

        self._routes = self._compute_routes()

    # ------------------------------------------------------------------
    # Basic queries

    @property
    def num_cpus(self) -> int:
        """Total CPU count of the machine."""
        return self.num_nodes * self.cpus_per_node

    @property
    def links(self) -> Tuple[Link, ...]:
        """All interconnect links."""
        return tuple(self._links.values())

    def node_of_cpu(self, cpu: CpuId) -> NodeId:
        """NUMA node owning ``cpu``."""
        if not 0 <= cpu < self.num_cpus:
            raise TopologyError(f"cpu {cpu} out of range")
        return cpu // self.cpus_per_node

    def cpus_of_node(self, node: NodeId) -> range:
        """CPU ids belonging to ``node``."""
        self._check_node(node)
        base = node * self.cpus_per_node
        return range(base, base + self.cpus_per_node)

    def link_between(self, a: NodeId, b: NodeId) -> Link:
        """The direct link between adjacent nodes ``a`` and ``b``."""
        key = (min(a, b), max(a, b))
        try:
            return self._links[key]
        except KeyError:
            raise TopologyError(f"no direct link between {a} and {b}") from None

    def neighbors(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Nodes directly linked to ``node``."""
        self._check_node(node)
        return tuple(self._adjacency[node])

    # ------------------------------------------------------------------
    # Routing

    def route(self, src: NodeId, dst: NodeId) -> Tuple[Link, ...]:
        """The links traversed by a memory access from ``src`` to ``dst``.

        Empty for a local access. Routes are shortest paths, fixed at
        construction time (hardware routing tables are static).
        """
        self._check_node(src)
        self._check_node(dst)
        return self._routes[(src, dst)]

    def hops(self, src: NodeId, dst: NodeId) -> int:
        """Hop distance between two nodes (0 for local)."""
        return len(self.route(src, dst))

    def diameter(self) -> int:
        """Maximum hop distance between any two nodes."""
        return max(len(r) for r in self._routes.values())

    def distance_matrix(self) -> List[List[int]]:
        """``matrix[src][dst]`` = hop count."""
        return [
            [self.hops(s, d) for d in range(self.num_nodes)]
            for s in range(self.num_nodes)
        ]

    def route_link_matrix(self) -> np.ndarray:
        """The routing tables as a dense 0/1 matrix.

        ``R[src * num_nodes + dst, i]`` is 1.0 iff :meth:`route`
        ``(src, dst)`` traverses ``links[i]`` (link order is that of the
        :attr:`links` tuple). Local routes are all-zero rows. This is the
        export the congestion solver turns into matrix products: per-link
        traffic is ``flat_access_matrix @ R`` and the max utilisation along
        a route is a masked row-max — no per-(src, dst) Python loops.
        """
        link_index = {link.key: i for i, link in enumerate(self.links)}
        matrix = np.zeros((self.num_nodes * self.num_nodes, len(link_index)))
        for (src, dst), route in self._routes.items():
            row = src * self.num_nodes + dst
            for link in route:
                matrix[row, link_index[link.key]] = 1.0
        return matrix

    # ------------------------------------------------------------------
    # Internals

    def _check_node(self, node: NodeId) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range [0, {self.num_nodes})")

    def _compute_routes(self) -> Dict[Tuple[NodeId, NodeId], Tuple[Link, ...]]:
        routes: Dict[Tuple[NodeId, NodeId], Tuple[Link, ...]] = {}
        for src in range(self.num_nodes):
            # BFS from src; parent pointers give shortest paths.
            parent: Dict[NodeId, NodeId] = {src: src}
            queue = deque([src])
            while queue:
                cur = queue.popleft()
                for nxt in self._adjacency[cur]:
                    if nxt not in parent:
                        parent[nxt] = cur
                        queue.append(nxt)
            if len(parent) != self.num_nodes:
                missing = set(range(self.num_nodes)) - set(parent)
                raise TopologyError(f"topology is disconnected: {sorted(missing)}")
            for dst in range(self.num_nodes):
                path: List[Link] = []
                cur = dst
                while cur != src:
                    prev = parent[cur]
                    path.append(self.link_between(prev, cur))
                    cur = prev
                routes[(src, dst)] = tuple(reversed(path))
        return routes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NumaTopology(nodes={self.num_nodes}, cpus/node={self.cpus_per_node}, "
            f"links={len(self._links)}, diameter={self.diameter()})"
        )
