"""Hardware performance counters and hot-page sampling.

Real Carrefour consumes AMD Instruction-Based Sampling: per-node memory
access counts, interconnect link utilisation, and a sampled stream of hot
physical pages annotated with which nodes access them. The simulated
counters expose the same information, computed exactly per epoch and
optionally thinned by a sampling rate (IBS samples a small fraction of
instructions; exact counts thinned stochastically are a faithful stand-in).

The paper notes (Table 1 footnote) that Carrefour monopolises the counter
registers, which is why Table 1 only reports first-touch/round-4K runs; we
model that exclusivity with an ``owner`` claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Bytes transferred per memory access (one cache line).
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class HotPageSample:
    """Sampled access profile of one (guest-physical) page.

    Attributes:
        page: page identifier (gpfn for hypervisor Carrefour, vpfn in Linux).
        domain_id: owning domain (or 0 in native mode).
        node_accesses: per-node access counts observed for the page.
        write_fraction: fraction of sampled accesses that were writes.
    """

    page: int
    domain_id: int
    node_accesses: Tuple[int, ...]
    write_fraction: float = 0.0

    @property
    def total(self) -> int:
        return int(sum(self.node_accesses))

    @property
    def dominant_node(self) -> int:
        return int(np.argmax(self.node_accesses))


class PerfCounters:
    """Per-epoch access matrix plus cumulative history.

    ``matrix[src, dst]`` counts memory accesses issued by CPUs of node
    ``src`` to frames of node ``dst`` in the current epoch.
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.matrix = np.zeros((num_nodes, num_nodes), dtype=np.float64)
        self.epoch_history: List[np.ndarray] = []
        self._owner: Optional[str] = None

    # ------------------------------------------------------------------
    # Exclusivity (Carrefour uses all counter registers)

    def claim(self, owner: str) -> None:
        """Reserve the counter registers for ``owner``.

        Raises:
            RuntimeError: if another owner already holds them.
        """
        if self._owner is not None and self._owner != owner:
            raise RuntimeError(
                f"performance counters already claimed by {self._owner!r}"
            )
        self._owner = owner

    def release(self, owner: str) -> None:
        """Release a previous claim."""
        if self._owner == owner:
            self._owner = None

    @property
    def owner(self) -> Optional[str]:
        return self._owner

    # ------------------------------------------------------------------
    # Recording

    def record(self, src_node: int, dst_node: int, count: float) -> None:
        """Account ``count`` accesses from ``src_node`` to ``dst_node``."""
        self.matrix[src_node, dst_node] += count

    def record_matrix(self, matrix: np.ndarray) -> None:
        """Accumulate a whole per-epoch access matrix (engine hot path)."""
        self.matrix += matrix

    def end_epoch(self) -> np.ndarray:
        """Archive and reset the per-epoch matrix; returns the snapshot.

        The returned array *is* the archived history entry, frozen
        (``setflags(write=False)``): a caller writing through the alias
        would silently rewrite :attr:`epoch_history`.
        """
        snapshot = self.matrix.copy()
        snapshot.setflags(write=False)
        self.epoch_history.append(snapshot)
        self.matrix = np.zeros_like(self.matrix)
        return snapshot

    # ------------------------------------------------------------------
    # Derived metrics

    def node_access_counts(self, matrix: Optional[np.ndarray] = None) -> np.ndarray:
        """Accesses served by each node's memory (column sums)."""
        m = self.matrix if matrix is None else matrix
        return m.sum(axis=0)

    def local_access_fraction(self, matrix: Optional[np.ndarray] = None) -> float:
        """Fraction of accesses that were node-local."""
        m = self.matrix if matrix is None else matrix
        total = m.sum()
        if total == 0:
            return 1.0
        return float(np.trace(m) / total)

    def imbalance(self, matrix: Optional[np.ndarray] = None) -> float:
        """Relative standard deviation of per-node access counts.

        This is the paper's Table 1 "load imbalance" metric: the standard
        deviation around the average number of accesses per node, relative
        to that average (reported as a percentage by the analysis layer).
        """
        counts = self.node_access_counts(matrix)
        mean = counts.mean()
        if mean == 0:
            return 0.0
        return float(counts.std() / mean)


def sample_hot_pages(
    page_profiles: Sequence[HotPageSample],
    sampling_rate: float,
    rng: np.random.Generator,
    max_samples: Optional[int] = None,
) -> List[HotPageSample]:
    """Thin exact page access profiles the way IBS sampling would.

    Each page's per-node counts are binomially subsampled at
    ``sampling_rate``; pages whose sampled total is zero disappear (cold
    pages are invisible to IBS). Results are sorted hottest-first.

    Args:
        page_profiles: exact access profiles from the simulation engine.
        sampling_rate: probability that one access produces a sample.
        rng: random generator (deterministic runs use a seeded one).
        max_samples: optional cap on the number of pages returned.
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError("sampling_rate must be in (0, 1]")
    sampled: List[HotPageSample] = []
    for profile in page_profiles:
        counts = np.asarray(profile.node_accesses, dtype=np.int64)
        if sampling_rate >= 1.0:
            thinned = counts
        else:
            thinned = rng.binomial(counts, sampling_rate)
        total = int(thinned.sum())
        if total == 0:
            continue
        sampled.append(
            HotPageSample(
                page=profile.page,
                domain_id=profile.domain_id,
                node_accesses=tuple(int(c) for c in thinned),
                write_fraction=profile.write_fraction,
            )
        )
    sampled.sort(key=lambda s: s.total, reverse=True)
    if max_samples is not None:
        sampled = sampled[:max_samples]
    return sampled
