"""TLB model: the large-page perspective of the paper's section 7.

"Except the default round-1G policy, the NUMA policies presented in this
paper only consider small pages of 4 KiB. Handling large pages in order to
decrease the number of TLB misses should further improve performance."

With nested paging, the TLB caches guest-virtual to *machine*
translations; a miss triggers the expensive two-dimensional page walk.
The granularity of the **hypervisor page table** bounds the mapping size
the hardware can cache: a policy that places memory page-by-page
(round-4K, first-touch) forces 4 KiB nested mappings, while round-1G's
eager 1 GiB regions allow superpage mappings and thus far fewer misses.
This module quantifies that trade-off — the cost the fine-grained
policies pay for their placement freedom.

The model is a classic set-associative-reach estimate: the miss ratio is
how much of the working set the TLB cannot cover, scaled by a reuse
exponent; the miss penalty is the 2D walk cost (itself worse when the
page tables live on a remote node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ReproError

#: Mapping granularities (bytes) a policy can sustain in the p2m.
GRANULARITY_4K = 4 * 1024
GRANULARITY_2M = 2 * 1024 * 1024
GRANULARITY_1G = 1024 * 1024 * 1024


@dataclass(frozen=True)
class TlbLevel:
    """One TLB array for one page size.

    Attributes:
        page_bytes: translation granularity.
        entries: number of cached translations.
    """

    page_bytes: int
    entries: int

    @property
    def reach_bytes(self) -> int:
        """Memory covered when the array is full."""
        return self.page_bytes * self.entries


@dataclass(frozen=True)
class TlbModel:
    """TLB reach and miss-cost model (Opteron-like defaults).

    Attributes:
        levels: per-page-size arrays (L2 TLB sizes; L1 is folded in).
        walk_cycles_local: cycles of a nested (2D) page walk when the
            page-table pages are node-local.
        walk_cycles_remote_penalty: extra cycles when they are remote.
        reuse_exponent: locality shaping of the miss curve (like the
            cache model's).
    """

    levels: Tuple[TlbLevel, ...] = (
        TlbLevel(GRANULARITY_4K, 1024),
        TlbLevel(GRANULARITY_2M, 128),
        TlbLevel(GRANULARITY_1G, 16),
    )
    walk_cycles_local: float = 120.0
    walk_cycles_remote_penalty: float = 140.0
    reuse_exponent: float = 0.5

    def level_for(self, granularity_bytes: int) -> TlbLevel:
        """The TLB array used at a mapping granularity."""
        best = None
        for level in self.levels:
            if level.page_bytes <= granularity_bytes:
                if best is None or level.page_bytes > best.page_bytes:
                    best = level
        if best is None:
            raise ReproError(
                f"no TLB level for granularity {granularity_bytes}"
            )
        return best

    def miss_ratio(self, working_set_bytes: float, granularity_bytes: int) -> float:
        """Fraction of accesses that miss the TLB.

        Zero when the working set fits in the array's reach; otherwise
        shaped by ``(reach / working_set) ** reuse_exponent``.
        """
        if working_set_bytes <= 0:
            return 0.0
        level = self.level_for(granularity_bytes)
        reach = level.reach_bytes
        if working_set_bytes <= reach:
            return 0.0
        return 1.0 - (reach / working_set_bytes) ** self.reuse_exponent

    def miss_cycles(self, remote_fraction: float = 0.0) -> float:
        """Average cost of one miss given how often walks go remote."""
        remote_fraction = min(max(remote_fraction, 0.0), 1.0)
        return (
            self.walk_cycles_local
            + remote_fraction * self.walk_cycles_remote_penalty
        )

    def overhead_cycles_per_access(
        self,
        working_set_bytes: float,
        granularity_bytes: int,
        remote_fraction: float = 0.0,
    ) -> float:
        """Expected TLB cycles added to each memory access."""
        return self.miss_ratio(
            working_set_bytes, granularity_bytes
        ) * self.miss_cycles(remote_fraction)


#: Mapping granularity each NUMA policy sustains in the hypervisor page
#: table (section 7's observation).
POLICY_GRANULARITY: Dict[str, int] = {
    "round-1g": GRANULARITY_1G,
    "round-4k": GRANULARITY_4K,
    "first-touch": GRANULARITY_4K,
    "first-touch/carrefour": GRANULARITY_4K,
    "round-4k/carrefour": GRANULARITY_4K,
}


def policy_granularity(policy_name: str) -> int:
    """Nested-mapping granularity for a policy name (4 KiB by default)."""
    return POLICY_GRANULARITY.get(policy_name, GRANULARITY_4K)
