"""IOMMU model.

The AMD IOMMU translates guest-physical DMA addresses to machine addresses
through the hypervisor page table, letting devices reach a domU's memory
without trapping into the hypervisor. Two properties matter for the paper:

* translation only works when the hypervisor page table entry is *valid* —
  the IOMMU cannot take a page fault on behalf of a device;
* translation errors are reported **asynchronously** (a hardware design
  choice), so by the time the hypervisor sees the error the guest has
  already observed a failed I/O (paper section 4.4.1). This is what makes
  the first-touch policy (which deliberately invalidates entries)
  incompatible with the IOMMU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.p2m import P2MTable


@dataclass(frozen=True)
class IommuErrorEvent:
    """Asynchronous error log entry produced by a failed translation."""

    domain_id: int
    gpfn: int


@dataclass
class DmaResult:
    """Outcome of one DMA translation attempt.

    Attributes:
        ok: True if the device obtained a machine address.
        mfn: the machine frame (when ok).
        async_error: the error event queued to the hypervisor (when not ok).
    """

    ok: bool
    mfn: Optional[int] = None
    async_error: Optional[IommuErrorEvent] = None


class Iommu:
    """Device-side address translation unit.

    Args:
        enabled: when False, devices cannot translate at all and every DMA
            must bounce through the hypervisor/dom0 (the slow PV path).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._error_log: List[IommuErrorEvent] = []
        self.translations = 0
        self.faults = 0

    def translate(self, p2m: "P2MTable", gpfn: int) -> DmaResult:
        """Translate a guest frame number for a device DMA.

        On an invalid entry, the transfer is aborted and an error event is
        appended to the asynchronous log — it is *not* raised, mirroring
        the hardware behaviour that defeats first-touch.
        """
        if not self.enabled:
            raise RuntimeError("IOMMU is disabled; use the para-virtualised path")
        self.translations += 1
        entry = p2m.lookup(gpfn)
        if entry is None or not entry.valid:
            self.faults += 1
            event = IommuErrorEvent(domain_id=p2m.domain_id, gpfn=gpfn)
            self._error_log.append(event)
            return DmaResult(ok=False, async_error=event)
        return DmaResult(ok=True, mfn=entry.mfn)

    def drain_error_log(self) -> List[IommuErrorEvent]:
        """Deliver pending asynchronous errors to the hypervisor.

        By construction this happens *after* the guest saw the failed I/O.
        """
        events, self._error_log = self._error_log, []
        return events

    @property
    def pending_errors(self) -> int:
        return len(self._error_log)
