"""Simulated NUMA hardware: topology, memory, interconnect, caches, counters."""

from repro.hardware.topology import Link, NumaTopology
from repro.hardware.memory import MachineMemory, MemoryController
from repro.hardware.interconnect import Interconnect
from repro.hardware.cache import CacheHierarchy, CacheLevel, HitProfile
from repro.hardware.latency import LatencyModel
from repro.hardware.counters import PerfCounters, HotPageSample
from repro.hardware.iommu import Iommu
from repro.hardware.machine import Machine
from repro.hardware.presets import amd48

__all__ = [
    "Link",
    "NumaTopology",
    "MachineMemory",
    "MemoryController",
    "Interconnect",
    "CacheHierarchy",
    "CacheLevel",
    "HitProfile",
    "LatencyModel",
    "PerfCounters",
    "HotPageSample",
    "Iommu",
    "Machine",
    "amd48",
]
