"""Reproduction of "An interface to implement NUMA policies in the Xen hypervisor".

Voron, Thomas, Quema, Sens -- EuroSys 2017.

The package is organised as a stack:

* :mod:`repro.hardware` -- a simulated NUMA machine (nodes, memory controllers,
  interconnect, caches, performance counters, IOMMU), with an ``amd48``
  preset matching the paper's evaluation machine.
* :mod:`repro.hypervisor` -- a Xen-like hypervisor: domains, vCPUs, the
  hypervisor page table (p2m), the Xen heap allocator, hypercalls, a
  scheduler and the virtualised-IPI cost model.
* :mod:`repro.guest` -- a Linux-like guest OS: processes, virtual memory with
  lazy allocation, a physical page allocator, native NUMA policies and the
  paper's paravirtual alloc/release patch.
* :mod:`repro.vio` -- virtualised I/O: disk, DMA through the IOMMU,
  para-virtualised and PCI-passthrough drivers.
* :mod:`repro.core` -- the paper's contribution: the external/internal NUMA
  policy interface and the four policies (round-1G, round-4K, first-touch,
  Carrefour).
* :mod:`repro.carrefour` -- the Carrefour engine ported to the hypervisor.
* :mod:`repro.workloads` -- models of the paper's 29 applications.
* :mod:`repro.sim` -- the epoch-based simulation engine and environments.
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.hardware.machine import Machine
from repro.hardware.presets import amd48
from repro.sim.environment import LinuxEnvironment, XenEnvironment
from repro.sim.engine import run_app
from repro.workloads.suite import APPLICATIONS, get_app
from repro.core.policies import PolicyName

__all__ = [
    "Machine",
    "amd48",
    "LinuxEnvironment",
    "XenEnvironment",
    "run_app",
    "APPLICATIONS",
    "get_app",
    "PolicyName",
]

__version__ = "1.0.0"
